//! The typed entropy **contract**: Spinel-shaped response frames whose
//! constructors *enforce* the MUST-consume-fresh-entropy clause instead of
//! documenting it.
//!
//! OpenThread's Spinel TRNG properties define the contract shape this
//! module mirrors: `PROP_TRNG_32` returns a strong 32-bit integer,
//! `PROP_TRNG_128` sixteen bytes for direct cryptographic use, and
//! `PROP_TRNG_RAW_32` a raw diagnostic view — and each query "MUST consume
//! data representing at least N bits of fresh entropy extracted from the
//! primary entropy source" (≥ 32, ≥ 128, and ≥ 32 bits respectively).
//! Here the clause is checked, not trusted: a frame constructor takes a
//! [`Completion`] and refuses to build the response unless the
//! completion's attributed [`fresh_bits`](Completion::fresh_bits) covers
//! the requirement. The attribution itself is conservative ground truth —
//! the per-shard [`EntropyLedger`](crate::EntropyLedger) never lets the
//! sum of attributed bits exceed the fresh bits the shard's backend
//! actually drew (a property the integration suite pins under proptest) —
//! so a frame that constructs is a frame whose entropy budget is real.
//!
//! Every frame carries payload + checksum + per-source telemetry in one
//! struct: the first four bytes of the payload's SHA-256 as an integrity
//! checksum, and a [`SourceTelemetry`] naming the shard, backend kind,
//! stream epoch/offset, and the fresh-bits budget the frame consumed — the
//! accounted-provenance idiom (DR-STRaNGe's RNG requests as first-class,
//! attributable traffic) rather than an opaque byte pipe.

use crate::request::Completion;
use qt_crypto::sha256::Sha256;
use quac_trng::BackendKind;

/// Fresh-entropy floor of [`Trng32`] (Spinel `PROP_TRNG_32`).
pub const TRNG32_MIN_FRESH_BITS: u64 = 32;
/// Fresh-entropy floor of [`Trng128`] (Spinel `PROP_TRNG_128`).
pub const TRNG128_MIN_FRESH_BITS: u64 = 128;
/// Fresh-entropy floor of [`TrngRaw32`] (Spinel `PROP_TRNG_RAW_32`).
pub const TRNG_RAW32_MIN_FRESH_BITS: u64 = 32;

/// Why a completion could not be promoted into a typed contract frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractError {
    /// The completion's attributed fresh-entropy budget does not cover the
    /// frame's MUST-consume floor. Request more bytes (the ledger
    /// attributes fresh bits pro-rata by length) or use a cheaper frame.
    InsufficientFreshBits {
        /// Fresh bits the completion is backed by.
        claimed: u64,
        /// The frame's floor.
        required: u64,
    },
    /// The completion carries fewer payload bytes than the frame needs.
    ShortPayload {
        /// Bytes delivered.
        len: usize,
        /// Bytes the frame consumes.
        required: usize,
    },
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::InsufficientFreshBits { claimed, required } => write!(
                f,
                "completion is backed by {claimed} fresh entropy bits, the frame requires {required}"
            ),
            ContractError::ShortPayload { len, required } => {
                write!(f, "completion delivers {len} B, the frame consumes {required} B")
            }
        }
    }
}

impl std::error::Error for ContractError {}

/// Provenance of one contract frame: which source produced the bytes and
/// what entropy budget backs them — the telemetry leg of the
/// payload+checksum+telemetry frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTelemetry {
    /// The shard (channel) that generated the payload.
    pub shard: usize,
    /// The entropy-backend kind behind that shard.
    pub backend: BackendKind,
    /// The shard's stream epoch the payload came from.
    pub epoch: u64,
    /// Byte offset of the payload within the `(shard, epoch)` stream.
    pub stream_offset: u64,
    /// Raw fresh entropy bits attributed to the payload by the shard's
    /// [`EntropyLedger`](crate::EntropyLedger) — the budget the frame's
    /// MUST-consume floor was checked against.
    pub fresh_bits: u64,
}

impl SourceTelemetry {
    fn of(completion: &Completion) -> Self {
        SourceTelemetry {
            shard: completion.shard,
            backend: completion.backend,
            epoch: completion.epoch,
            stream_offset: completion.stream_offset,
            fresh_bits: completion.fresh_bits,
        }
    }
}

/// First four bytes of the payload's SHA-256 — the frame checksum.
fn checksum(payload: &[u8]) -> [u8; 4] {
    let digest = Sha256::digest(payload);
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Shared constructor guts: enforce the payload and fresh-bits floors,
/// then split off telemetry and checksum.
fn frame<const N: usize>(
    completion: &Completion,
    min_fresh_bits: u64,
) -> Result<([u8; N], [u8; 4], SourceTelemetry), ContractError> {
    if completion.bytes.len() < N {
        return Err(ContractError::ShortPayload {
            len: completion.bytes.len(),
            required: N,
        });
    }
    if completion.fresh_bits < min_fresh_bits {
        return Err(ContractError::InsufficientFreshBits {
            claimed: completion.fresh_bits,
            required: min_fresh_bits,
        });
    }
    let mut payload = [0u8; N];
    payload.copy_from_slice(&completion.bytes[..N]);
    Ok((payload, checksum(&payload), SourceTelemetry::of(completion)))
}

/// Spinel `PROP_TRNG_32`: a strong random 32-bit integer, suitable as a
/// PRNG seed or for cryptographic use. Constructing it enforces the
/// MUST-consume-≥[`TRNG32_MIN_FRESH_BITS`] clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trng32 {
    /// The random 32-bit value (little-endian over the payload bytes).
    pub value: u32,
    /// First four SHA-256 bytes of the payload.
    pub checksum: [u8; 4],
    /// Source provenance and the entropy budget consumed.
    pub telemetry: SourceTelemetry,
}

impl Trng32 {
    /// Builds the frame from a served completion.
    ///
    /// # Errors
    ///
    /// [`ContractError::ShortPayload`] under 4 delivered bytes;
    /// [`ContractError::InsufficientFreshBits`] when the completion's
    /// attributed budget is under [`TRNG32_MIN_FRESH_BITS`].
    pub fn from_completion(completion: &Completion) -> Result<Self, ContractError> {
        let (payload, checksum, telemetry) = frame::<4>(completion, TRNG32_MIN_FRESH_BITS)?;
        Ok(Trng32 {
            value: u32::from_le_bytes(payload),
            checksum,
            telemetry,
        })
    }
}

/// Spinel `PROP_TRNG_128`: sixteen bytes of strong random data suitable
/// for direct cryptographic use (e.g. an AES key) without further
/// processing. Constructing it enforces the
/// MUST-consume-≥[`TRNG128_MIN_FRESH_BITS`] clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trng128 {
    /// The 16 random bytes.
    pub value: [u8; 16],
    /// First four SHA-256 bytes of the payload.
    pub checksum: [u8; 4],
    /// Source provenance and the entropy budget consumed.
    pub telemetry: SourceTelemetry,
}

impl Trng128 {
    /// Builds the frame from a served completion.
    ///
    /// # Errors
    ///
    /// [`ContractError::ShortPayload`] under 16 delivered bytes;
    /// [`ContractError::InsufficientFreshBits`] when the completion's
    /// attributed budget is under [`TRNG128_MIN_FRESH_BITS`].
    pub fn from_completion(completion: &Completion) -> Result<Self, ContractError> {
        let (value, checksum, telemetry) = frame::<16>(completion, TRNG128_MIN_FRESH_BITS)?;
        Ok(Trng128 {
            value,
            checksum,
            telemetry,
        })
    }
}

/// Spinel `PROP_TRNG_RAW_32`: the diagnostic view of the entropy source —
/// 32 payload bytes *plus* the provenance needed to debug the source's
/// behaviour (which shard, which backend, where in the stream, how many
/// fresh bits). Constructing it enforces the
/// MUST-consume-≥[`TRNG_RAW32_MIN_FRESH_BITS`] clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrngRaw32 {
    /// The 32 payload bytes.
    pub value: [u8; 32],
    /// First four SHA-256 bytes of the payload.
    pub checksum: [u8; 4],
    /// Source provenance and the entropy budget consumed.
    pub telemetry: SourceTelemetry,
}

impl TrngRaw32 {
    /// Builds the frame from a served completion.
    ///
    /// # Errors
    ///
    /// [`ContractError::ShortPayload`] under 32 delivered bytes;
    /// [`ContractError::InsufficientFreshBits`] when the completion's
    /// attributed budget is under [`TRNG_RAW32_MIN_FRESH_BITS`].
    pub fn from_completion(completion: &Completion) -> Result<Self, ContractError> {
        let (value, checksum, telemetry) = frame::<32>(completion, TRNG_RAW32_MIN_FRESH_BITS)?;
        Ok(TrngRaw32 {
            value,
            checksum,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;

    fn completion(len: usize, fresh_bits: u64) -> Completion {
        Completion {
            client: ClientId(0),
            seq: 1,
            shard: 2,
            epoch: 3,
            stream_offset: 40,
            fresh_bits,
            backend: BackendKind::DRange,
            bytes: (0..len as u8).collect(),
        }
    }

    #[test]
    fn frames_carry_payload_checksum_and_telemetry() {
        let c = completion(32, 4096);
        let t32 = Trng32::from_completion(&c).unwrap();
        assert_eq!(t32.value, u32::from_le_bytes([0, 1, 2, 3]));
        assert_eq!(t32.checksum, checksum(&c.bytes[..4]));
        assert_eq!(t32.telemetry.shard, 2);
        assert_eq!(t32.telemetry.backend, BackendKind::DRange);
        assert_eq!(t32.telemetry.epoch, 3);
        assert_eq!(t32.telemetry.stream_offset, 40);
        assert_eq!(t32.telemetry.fresh_bits, 4096);
        let t128 = Trng128::from_completion(&c).unwrap();
        assert_eq!(&t128.value[..], &c.bytes[..16]);
        assert_eq!(t128.checksum, checksum(&c.bytes[..16]));
        let raw = TrngRaw32::from_completion(&c).unwrap();
        assert_eq!(&raw.value[..], &c.bytes[..32]);
        assert_ne!(
            raw.checksum, t128.checksum,
            "checksums cover their own payloads"
        );
    }

    #[test]
    fn the_fresh_bits_floor_is_enforced_per_frame() {
        // 127 fresh bits: enough for the 32-bit frames, not for Trng128.
        let c = completion(32, 127);
        assert!(Trng32::from_completion(&c).is_ok());
        assert!(TrngRaw32::from_completion(&c).is_ok());
        assert_eq!(
            Trng128::from_completion(&c),
            Err(ContractError::InsufficientFreshBits {
                claimed: 127,
                required: 128
            })
        );
        let starved = completion(32, TRNG32_MIN_FRESH_BITS - 1);
        assert_eq!(
            Trng32::from_completion(&starved),
            Err(ContractError::InsufficientFreshBits {
                claimed: 31,
                required: 32
            })
        );
    }

    #[test]
    fn short_payloads_are_typed_errors() {
        let c = completion(15, 1 << 20);
        assert!(
            Trng32::from_completion(&c).is_ok(),
            "4 B payload fits in 15"
        );
        assert_eq!(
            Trng128::from_completion(&c),
            Err(ContractError::ShortPayload {
                len: 15,
                required: 16
            })
        );
        assert_eq!(
            TrngRaw32::from_completion(&c),
            Err(ContractError::ShortPayload {
                len: 15,
                required: 32
            })
        );
    }
}
