//! Structured stats export: renders a [`ServiceStats`] snapshot in the
//! Prometheus text exposition format, so operators can scrape the service
//! (or diff two snapshots with
//! [`ServiceStats::delta_since`](crate::ServiceStats::delta_since) and
//! export the rate window) without any new dependency.
//!
//! Layout choices, pinned by the golden-format test:
//!
//! * Counters end in `_total`; per-shard series carry a `shard="N"` label
//!   plus a `backend="quac|drange|retention"` label naming the shard's
//!   [`BackendKind`](quac_trng::BackendKind) (from the snapshot's
//!   `backend_kinds`; a snapshot
//!   without kinds — e.g. a bare `ServiceStats::default()` — labels every
//!   shard `quac`, the homogeneous pre-mesh reading).
//! * The log₂ [`Histogram`]s export as cumulative
//!   `_bucket{le="..."}` series: bucket 0 (zeros) has edge `0`, bucket `i`
//!   covers `[2^(i−1), 2^i)` so its inclusive integer edge is `2^i − 1`,
//!   and the open-ended final bucket folds into `+Inf`. Trailing all-zero
//!   buckets are truncated — the `+Inf` line always carries the full count,
//!   so the series stays a valid cumulative histogram and the output stays
//!   stable as load grows.
//! * Per-shard health gauges are emitted only when the snapshot carries
//!   health records (i.e. came from [`RngService::stats`](crate::RngService::stats)
//!   or shutdown, not a bare `ServiceStats::default()`).

use crate::stats::{Histogram, ServiceStats};
use std::fmt::Write as _;

/// The `backend="..."` label value for one shard: its recorded
/// [`BackendKind`](quac_trng::BackendKind), defaulting to `quac` for
/// snapshots that predate the mesh (or were built by hand without kinds).
fn backend_label(stats: &ServiceStats, shard: usize) -> &'static str {
    stats
        .backend_kinds
        .get(shard)
        .map_or("quac", |kind| kind.label())
}

/// Renders `stats` as Prometheus text exposition (version 0.0.4). The
/// output is a deterministic function of the snapshot: same stats, same
/// bytes — which is what makes the golden test and snapshot-diff workflows
/// stable.
pub fn prometheus_text(stats: &ServiceStats) -> String {
    let mut out = String::with_capacity(4096);
    counter(
        &mut out,
        "qt_rng_completed_requests_total",
        "Requests completed (delivered to their tickets).",
        stats.completed_requests,
    );
    counter(
        &mut out,
        "qt_rng_completed_bytes_total",
        "Random bytes delivered.",
        stats.completed_bytes,
    );
    counter(
        &mut out,
        "qt_rng_expired_requests_total",
        "Requests completed with a typed Expired outcome (bytes never generated).",
        stats.expired_requests,
    );
    counter(
        &mut out,
        "qt_rng_expiry_sweeps_total",
        "Scans the expiry-sweep thread ran (0 under deadline-free load).",
        stats.expiry_sweeps,
    );
    counter(
        &mut out,
        "qt_rng_failed_over_requests_total",
        "Queued requests re-placed from a quarantined shard onto a healthy one.",
        stats.failed_over_requests,
    );
    counter(
        &mut out,
        "qt_rng_degraded_rejections_total",
        "Submissions rejected because every shard was quarantined.",
        stats.degraded_rejections,
    );
    counter(
        &mut out,
        "qt_rng_rate_limited_rejections_total",
        "Submissions rejected by the per-tenant QoS policy (token bucket empty).",
        stats.rate_limited_rejections,
    );
    counter(
        &mut out,
        "qt_rng_mixed_halves_abandoned_total",
        "Mixed-submission halves that delivered bytes while their sibling failed (generated, then discarded).",
        stats.mixed_halves_abandoned,
    );
    gauge(
        &mut out,
        "qt_rng_peak_in_flight_bytes",
        "High-water mark of in-flight bytes.",
        stats.peak_in_flight_bytes as u64,
    );
    help_type(
        &mut out,
        "qt_rng_shard_delivered_bytes_total",
        "Bytes delivered by each shard.",
        "counter",
    );
    for (shard, bytes) in stats.per_shard_bytes.iter().enumerate() {
        let backend = backend_label(stats, shard);
        let _ = writeln!(
            out,
            "qt_rng_shard_delivered_bytes_total{{shard=\"{shard}\",backend=\"{backend}\"}} {bytes}"
        );
    }
    help_type(
        &mut out,
        "qt_rng_shard_fresh_bits_drawn_total",
        "Raw fresh entropy bits the shard's backend drew from its physical source.",
        "counter",
    );
    for (shard, ledger) in stats.per_shard_ledger.iter().enumerate() {
        let backend = backend_label(stats, shard);
        let _ = writeln!(
            out,
            "qt_rng_shard_fresh_bits_drawn_total{{shard=\"{shard}\",backend=\"{backend}\"}} {}",
            ledger.fresh_bits_drawn
        );
    }
    help_type(
        &mut out,
        "qt_rng_shard_fresh_bits_claimed_total",
        "Fresh bits attributed to completions served by the shard (never exceeds the drawn total).",
        "counter",
    );
    for (shard, ledger) in stats.per_shard_ledger.iter().enumerate() {
        let backend = backend_label(stats, shard);
        let _ = writeln!(
            out,
            "qt_rng_shard_fresh_bits_claimed_total{{shard=\"{shard}\",backend=\"{backend}\"}} {}",
            ledger.fresh_bits_claimed
        );
    }
    help_type(
        &mut out,
        "qt_rng_shard_conditioned_bytes_served_total",
        "Conditioned bytes the shard's worker generated into completions.",
        "counter",
    );
    for (shard, ledger) in stats.per_shard_ledger.iter().enumerate() {
        let backend = backend_label(stats, shard);
        let _ = writeln!(
            out,
            "qt_rng_shard_conditioned_bytes_served_total{{shard=\"{shard}\",backend=\"{backend}\"}} {}",
            ledger.conditioned_bytes_served
        );
    }
    counter(
        &mut out,
        "qt_rng_validation_bytes_tapped_total",
        "Served bytes copied into the validator tap.",
        stats.validation.bytes_tapped,
    );
    counter(
        &mut out,
        "qt_rng_validation_bytes_dropped_total",
        "Served bytes that bypassed validation (lossy tap).",
        stats.validation.bytes_dropped,
    );
    counter(
        &mut out,
        "qt_rng_validation_windows_validated_total",
        "Served windows the battery graded.",
        stats.validation.windows_validated,
    );
    counter(
        &mut out,
        "qt_rng_validation_windows_failed_total",
        "Served windows that failed the battery.",
        stats.validation.windows_failed,
    );
    counter(
        &mut out,
        "qt_rng_validation_quarantines_total",
        "Quarantine transitions.",
        stats.validation.quarantines,
    );
    counter(
        &mut out,
        "qt_rng_validation_recharacterizations_total",
        "Recharacterisations run by quarantined shards.",
        stats.validation.recharacterizations,
    );
    counter(
        &mut out,
        "qt_rng_validation_probation_windows_total",
        "Probation windows generated and graded during requalification.",
        stats.validation.probation_windows,
    );
    counter(
        &mut out,
        "qt_rng_validation_readmissions_total",
        "Readmissions after a passed probation.",
        stats.validation.readmissions,
    );
    counter(
        &mut out,
        "qt_rng_validation_correlation_windows_total",
        "Same-index window pairs compared by the cross-correlation monitor.",
        stats.validation.correlation_windows,
    );
    counter(
        &mut out,
        "qt_rng_validation_correlation_trips_total",
        "Shard pairs force-quarantined for inter-backend correlation.",
        stats.validation.correlation_trips,
    );
    if !stats.shard_health.is_empty() {
        help_type(
            &mut out,
            "qt_rng_shard_serving",
            "1 while the shard is in placement (healthy), 0 while fenced.",
            "gauge",
        );
        for (shard, h) in stats.shard_health.iter().enumerate() {
            let _ = writeln!(
                out,
                "qt_rng_shard_serving{{shard=\"{shard}\",backend=\"{}\"}} {}",
                backend_label(stats, shard),
                u8::from(h.is_serving())
            );
        }
        help_type(
            &mut out,
            "qt_rng_shard_pass_ewma",
            "Pass-rate EWMA of the shard's validated windows.",
            "gauge",
        );
        for (shard, h) in stats.shard_health.iter().enumerate() {
            let _ = writeln!(
                out,
                "qt_rng_shard_pass_ewma{{shard=\"{shard}\",backend=\"{}\"}} {}",
                backend_label(stats, shard),
                h.pass_ewma
            );
        }
        help_type(
            &mut out,
            "qt_rng_shard_quarantines_total",
            "Times the shard was quarantined.",
            "counter",
        );
        for (shard, h) in stats.shard_health.iter().enumerate() {
            let _ = writeln!(
                out,
                "qt_rng_shard_quarantines_total{{shard=\"{shard}\",backend=\"{}\"}} {}",
                backend_label(stats, shard),
                h.quarantines
            );
        }
        help_type(
            &mut out,
            "qt_rng_shard_readmissions_total",
            "Times the shard was readmitted after probation.",
            "counter",
        );
        for (shard, h) in stats.shard_health.iter().enumerate() {
            let _ = writeln!(
                out,
                "qt_rng_shard_readmissions_total{{shard=\"{shard}\",backend=\"{}\"}} {}",
                backend_label(stats, shard),
                h.readmissions
            );
        }
    }
    histogram(
        &mut out,
        "qt_rng_queue_depth",
        "Queue depth (requests waiting on the chosen shard) sampled at each admission.",
        &stats.queue_depth,
    );
    histogram(
        &mut out,
        "qt_rng_latency_us",
        "Request latency (submission to delivery) in microseconds.",
        &stats.latency_us,
    );
    histogram(
        &mut out,
        "qt_rng_deadline_slack_us",
        "Microseconds left until the deadline at delivery, for served requests that carried one.",
        &stats.deadline_slack_us,
    );
    out
}

fn help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    help_type(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    help_type(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Writes one log₂ histogram as cumulative `_bucket`/`_sum`/`_count` series.
/// Bucket `i`'s inclusive upper edge is `2^i − 1` (bucket 0 holds zeros);
/// the final, open-ended bucket only appears in the `+Inf` line. Trailing
/// all-zero buckets are truncated.
fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    help_type(out, name, help, "histogram");
    let buckets = h.buckets();
    let last_nonzero = buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
    // The open-ended final bucket has no finite edge: its count is only
    // representable in the +Inf line.
    let last_finite = last_nonzero.min(buckets.len() - 2);
    let mut cumulative = 0u64;
    for (i, &b) in buckets.iter().enumerate().take(last_finite + 1) {
        cumulative += b;
        if i == 0 {
            let _ = writeln!(out, "{name}_bucket{{le=\"0\"}} {cumulative}");
        } else {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                (1u64 << i) - 1
            );
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_export_is_well_formed() {
        let text = prometheus_text(&ServiceStats::default());
        assert!(text.contains("qt_rng_completed_requests_total 0\n"));
        assert!(text.contains("# TYPE qt_rng_latency_us histogram\n"));
        // An empty histogram still carries its le="0" floor, +Inf, sum, count.
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("qt_rng_latency_us_sum 0\n"));
        assert!(text.contains("qt_rng_latency_us_count 0\n"));
        // No health records in a bare default snapshot → no per-shard gauges.
        assert!(!text.contains("qt_rng_shard_serving"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
            assert!(parts.next().is_some(), "no metric name in {line:?}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_edges() {
        let mut stats = ServiceStats::default();
        stats.latency_us.record(0);
        stats.latency_us.record(1);
        stats.latency_us.record(2);
        stats.latency_us.record(3);
        stats.latency_us.record(900);
        let text = prometheus_text(&stats);
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"3\"} 4\n"));
        // 900 lands in [512, 1024) — inclusive edge 1023 — and truncation
        // stops there.
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"1023\"} 5\n"));
        assert!(!text.contains("qt_rng_latency_us_bucket{le=\"2047\"}"));
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("qt_rng_latency_us_sum 906\n"));
        assert!(text.contains("qt_rng_latency_us_count 5\n"));
    }

    #[test]
    fn open_ended_samples_appear_only_in_the_inf_bucket() {
        let mut stats = ServiceStats::default();
        stats.latency_us.record(u64::MAX); // lands in the final bucket
        let text = prometheus_text(&stats);
        // No finite edge claims the sample; +Inf carries it.
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("qt_rng_latency_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("qt_rng_latency_us_count 1\n"));
    }

    #[test]
    fn shard_health_exports_with_labels() {
        use crate::health::{ShardHealth, ShardState};
        use quac_trng::BackendKind;
        let mut stats = ServiceStats {
            per_shard_bytes: vec![64, 128],
            ..Default::default()
        };
        let mut fenced = ShardHealth::new();
        fenced.state = ShardState::Quarantined;
        fenced.quarantines = 3;
        stats.shard_health = vec![ShardHealth::new(), fenced];
        stats.backend_kinds = vec![BackendKind::Quac, BackendKind::DRange];
        let text = prometheus_text(&stats);
        assert!(
            text.contains("qt_rng_shard_delivered_bytes_total{shard=\"0\",backend=\"quac\"} 64\n")
        );
        assert!(text
            .contains("qt_rng_shard_delivered_bytes_total{shard=\"1\",backend=\"drange\"} 128\n"));
        assert!(text.contains("qt_rng_shard_serving{shard=\"0\",backend=\"quac\"} 1\n"));
        assert!(text.contains("qt_rng_shard_serving{shard=\"1\",backend=\"drange\"} 0\n"));
        assert!(text.contains("qt_rng_shard_quarantines_total{shard=\"1\",backend=\"drange\"} 3\n"));
        assert!(text.contains("qt_rng_shard_pass_ewma{shard=\"0\",backend=\"quac\"} 1\n"));
        assert!(text.contains("qt_rng_validation_correlation_windows_total 0\n"));
        assert!(text.contains("qt_rng_validation_correlation_trips_total 0\n"));
    }

    #[test]
    fn a_snapshot_without_kinds_labels_every_shard_quac() {
        let stats = ServiceStats {
            per_shard_bytes: vec![7],
            ..Default::default()
        };
        let text = prometheus_text(&stats);
        assert!(
            text.contains("qt_rng_shard_delivered_bytes_total{shard=\"0\",backend=\"quac\"} 7\n")
        );
    }
}
