//! Data plane: the per-shard worker — dequeue a coalesced batch, generate,
//! pace, tap, deliver. Nothing here decides placement, health, or admission;
//! those are control-plane concerns ([`crate::control`],
//! [`crate::placement`]) the worker only observes through the shared state.

use crate::control::{requalify_shard, sweep_shard_expired};
use crate::request::{Completion, RngRequest};
use crate::state::{Lifecycle, Shared};
use crate::ticket::{Outcome, TicketSender};
use crate::validate::{tap_quota_allows, TapChunk};
use quac_trng::EntropyBackend;
use std::sync::mpsc;
use std::time::Instant;

/// One shard's worker: dequeue a coalesced batch, generate all its bytes
/// with a single buffer-reusing [`EntropyBackend::fill_bytes`] call, pace
/// delivery against the idle-cycle budget, deliver per-request completions,
/// tap a copy for the validator, release the budget. When the shard is
/// quarantined and its queue has drained, the worker switches to
/// requalification: recharacterise, generate probation windows, grade them,
/// and readmit on a passing streak (see [`crate::control`]).
///
/// The worker is backend-agnostic: any [`EntropyBackend`] — the QUAC
/// pipeline, a D-RaNGe generator, a retention harvester — serves through the
/// same batch/pace/tap/deliver loop.
pub(crate) fn worker_loop(
    shared: &Shared,
    shard_idx: usize,
    mut trng: Box<dyn EntropyBackend>,
    tap: Option<mpsc::SyncSender<TapChunk>>,
) {
    // Token-bucket pacing deadline: each batch owes `time_for_bytes` of
    // wall-clock on top of the previous deadline (or of "now" after an idle
    // gap — idle time is not banked into a later burst). Accumulating per
    // batch keeps every single wait within `time_for_bytes`' saturation
    // bound, no matter how much has been delivered in total.
    let mut pace_deadline = Instant::now();
    let mut batch: Vec<RngRequest> = Vec::new();
    let mut senders: Vec<Option<TicketSender>> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut expired_scratch: Vec<RngRequest> = Vec::new();
    // Entropy-ledger accounting. `fresh_seen` is the backend's cumulative
    // fresh-bit counter at the last observation; the delta since then splits
    // into `banked_fresh` (drawn for *serving* — attributable to
    // completions) and the rest (probation windows: drawn, graded, never
    // served). `pending_drawn` carries both toward the next locked stats
    // flush. Attribution divides the bank pro-rata over the bytes it
    // conditions (this batch + what the backend still buffers), so the sum
    // of per-completion claims can never exceed the bank — the ledger
    // property the contract layer enforces.
    let backend_kind = trng.class().kind;
    let mut fresh_seen: u64 = trng.fresh_bits_drawn();
    let mut banked_fresh: u64 = 0;
    let mut pending_drawn: u64 = 0;
    let mut claims: Vec<u64> = Vec::new();
    // Delivered-byte offset within the current stream epoch: readmission
    // restarts the shard's stream (recharacterisation rebuilds the
    // sampler), so offsets restart with it — completions stay gapless per
    // `(shard, epoch)`.
    let mut stream_offset: u64 = 0;
    let mut current_epoch: u64 = 0;
    // Coverage accounting of the lossy tap (bytes served vs bytes tapped by
    // this worker), enforcing `ValidationConfig::target_coverage`.
    let mut tap_served: u64 = 0;
    let mut tap_taken: u64 = 0;
    loop {
        // Phase 1 (locked): wait for work, dequeue a batch and its tickets —
        // or detect that this shard is fenced off with an empty queue and
        // must requalify instead.
        batch.clear();
        senders.clear();
        let mut requalify = false;
        let mut batch_epoch = 0u64;
        let batch_bytes = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    Lifecycle::Draining if st.shards[shard_idx].is_empty() => return,
                    // A drain serves everything accepted, even through a
                    // fenced shard — the documented last resort when no
                    // healthy shard could take its queue over.
                    Lifecycle::Draining => break,
                    // While running, a fenced shard never serves: its queued
                    // work was failed over to healthy shards at the
                    // quarantine trip (or waits for readmission, expiry, or
                    // a drain when none was healthy). Requalify instead.
                    Lifecycle::Running if !st.health[shard_idx].is_serving() => {
                        requalify = true;
                        break;
                    }
                    Lifecycle::Running if !st.shards[shard_idx].is_empty() => break,
                    Lifecycle::Running => {
                        st = shared.work.wait(st).expect("service state poisoned");
                    }
                }
            }
            if requalify {
                0
            } else {
                // Complete overdue requests before composing the batch, so a
                // request whose deadline already passed is never generated —
                // the sweep thread bounds the idle case, this bounds the
                // busy one.
                let released =
                    sweep_shard_expired(&mut st, shard_idx, Instant::now(), &mut expired_scratch);
                if released > 0 {
                    shared.space.notify_all();
                }
                if st.shards[shard_idx].is_empty() {
                    continue; // everything queued here had expired
                }
                batch_epoch = st.shard_epoch[shard_idx];
                let bytes = st.shards[shard_idx].pop_batch(
                    shared.cfg.max_batch_bytes,
                    shared.cfg.max_batch_requests,
                    &mut batch,
                );
                senders.extend(batch.iter().map(|r| st.senders.remove(&r.seq)));
                bytes
            }
        };
        if requalify {
            let keep_going = requalify_shard(shared, shard_idx, trng.as_mut(), &mut buf);
            // Probation windows drew fresh bits that were graded, never
            // served: they enter the ledger as drawn but are not bankable
            // for completion claims. The pre-probation bank dies with the
            // old stream too — recharacterisation rebuilt the sampler.
            pending_drawn += trng.fresh_bits_drawn() - fresh_seen;
            fresh_seen = trng.fresh_bits_drawn();
            banked_fresh = 0;
            if !keep_going {
                let mut st = shared.state.lock().expect("service state poisoned");
                st.stats.per_shard_ledger[shard_idx].fresh_bits_drawn += pending_drawn;
                return;
            }
            continue;
        }
        if batch_epoch != current_epoch {
            current_epoch = batch_epoch;
            stream_offset = 0;
        }

        // Phase 2 (unlocked): one generation pass covers the whole batch.
        buf.resize(batch_bytes, 0);
        trng.fill_bytes(&mut buf);
        pending_drawn += trng.fresh_bits_drawn() - fresh_seen;
        banked_fresh += trng.fresh_bits_drawn() - fresh_seen;
        fresh_seen = trng.fresh_bits_drawn();
        // Attribute the bank across this batch's requests pro-rata by
        // length. The divisor counts every byte the bank still has to
        // condition — this batch plus the backend's internal buffer (fresh
        // bits drawn for a whole iteration but not yet served) — so claims
        // are conservative and Σ claims ≤ bank by construction.
        claims.clear();
        let mut unattributed = batch_bytes as u64 + trng.buffered_bytes() as u64;
        for req in &batch {
            let claim = if unattributed == 0 {
                0
            } else {
                ((banked_fresh as u128 * req.len as u128) / unattributed as u128) as u64
            };
            claims.push(claim);
            banked_fresh -= claim;
            unattributed -= req.len as u64;
        }

        // Phase 3: pace delivery against the channel's idle-cycle budget.
        // The batch's bytes stay charged against the in-flight budget while
        // the worker is parked, which is what makes backpressure reflect the
        // *delivered* rate, not the simulation's generation speed.
        if !shared.cfg.pacing.is_unlimited() {
            pace_deadline =
                pace_deadline.max(Instant::now()) + shared.cfg.pacing.time_for_bytes(batch_bytes);
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    // A drain lifts pacing: queued work is delivered
                    // promptly instead of making `shutdown()` wait out the
                    // budget (which saturates at an hour per batch).
                    Lifecycle::Draining => break,
                    Lifecycle::Running => {}
                }
                let now = Instant::now();
                if now >= pace_deadline {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, pace_deadline - now)
                    .expect("service state poisoned");
                st = guard;
            }
        }

        // Phase 4: tap a copy of the served bytes for the validator,
        // release the budget, then deliver completions. The budget and
        // per-shard load are released *before* any completion becomes
        // visible: a sequential client that saw its reply and immediately
        // submits again must observe the load already settled, or placement
        // (and with it the per-request replay determinism the tests pin)
        // would race the release.
        let mut tapped = 0u64;
        let mut dropped = 0u64;
        if let Some(tap) = &tap {
            use std::sync::atomic::Ordering;
            if shared.cfg.validation.lossless_tap {
                // Parks this worker until the validator catches up: full,
                // deterministic coverage for tests (and backpressure stays
                // charged meanwhile, coupling admission to validation).
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                if tap.send(chunk).is_ok() {
                    tapped = batch_bytes as u64;
                }
            } else if !tap_quota_allows(
                tap_taken,
                tap_served,
                batch_bytes as u64,
                shared.cfg.validation.target_coverage,
            ) || shared.tap_fill.load(Ordering::Relaxed)
                >= shared.cfg.validation.tap_queue_batches.max(1)
            {
                // Over the coverage budget, or the queue is (approximately)
                // full — the expected steady state when generation outpaces
                // grading. Skip without paying the batch copy a try_send
                // would immediately discard.
                dropped = batch_bytes as u64;
            } else {
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                match tap.try_send(chunk) {
                    Ok(()) => {
                        shared.tap_fill.fetch_add(1, Ordering::Relaxed);
                        tapped = batch_bytes as u64;
                    }
                    Err(_) => dropped = batch_bytes as u64,
                }
            }
            tap_served += batch_bytes as u64;
            tap_taken += tapped;
        }
        {
            let now = Instant::now();
            let mut st = shared.state.lock().expect("service state poisoned");
            st.in_flight_bytes -= batch_bytes;
            st.shard_load[shard_idx] -= batch_bytes;
            st.stats.completed_requests += batch.len() as u64;
            st.stats.completed_bytes += batch_bytes as u64;
            st.stats.per_shard_bytes[shard_idx] += batch_bytes as u64;
            st.stats.validation.bytes_tapped += tapped;
            st.stats.validation.bytes_dropped += dropped;
            // Ledger flush: drawn (incl. any probation draw since the last
            // flush) and this batch's claims land atomically, *before* any
            // completion carrying a claim becomes visible — so no snapshot
            // can ever show completions claiming more than the ledger drew.
            let ledger = &mut st.stats.per_shard_ledger[shard_idx];
            ledger.fresh_bits_drawn += pending_drawn;
            ledger.fresh_bits_claimed += claims.iter().sum::<u64>();
            ledger.conditioned_bytes_served += batch_bytes as u64;
            pending_drawn = 0;
            for req in &batch {
                st.stats
                    .latency_us
                    .record(now.duration_since(req.submitted_at).as_micros() as u64);
                if let Some(deadline) = req.deadline {
                    // Slack left at delivery; a late delivery (deadline
                    // passed mid-generation, too late to expire) records 0.
                    st.stats
                        .deadline_slack_us
                        .record(deadline.saturating_duration_since(now).as_micros() as u64);
                }
            }
            shared.space.notify_all();
        }
        let mut offset_in_batch = 0usize;
        for ((req, sender), &fresh_bits) in batch.iter().zip(&senders).zip(&claims) {
            let bytes = buf[offset_in_batch..offset_in_batch + req.len].to_vec();
            if let Some(sender) = sender {
                // Resolving wakes the ticket's waiters — blocking waits and
                // any async task parked on its waker — at this boundary.
                sender.send(Outcome::Served(Completion {
                    client: req.client,
                    seq: req.seq,
                    shard: shard_idx,
                    epoch: batch_epoch,
                    stream_offset: stream_offset + offset_in_batch as u64,
                    fresh_bits,
                    backend: backend_kind,
                    bytes,
                }));
            }
            offset_in_batch += req.len;
        }
        stream_offset += batch_bytes as u64;
    }
}
