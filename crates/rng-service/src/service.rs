//! The concurrent RNG service: per-shard worker threads behind a shared,
//! bounded request queue.

use crate::queue::ShardScheduler;
use crate::request::{ClientId, Completion, Priority, RngRequest, SubmitError};
use qt_memctrl::IdleBudget;
use quac_trng::pipeline::QuacTrng;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngServiceConfig {
    /// Backpressure budget: the maximum number of requested-but-undelivered
    /// bytes (queued plus being generated). `try_submit` rejects and
    /// `submit` parks while admitting a request would exceed it.
    pub max_inflight_bytes: usize,
    /// Coalescing target: a worker keeps dequeuing requests until the batch
    /// reaches this many bytes (small reads ride along in whole QUAC
    /// iterations instead of paying one wakeup each).
    pub max_batch_bytes: usize,
    /// Hard cap on requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Anti-starvation window of the per-shard scheduler: at most this many
    /// consecutive high-priority dispatches while normal work waits.
    pub fairness_window: u32,
    /// Per-shard delivery-rate budget (idle DRAM cycles of the channel).
    /// [`IdleBudget::unlimited`] disables pacing.
    pub pacing: IdleBudget,
}

impl Default for RngServiceConfig {
    fn default() -> Self {
        RngServiceConfig {
            max_inflight_bytes: 1 << 20,
            max_batch_bytes: 16 << 10,
            max_batch_requests: 64,
            fairness_window: 4,
            pacing: IdleBudget::unlimited(),
        }
    }
}

/// Counters the service maintains while running and reports at shutdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests completed (delivered to their tickets).
    pub completed_requests: u64,
    /// Random bytes delivered.
    pub completed_bytes: u64,
    /// High-water mark of in-flight bytes — never exceeds
    /// [`RngServiceConfig::max_inflight_bytes`].
    pub peak_in_flight_bytes: usize,
    /// Bytes delivered by each shard.
    pub per_shard_bytes: Vec<u64>,
}

/// The receipt for one submitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    shard: usize,
    rx: mpsc::Receiver<Completion>,
}

/// The request was discarded before completion (service aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request canceled: the RNG service stopped before serving it")
    }
}

impl std::error::Error for Canceled {}

impl Ticket {
    /// Submission sequence number of the request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard (channel) the request was assigned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the request is served and returns its bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Canceled`] if the service was aborted before serving it.
    pub fn wait(self) -> Result<Completion, Canceled> {
        self.rx.recv().map_err(|_| Canceled)
    }

    /// Non-blocking poll: `Ok(Some)` once the request has been served,
    /// `Ok(None)` while it is still pending.
    ///
    /// # Errors
    ///
    /// Returns [`Canceled`] if the service was aborted before serving it
    /// (polling loops must not keep spinning on a dead request).
    pub fn try_wait(&self) -> Result<Option<Completion>, Canceled> {
        match self.rx.try_recv() {
            Ok(completion) => Ok(Some(completion)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(Canceled),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    Running,
    /// Serve everything already queued, then stop.
    Draining,
    /// Discard queued work and stop as soon as possible.
    Aborting,
}

#[derive(Debug)]
struct State {
    shards: Vec<ShardScheduler>,
    /// Completion channel of each queued request, keyed by sequence number.
    /// Dropping a sender cancels its ticket.
    senders: HashMap<u64, mpsc::Sender<Completion>>,
    in_flight_bytes: usize,
    next_shard: usize,
    next_seq: u64,
    lifecycle: Lifecycle,
    stats: ServiceStats,
}

#[derive(Debug)]
struct Shared {
    cfg: RngServiceConfig,
    state: Mutex<State>,
    /// Signalled when work arrives or the lifecycle changes (workers wait
    /// here, both for requests and during pacing sleeps).
    work: Condvar,
    /// Signalled when in-flight bytes are released (parked submitters wait
    /// here).
    space: Condvar,
}

/// A sharded, batching, backpressured random-number service: one worker
/// thread per [`QuacTrng`] shard (channel), a priority/round-robin scheduler
/// per shard, and a service-wide in-flight byte budget.
///
/// See the [crate docs](crate) for the architecture and the determinism
/// contract.
#[derive(Debug)]
pub struct RngService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RngService {
    /// Starts the service over the given per-channel generator shards
    /// (usually built with [`QuacTrng::shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn start(shards: Vec<QuacTrng>, cfg: RngServiceConfig) -> Self {
        assert!(!shards.is_empty(), "the RNG service needs at least one shard");
        let shard_count = shards.len();
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                shards: (0..shard_count).map(|_| ShardScheduler::new(cfg.fairness_window)).collect(),
                senders: HashMap::new(),
                in_flight_bytes: 0,
                next_shard: 0,
                next_seq: 0,
                lifecycle: Lifecycle::Running,
                stats: ServiceStats {
                    per_shard_bytes: vec![0; shard_count],
                    ..ServiceStats::default()
                },
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(idx, trng)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rng-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx, trng))
                    .expect("spawning an RNG shard worker")
            })
            .collect();
        RngService { shared, workers }
    }

    /// Number of shards (channels) serving requests.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The service configuration.
    pub fn config(&self) -> &RngServiceConfig {
        &self.shared.cfg
    }

    /// Submits a request, parking the caller while the in-flight byte budget
    /// is exhausted (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] for requests that
    /// can never be served; [`SubmitError::ShuttingDown`] once shutdown has
    /// begun (including while parked).
    pub fn submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        loop {
            if st.lifecycle != Lifecycle::Running {
                return Err(SubmitError::ShuttingDown);
            }
            if st.in_flight_bytes + len <= self.shared.cfg.max_inflight_bytes {
                break;
            }
            st = self.shared.space.wait(st).expect("service state poisoned");
        }
        Ok(self.admit(&mut st, client, priority, len))
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns, plus
    /// [`SubmitError::Saturated`] when the request does not fit the in-flight
    /// budget right now.
    pub fn try_submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        if st.lifecycle != Lifecycle::Running {
            return Err(SubmitError::ShuttingDown);
        }
        if st.in_flight_bytes + len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::Saturated {
                requested: len,
                in_flight: st.in_flight_bytes,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(self.admit(&mut st, client, priority, len))
    }

    /// A snapshot of the running counters.
    pub fn stats(&self) -> ServiceStats {
        self.lock().stats.clone()
    }

    /// Bytes currently in flight (queued plus being generated).
    pub fn in_flight_bytes(&self) -> usize {
        self.lock().in_flight_bytes
    }

    /// Serves everything already queued, then stops the workers and returns
    /// the final counters. Parked submitters are released with
    /// [`SubmitError::ShuttingDown`], and delivery pacing is lifted for the
    /// drain, so shutdown completes promptly even under a near-zero idle
    /// budget.
    pub fn shutdown(self) -> ServiceStats {
        self.stop(Lifecycle::Draining)
    }

    /// Stops as soon as possible, discarding queued work; the discarded
    /// requests' tickets report [`Canceled`].
    pub fn abort(self) -> ServiceStats {
        self.stop(Lifecycle::Aborting)
    }

    fn stop(mut self, how: Lifecycle) -> ServiceStats {
        {
            let mut st = self.lock();
            st.lifecycle = how;
            if how == Lifecycle::Aborting {
                // Cancel every queued ticket by dropping its sender.
                st.senders.clear();
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.lock().stats.clone()
    }

    fn validate(&self, len: usize) -> Result<(), SubmitError> {
        if len == 0 {
            return Err(SubmitError::Empty);
        }
        if len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::TooLarge {
                requested: len,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(())
    }

    /// Admits a validated, budget-fitting request: assigns its sequence
    /// number and shard (round-robin over submission order — the assignment
    /// the serial-equivalence tests replay), charges the budget, and wakes a
    /// worker.
    fn admit(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Ticket {
        let seq = st.next_seq;
        st.next_seq += 1;
        let shard = st.next_shard;
        st.next_shard = (st.next_shard + 1) % st.shards.len();
        st.in_flight_bytes += len;
        st.stats.peak_in_flight_bytes = st.stats.peak_in_flight_bytes.max(st.in_flight_bytes);
        let (tx, rx) = mpsc::channel();
        st.senders.insert(seq, tx);
        st.shards[shard].push(RngRequest { client, priority, len, seq });
        self.shared.work.notify_all();
        Ticket { seq, shard, rx }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("service state poisoned")
    }
}

impl Drop for RngService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.lock();
            st.lifecycle = Lifecycle::Aborting;
            st.senders.clear();
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One shard's worker: dequeue a coalesced batch, generate all its bytes
/// with a single buffer-reusing [`QuacTrng::fill_bytes`] call, pace delivery
/// against the idle-cycle budget, deliver per-request completions, release
/// the budget.
fn worker_loop(shared: &Shared, shard_idx: usize, mut trng: QuacTrng) {
    // Token-bucket pacing deadline: each batch owes `time_for_bytes` of
    // wall-clock on top of the previous deadline (or of "now" after an idle
    // gap — idle time is not banked into a later burst). Accumulating per
    // batch keeps every single wait within `time_for_bytes`' saturation
    // bound, no matter how much has been delivered in total.
    let mut pace_deadline = Instant::now();
    let mut batch: Vec<RngRequest> = Vec::new();
    let mut senders: Vec<Option<mpsc::Sender<Completion>>> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut stream_offset: u64 = 0;
    loop {
        // Phase 1 (locked): wait for work, dequeue a batch and its tickets.
        batch.clear();
        senders.clear();
        let batch_bytes = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    Lifecycle::Draining if st.shards[shard_idx].is_empty() => return,
                    _ if !st.shards[shard_idx].is_empty() => break,
                    _ => st = shared.work.wait(st).expect("service state poisoned"),
                }
            }
            let bytes = st.shards[shard_idx].pop_batch(
                shared.cfg.max_batch_bytes,
                shared.cfg.max_batch_requests,
                &mut batch,
            );
            senders.extend(batch.iter().map(|r| st.senders.remove(&r.seq)));
            bytes
        };

        // Phase 2 (unlocked): one generation pass covers the whole batch.
        buf.resize(batch_bytes, 0);
        trng.fill_bytes(&mut buf);

        // Phase 3: pace delivery against the channel's idle-cycle budget.
        // The batch's bytes stay charged against the in-flight budget while
        // the worker is parked, which is what makes backpressure reflect the
        // *delivered* rate, not the simulation's generation speed.
        if !shared.cfg.pacing.is_unlimited() {
            pace_deadline = pace_deadline.max(Instant::now())
                + shared.cfg.pacing.time_for_bytes(batch_bytes);
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    // A drain lifts pacing: queued work is delivered
                    // promptly instead of making `shutdown()` wait out the
                    // budget (which saturates at an hour per batch).
                    Lifecycle::Draining => break,
                    Lifecycle::Running => {}
                }
                let now = Instant::now();
                if now >= pace_deadline {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, pace_deadline - now)
                    .expect("service state poisoned");
                st = guard;
            }
        }

        // Phase 4: deliver completions, then release the budget.
        let mut offset_in_batch = 0usize;
        for (req, sender) in batch.iter().zip(&senders) {
            let bytes = buf[offset_in_batch..offset_in_batch + req.len].to_vec();
            if let Some(sender) = sender {
                // A dropped receiver just means the client lost interest.
                let _ = sender.send(Completion {
                    client: req.client,
                    seq: req.seq,
                    shard: shard_idx,
                    stream_offset: stream_offset + offset_in_batch as u64,
                    bytes,
                });
            }
            offset_in_batch += req.len;
        }
        stream_offset += batch_bytes as u64;
        {
            let mut st = shared.state.lock().expect("service state poisoned");
            st.in_flight_bytes -= batch_bytes;
            st.stats.completed_requests += batch.len() as u64;
            st.stats.completed_bytes += batch_bytes as u64;
            st.stats.per_shard_bytes[shard_idx] += batch_bytes as u64;
            shared.space.notify_all();
        }
    }
}
