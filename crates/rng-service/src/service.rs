//! The concurrent RNG service: per-shard worker threads behind a shared,
//! bounded request queue, with an optional continuous-validation loop
//! grading what the shards serve.

use crate::health::ShardHealth;
use crate::queue::{least_loaded_shard, ShardScheduler};
use crate::request::{ClientId, Completion, Priority, RngRequest, SubmitError};
use crate::stats::ServiceStats;
use crate::validate::{tap_quota_allows, StreamValidator, TapChunk, ValidationConfig};
use qt_dram_core::BitVec;
use qt_memctrl::IdleBudget;
use quac_trng::pipeline::QuacTrng;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What admission does while *every* shard is quarantined (the service is
/// degraded: nothing can be placed, and parking submitters indefinitely
/// would look like a deadlock).
///
/// Requests accepted *before* the last shard tripped stay queued either way:
/// they are served at the next readmission, expired by their deadlines, or
/// drained at shutdown — the policy only governs new admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Reject immediately with [`SubmitError::Degraded`] — the brownout is
    /// visible to clients the moment it starts, and no caller ever parks on
    /// a service that may never recover.
    #[default]
    FailFast,
    /// Park blocking submissions up to `max_wait` for a readmission, then
    /// reject with [`SubmitError::Degraded`]. A parked submission whose own
    /// request deadline is earlier gives up at that deadline instead.
    /// Non-blocking `try_submit` never parks and rejects immediately under
    /// either policy.
    Park {
        /// Longest a blocking submission waits for a shard to be readmitted.
        max_wait: Duration,
    },
}

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngServiceConfig {
    /// Backpressure budget: the maximum number of requested-but-undelivered
    /// bytes (queued plus being generated). `try_submit` rejects and
    /// `submit` parks while admitting a request would exceed it.
    pub max_inflight_bytes: usize,
    /// Coalescing target: a worker keeps dequeuing requests until the batch
    /// reaches this many bytes (small reads ride along in whole QUAC
    /// iterations instead of paying one wakeup each).
    pub max_batch_bytes: usize,
    /// Hard cap on requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Anti-starvation window of the per-shard scheduler: at most this many
    /// consecutive high-priority dispatches while normal work waits.
    pub fairness_window: u32,
    /// Per-shard delivery-rate budget (idle DRAM cycles of the channel).
    /// [`IdleBudget::unlimited`] disables pacing.
    pub pacing: IdleBudget,
    /// Continuous in-service validation (off by default). See
    /// [`crate::validate`] for the loop and [`crate::health`] for the
    /// quarantine state machine.
    pub validation: ValidationConfig,
    /// Admission behaviour while every shard is quarantined.
    pub degraded: DegradedPolicy,
    /// Period of the expiry sweep that completes overdue queued requests
    /// with [`Expired`] — the upper bound on how long past its deadline a
    /// still-queued request lingers.
    pub expiry_sweep_interval: Duration,
}

impl Default for RngServiceConfig {
    fn default() -> Self {
        RngServiceConfig {
            max_inflight_bytes: 1 << 20,
            max_batch_bytes: 16 << 10,
            max_batch_requests: 64,
            fairness_window: 4,
            pacing: IdleBudget::unlimited(),
            validation: ValidationConfig::default(),
            degraded: DegradedPolicy::default(),
            expiry_sweep_interval: Duration::from_millis(5),
        }
    }
}

/// The receipt for one submitted request; redeem it with [`Ticket::wait`],
/// poll it with [`Ticket::try_wait`], or wait with a bound via
/// [`Ticket::wait_deadline`].
///
/// A ticket resolves to exactly one terminal outcome — served, [`Expired`],
/// or [`Canceled`] — and caches it: once any wait variant has observed the
/// outcome, every later call reports the *same* outcome (a served ticket
/// polled twice returns the same completion again rather than misreporting
/// `Canceled` after the channel drains).
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    shard: usize,
    rx: mpsc::Receiver<Outcome>,
    /// The cached terminal outcome. Interior mutability keeps the polling
    /// API (`&self`) while making the pending→terminal transition atomic
    /// from the caller's point of view: the state observed here never
    /// changes once set.
    resolved: std::cell::RefCell<Option<Result<Completion, WaitError>>>,
}

/// The request was discarded before completion (service aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request canceled: the RNG service stopped before serving it")
    }
}

impl std::error::Error for Canceled {}

/// The request's deadline passed while it was still queued: the expiry sweep
/// completed it without generating any bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// Submission sequence number of the expired request.
    pub seq: u64,
    /// The deadline the request was submitted with.
    pub deadline: Instant,
    /// When the sweep expired it (at most one
    /// [`expiry_sweep_interval`](RngServiceConfig::expiry_sweep_interval)
    /// past the deadline while the service runs).
    pub expired_at: Instant,
}

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} expired {} µs past its deadline while still queued",
            self.seq,
            self.expired_at.saturating_duration_since(self.deadline).as_micros()
        )
    }
}

impl std::error::Error for Expired {}

/// Terminal failure of a ticket: why the request will never deliver bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed while the request was still queued.
    Expired(Expired),
    /// The service was aborted before serving it.
    Canceled(Canceled),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Expired(e) => e.fmt(f),
            WaitError::Canceled(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for WaitError {}

/// What travels over a ticket's completion channel. `Canceled` has no
/// variant: it is the channel disconnecting with nothing buffered (the
/// service dropped the sender without serving or expiring the request).
#[derive(Debug)]
enum Outcome {
    /// The request was served.
    Served(Completion),
    /// The request's deadline passed while it was queued.
    Expired(Expired),
}

impl Ticket {
    /// Submission sequence number of the request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard (channel) the request was assigned to at admission.
    /// Quarantine failover may re-place a queued request, so the shard that
    /// actually generates the bytes is [`Completion::shard`], which is
    /// authoritative for provenance.
    pub fn shard(&self) -> usize {
        self.shard
    }

    fn resolve(&self, outcome: Outcome) -> Result<Completion, WaitError> {
        let resolution = match outcome {
            Outcome::Served(c) => Ok(c),
            Outcome::Expired(e) => Err(WaitError::Expired(e)),
        };
        *self.resolved.borrow_mut() = Some(resolution.clone());
        resolution
    }

    fn resolve_canceled(&self) -> WaitError {
        let err = WaitError::Canceled(Canceled);
        *self.resolved.borrow_mut() = Some(Err(err));
        err
    }

    fn cached(&self) -> Option<Result<Completion, WaitError>> {
        self.resolved.borrow().clone()
    }

    /// Blocks until the request resolves and returns its bytes.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] if the request's deadline passed while it was
    /// still queued; [`WaitError::Canceled`] if the service was aborted
    /// before serving it.
    pub fn wait(self) -> Result<Completion, WaitError> {
        if let Some(resolution) = self.cached() {
            return resolution;
        }
        match self.rx.recv() {
            Ok(outcome) => self.resolve(outcome),
            Err(_) => Err(self.resolve_canceled()),
        }
    }

    /// Non-blocking poll: `Ok(Some)` once the request has been served,
    /// `Ok(None)` while it is still pending. Idempotent after resolution:
    /// a served ticket keeps returning its completion, an expired or
    /// canceled one keeps returning the same error.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] once the deadline has expired the request;
    /// [`WaitError::Canceled`] once the service aborted it (polling loops
    /// must not keep spinning on a dead request).
    pub fn try_wait(&self) -> Result<Option<Completion>, WaitError> {
        if self.cached().is_none() {
            match self.rx.try_recv() {
                Ok(outcome) => drop(self.resolve(outcome)),
                Err(mpsc::TryRecvError::Empty) => return Ok(None),
                Err(mpsc::TryRecvError::Disconnected) => drop(self.resolve_canceled()),
            }
        }
        self.cached().expect("ticket just resolved").map(Some)
    }

    /// Blocks until the request resolves or `deadline` passes, whichever is
    /// first: `Ok(Some)` with the bytes, or `Ok(None)` if the request is
    /// still pending at the deadline (the request itself stays queued — this
    /// bounds the *wait*, not the request; submit with a deadline to bound
    /// the request).
    ///
    /// # Errors
    ///
    /// The same terminal errors as [`Ticket::wait`].
    pub fn wait_deadline(&self, deadline: Instant) -> Result<Option<Completion>, WaitError> {
        if let Some(resolution) = self.cached() {
            return resolution.map(Some);
        }
        let now = Instant::now();
        if now >= deadline {
            return match self.rx.try_recv() {
                Ok(outcome) => self.resolve(outcome).map(Some),
                Err(mpsc::TryRecvError::Empty) => Ok(None),
                Err(mpsc::TryRecvError::Disconnected) => Err(self.resolve_canceled()),
            };
        }
        match self.rx.recv_timeout(deadline - now) {
            Ok(outcome) => self.resolve(outcome).map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.resolve_canceled()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    Running,
    /// Serve everything already queued, then stop.
    Draining,
    /// Discard queued work and stop as soon as possible.
    Aborting,
}

#[derive(Debug)]
struct State {
    shards: Vec<ShardScheduler>,
    /// Outcome channel of each queued request, keyed by sequence number.
    /// Dropping a sender cancels its ticket.
    senders: HashMap<u64, mpsc::Sender<Outcome>>,
    in_flight_bytes: usize,
    /// Admitted-but-undelivered bytes per shard — the load metric
    /// least-loaded placement minimises (unlike the scheduler's queued
    /// bytes, it still counts a batch being generated).
    shard_load: Vec<usize>,
    /// Per-shard validation health; placement skips shards that are not
    /// [`ShardState::Healthy`].
    health: Vec<ShardHealth>,
    /// Per-shard stream epoch, bumped at readmission. Tap chunks carry the
    /// epoch of the batch they were served in, so bytes served while the
    /// shard was fenced (stale stream content, possibly still faulty) can
    /// never fold into the fresh post-readmission health record even if
    /// they linger in the tap queue across the whole requalification.
    shard_epoch: Vec<u64>,
    /// Rotation point for placement tie-breaking (advanced past each pick,
    /// so equal loads degrade to round-robin).
    next_shard: usize,
    next_seq: u64,
    lifecycle: Lifecycle,
    stats: ServiceStats,
}

impl State {
    /// A consistent stats snapshot including per-shard health.
    fn snapshot(&self) -> ServiceStats {
        let mut stats = self.stats.clone();
        stats.shard_health = self.health.clone();
        stats
    }
}

#[derive(Debug)]
struct Shared {
    cfg: RngServiceConfig,
    /// Approximate occupancy of the tap queue (incremented by workers on a
    /// successful send, decremented by the validator on receive). Lets the
    /// lossy tap skip building a batch copy it would immediately drop.
    tap_fill: std::sync::atomic::AtomicUsize,
    state: Mutex<State>,
    /// Signalled when work arrives or the lifecycle changes (workers wait
    /// here, both for requests and during pacing sleeps), and when a shard
    /// is quarantined (its idle worker must wake to requalify it).
    work: Condvar,
    /// Signalled when in-flight bytes are released (parked submitters wait
    /// here).
    space: Condvar,
}

/// A sharded, batching, backpressured random-number service: one worker
/// thread per [`QuacTrng`] shard (channel), a priority/round-robin scheduler
/// per shard, least-loaded quarantine-aware placement, a service-wide
/// in-flight byte budget, and (optionally) a continuous-validation thread
/// grading served windows with the NIST battery.
///
/// See the [crate docs](crate) for the architecture and the determinism
/// contract, [`crate::validate`] for the validation loop, and
/// [`crate::health`] for the quarantine state machine.
#[derive(Debug)]
pub struct RngService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    validator: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl RngService {
    /// Starts the service over the given per-channel generator shards
    /// (usually built with [`QuacTrng::shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, or if validation is enabled with a
    /// window that is not a whole number of bytes.
    pub fn start(shards: Vec<QuacTrng>, cfg: RngServiceConfig) -> Self {
        assert!(!shards.is_empty(), "the RNG service needs at least one shard");
        if cfg.validation.enabled {
            // Fail here, in the caller's thread — a malformed window would
            // otherwise panic the validator/worker threads at first use,
            // silently disabling validation (their join errors are dropped).
            assert!(
                cfg.validation.window_bits > 0 && cfg.validation.window_bits % 8 == 0,
                "validation windows must be a positive whole number of bytes, got {} bits",
                cfg.validation.window_bits
            );
        }
        let shard_count = shards.len();
        let shared = Arc::new(Shared {
            cfg,
            tap_fill: std::sync::atomic::AtomicUsize::new(0),
            state: Mutex::new(State {
                shards: (0..shard_count).map(|_| ShardScheduler::new(cfg.fairness_window)).collect(),
                senders: HashMap::new(),
                in_flight_bytes: 0,
                shard_load: vec![0; shard_count],
                health: vec![ShardHealth::new(); shard_count],
                shard_epoch: vec![0; shard_count],
                next_shard: 0,
                next_seq: 0,
                lifecycle: Lifecycle::Running,
                stats: ServiceStats {
                    per_shard_bytes: vec![0; shard_count],
                    ..ServiceStats::default()
                },
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let (tap_tx, validator) = if cfg.validation.enabled {
            let (tx, rx) = mpsc::sync_channel(cfg.validation.tap_queue_batches.max(1));
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("rng-validator".into())
                .spawn(move || validator_loop(&shared, &rx, shard_count))
                .expect("spawning the RNG validator");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(idx, trng)| {
                let shared = Arc::clone(&shared);
                let tap = tap_tx.clone();
                std::thread::Builder::new()
                    .name(format!("rng-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx, trng, tap))
                    .expect("spawning an RNG shard worker")
            })
            .collect();
        let sweeper = {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("rng-expiry".into())
                    .spawn(move || expiry_loop(&shared))
                    .expect("spawning the RNG expiry sweep"),
            )
        };
        // `tap_tx` drops here: the validator exits once every worker's
        // clone is gone (i.e. after the workers join).
        RngService { shared, workers, validator, sweeper }
    }

    /// Number of shards (channels) serving requests.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The service configuration.
    pub fn config(&self) -> &RngServiceConfig {
        &self.shared.cfg
    }

    /// Submits a request, parking the caller while the in-flight byte budget
    /// is exhausted (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] for requests that
    /// can never be served; [`SubmitError::ShuttingDown`] once shutdown has
    /// begun (including while parked); [`SubmitError::Degraded`] while every
    /// shard is quarantined, per the configured [`DegradedPolicy`].
    pub fn submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(client, priority, len, None)
    }

    /// Like [`RngService::submit`], with a completion deadline: if the
    /// request is still queued (generation not started) when `deadline`
    /// passes, the expiry sweep completes its ticket with
    /// [`WaitError::Expired`] within one
    /// [`expiry_sweep_interval`](RngServiceConfig::expiry_sweep_interval)
    /// instead of leaving the client parked.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns. Under
    /// [`DegradedPolicy::Park`], degraded parking additionally gives up at
    /// `deadline` if that is earlier than the policy's bound.
    pub fn submit_with_deadline(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Instant,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(client, priority, len, Some(deadline))
    }

    fn submit_inner(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        // Pinned at the first degraded observation of this call, so repeated
        // park/wake rounds share one bound instead of restarting it.
        let mut park_deadline: Option<Instant> = None;
        loop {
            if st.lifecycle != Lifecycle::Running {
                return Err(SubmitError::ShuttingDown);
            }
            if !st.health.iter().any(ShardHealth::is_serving) {
                let quarantined = st.health.len();
                let bound = match self.shared.cfg.degraded {
                    DegradedPolicy::FailFast => {
                        st.stats.degraded_rejections += 1;
                        return Err(SubmitError::Degraded { quarantined });
                    }
                    DegradedPolicy::Park { max_wait } => {
                        let bound = *park_deadline.get_or_insert_with(|| Instant::now() + max_wait);
                        deadline.map_or(bound, |d| bound.min(d))
                    }
                };
                let now = Instant::now();
                if now >= bound {
                    st.stats.degraded_rejections += 1;
                    return Err(SubmitError::Degraded { quarantined });
                }
                let (guard, _) = self
                    .shared
                    .space
                    .wait_timeout(st, bound - now)
                    .expect("service state poisoned");
                st = guard;
                continue;
            }
            if st.in_flight_bytes + len <= self.shared.cfg.max_inflight_bytes {
                break;
            }
            st = self.shared.space.wait(st).expect("service state poisoned");
        }
        Ok(self.admit(&mut st, client, priority, len, deadline))
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns, plus
    /// [`SubmitError::Saturated`] when the request does not fit the in-flight
    /// budget right now. While every shard is quarantined this rejects with
    /// [`SubmitError::Degraded`] immediately, under either policy (a
    /// non-blocking call never parks).
    pub fn try_submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.try_submit_inner(client, priority, len, None)
    }

    /// Like [`RngService::try_submit`], with a completion deadline (see
    /// [`RngService::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// Everything [`RngService::try_submit`] returns.
    pub fn try_submit_with_deadline(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Instant,
    ) -> Result<Ticket, SubmitError> {
        self.try_submit_inner(client, priority, len, Some(deadline))
    }

    fn try_submit_inner(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        if st.lifecycle != Lifecycle::Running {
            return Err(SubmitError::ShuttingDown);
        }
        if !st.health.iter().any(ShardHealth::is_serving) {
            st.stats.degraded_rejections += 1;
            return Err(SubmitError::Degraded { quarantined: st.health.len() });
        }
        if st.in_flight_bytes + len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::Saturated {
                requested: len,
                in_flight: st.in_flight_bytes,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(self.admit(&mut st, client, priority, len, deadline))
    }

    /// A snapshot of the running counters, including per-shard health.
    pub fn stats(&self) -> ServiceStats {
        self.lock().snapshot()
    }

    /// Bytes currently in flight (queued plus being generated).
    pub fn in_flight_bytes(&self) -> usize {
        self.lock().in_flight_bytes
    }

    /// Serves everything already queued, then stops the workers and returns
    /// the final counters. Parked submitters are released with
    /// [`SubmitError::ShuttingDown`], and delivery pacing is lifted for the
    /// drain, so shutdown completes promptly even under a near-zero idle
    /// budget. A shard mid-requalification abandons it (no readmission
    /// survives shutdown anyway).
    pub fn shutdown(self) -> ServiceStats {
        self.stop(Lifecycle::Draining)
    }

    /// Stops as soon as possible, discarding queued work; the discarded
    /// requests' tickets report [`Canceled`].
    pub fn abort(self) -> ServiceStats {
        self.stop(Lifecycle::Aborting)
    }

    fn stop(mut self, how: Lifecycle) -> ServiceStats {
        {
            let mut st = self.lock();
            st.lifecycle = how;
            if how == Lifecycle::Aborting {
                // Cancel every queued ticket by dropping its sender.
                st.senders.clear();
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The workers' tap senders are gone; the validator drains the
        // channel and exits on disconnect. The sweeper saw the lifecycle
        // change on the work condvar and exited.
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
        self.lock().snapshot()
    }

    fn validate(&self, len: usize) -> Result<(), SubmitError> {
        if len == 0 {
            return Err(SubmitError::Empty);
        }
        if len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::TooLarge {
                requested: len,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(())
    }

    /// Admits a validated, budget-fitting request: assigns its sequence
    /// number and shard — the least-loaded healthy shard, with rotation
    /// tie-breaking so an idle service degrades to the round-robin
    /// assignment the serial-equivalence tests replay — charges the budget,
    /// records the queue-depth sample, and wakes a worker.
    fn admit(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Ticket {
        let seq = st.next_seq;
        st.next_seq += 1;
        let shard = {
            let st = &**st;
            least_loaded_shard(
                st.shards.len(),
                st.next_shard,
                |i| st.shard_load[i],
                |i| !st.health[i].is_serving(),
            )
        };
        st.next_shard = (shard + 1) % st.shards.len();
        st.in_flight_bytes += len;
        st.shard_load[shard] += len;
        st.stats.peak_in_flight_bytes = st.stats.peak_in_flight_bytes.max(st.in_flight_bytes);
        let depth = st.shards[shard].len() as u64;
        st.stats.queue_depth.record(depth);
        let (tx, rx) = mpsc::channel();
        st.senders.insert(seq, tx);
        st.shards[shard].push(RngRequest {
            client,
            priority,
            len,
            seq,
            submitted_at: Instant::now(),
            deadline,
        });
        self.shared.work.notify_all();
        Ticket { seq, shard, rx, resolved: std::cell::RefCell::new(None) }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("service state poisoned")
    }
}

impl Drop for RngService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.lifecycle = Lifecycle::Aborting;
            st.senders.clear();
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

/// One shard's worker: dequeue a coalesced batch, generate all its bytes
/// with a single buffer-reusing [`QuacTrng::fill_bytes`] call, pace delivery
/// against the idle-cycle budget, deliver per-request completions, tap a
/// copy for the validator, release the budget. When the shard is
/// quarantined and its queue has drained, the worker switches to
/// requalification: recharacterise, generate probation windows, grade them,
/// and readmit on a passing streak.
fn worker_loop(
    shared: &Shared,
    shard_idx: usize,
    mut trng: QuacTrng,
    tap: Option<mpsc::SyncSender<TapChunk>>,
) {
    // Token-bucket pacing deadline: each batch owes `time_for_bytes` of
    // wall-clock on top of the previous deadline (or of "now" after an idle
    // gap — idle time is not banked into a later burst). Accumulating per
    // batch keeps every single wait within `time_for_bytes`' saturation
    // bound, no matter how much has been delivered in total.
    let mut pace_deadline = Instant::now();
    let mut batch: Vec<RngRequest> = Vec::new();
    let mut senders: Vec<Option<mpsc::Sender<Outcome>>> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut expired_scratch: Vec<RngRequest> = Vec::new();
    // Delivered-byte offset within the current stream epoch: readmission
    // restarts the shard's stream (recharacterisation rebuilds the
    // sampler), so offsets restart with it — completions stay gapless per
    // `(shard, epoch)`.
    let mut stream_offset: u64 = 0;
    let mut current_epoch: u64 = 0;
    // Coverage accounting of the lossy tap (bytes served vs bytes tapped by
    // this worker), enforcing `ValidationConfig::target_coverage`.
    let mut tap_served: u64 = 0;
    let mut tap_taken: u64 = 0;
    loop {
        // Phase 1 (locked): wait for work, dequeue a batch and its tickets —
        // or detect that this shard is fenced off with an empty queue and
        // must requalify instead.
        batch.clear();
        senders.clear();
        let mut requalify = false;
        let mut batch_epoch = 0u64;
        let batch_bytes = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    Lifecycle::Draining if st.shards[shard_idx].is_empty() => return,
                    // A drain serves everything accepted, even through a
                    // fenced shard — the documented last resort when no
                    // healthy shard could take its queue over.
                    Lifecycle::Draining => break,
                    // While running, a fenced shard never serves: its queued
                    // work was failed over to healthy shards at the
                    // quarantine trip (or waits for readmission, expiry, or
                    // a drain when none was healthy). Requalify instead.
                    Lifecycle::Running if !st.health[shard_idx].is_serving() => {
                        requalify = true;
                        break;
                    }
                    Lifecycle::Running if !st.shards[shard_idx].is_empty() => break,
                    Lifecycle::Running => {
                        st = shared.work.wait(st).expect("service state poisoned");
                    }
                }
            }
            if requalify {
                0
            } else {
                // Complete overdue requests before composing the batch, so a
                // request whose deadline already passed is never generated —
                // the sweep thread bounds the idle case, this bounds the
                // busy one.
                let released =
                    sweep_shard_expired(&mut st, shard_idx, Instant::now(), &mut expired_scratch);
                if released > 0 {
                    shared.space.notify_all();
                }
                if st.shards[shard_idx].is_empty() {
                    continue; // everything queued here had expired
                }
                batch_epoch = st.shard_epoch[shard_idx];
                let bytes = st.shards[shard_idx].pop_batch(
                    shared.cfg.max_batch_bytes,
                    shared.cfg.max_batch_requests,
                    &mut batch,
                );
                senders.extend(batch.iter().map(|r| st.senders.remove(&r.seq)));
                bytes
            }
        };
        if requalify {
            if !requalify_shard(shared, shard_idx, &mut trng, &mut buf) {
                return;
            }
            continue;
        }
        if batch_epoch != current_epoch {
            current_epoch = batch_epoch;
            stream_offset = 0;
        }

        // Phase 2 (unlocked): one generation pass covers the whole batch.
        buf.resize(batch_bytes, 0);
        trng.fill_bytes(&mut buf);

        // Phase 3: pace delivery against the channel's idle-cycle budget.
        // The batch's bytes stay charged against the in-flight budget while
        // the worker is parked, which is what makes backpressure reflect the
        // *delivered* rate, not the simulation's generation speed.
        if !shared.cfg.pacing.is_unlimited() {
            pace_deadline = pace_deadline.max(Instant::now())
                + shared.cfg.pacing.time_for_bytes(batch_bytes);
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    // A drain lifts pacing: queued work is delivered
                    // promptly instead of making `shutdown()` wait out the
                    // budget (which saturates at an hour per batch).
                    Lifecycle::Draining => break,
                    Lifecycle::Running => {}
                }
                let now = Instant::now();
                if now >= pace_deadline {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, pace_deadline - now)
                    .expect("service state poisoned");
                st = guard;
            }
        }

        // Phase 4: tap a copy of the served bytes for the validator,
        // release the budget, then deliver completions. The budget and
        // per-shard load are released *before* any completion becomes
        // visible: a sequential client that saw its reply and immediately
        // submits again must observe the load already settled, or placement
        // (and with it the per-request replay determinism the tests pin)
        // would race the release.
        let mut tapped = 0u64;
        let mut dropped = 0u64;
        if let Some(tap) = &tap {
            use std::sync::atomic::Ordering;
            if shared.cfg.validation.lossless_tap {
                // Parks this worker until the validator catches up: full,
                // deterministic coverage for tests (and backpressure stays
                // charged meanwhile, coupling admission to validation).
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                if tap.send(chunk).is_ok() {
                    tapped = batch_bytes as u64;
                }
            } else if !tap_quota_allows(
                tap_taken,
                tap_served,
                batch_bytes as u64,
                shared.cfg.validation.target_coverage,
            ) || shared.tap_fill.load(Ordering::Relaxed)
                >= shared.cfg.validation.tap_queue_batches.max(1)
            {
                // Over the coverage budget, or the queue is (approximately)
                // full — the expected steady state when generation outpaces
                // grading. Skip without paying the batch copy a try_send
                // would immediately discard.
                dropped = batch_bytes as u64;
            } else {
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                match tap.try_send(chunk) {
                    Ok(()) => {
                        shared.tap_fill.fetch_add(1, Ordering::Relaxed);
                        tapped = batch_bytes as u64;
                    }
                    Err(_) => dropped = batch_bytes as u64,
                }
            }
            tap_served += batch_bytes as u64;
            tap_taken += tapped;
        }
        {
            let now = Instant::now();
            let mut st = shared.state.lock().expect("service state poisoned");
            st.in_flight_bytes -= batch_bytes;
            st.shard_load[shard_idx] -= batch_bytes;
            st.stats.completed_requests += batch.len() as u64;
            st.stats.completed_bytes += batch_bytes as u64;
            st.stats.per_shard_bytes[shard_idx] += batch_bytes as u64;
            st.stats.validation.bytes_tapped += tapped;
            st.stats.validation.bytes_dropped += dropped;
            for req in &batch {
                st.stats
                    .latency_us
                    .record(now.duration_since(req.submitted_at).as_micros() as u64);
                if let Some(deadline) = req.deadline {
                    // Slack left at delivery; a late delivery (deadline
                    // passed mid-generation, too late to expire) records 0.
                    st.stats
                        .deadline_slack_us
                        .record(deadline.saturating_duration_since(now).as_micros() as u64);
                }
            }
            shared.space.notify_all();
        }
        let mut offset_in_batch = 0usize;
        for (req, sender) in batch.iter().zip(&senders) {
            let bytes = buf[offset_in_batch..offset_in_batch + req.len].to_vec();
            if let Some(sender) = sender {
                // A dropped receiver just means the client lost interest.
                let _ = sender.send(Outcome::Served(Completion {
                    client: req.client,
                    seq: req.seq,
                    shard: shard_idx,
                    epoch: batch_epoch,
                    stream_offset: stream_offset + offset_in_batch as u64,
                    bytes,
                }));
            }
            offset_in_batch += req.len;
        }
        stream_offset += batch_bytes as u64;
    }
}

/// What the requalification loop should do next, checked between its
/// expensive unlocked steps.
enum RequalifyGate {
    /// Keep requalifying.
    Continue,
    /// The service is draining and requests are still queued on this shard
    /// (stranded from a total-quarantine interval no readmission resolved):
    /// go back and serve them — shutdown's serve-everything-accepted
    /// contract outranks the fence, as the documented last resort.
    ServeQueue,
    /// The service is stopping.
    Stop,
}

fn requalify_gate(shared: &Shared, shard_idx: usize) -> RequalifyGate {
    let st = shared.state.lock().expect("service state poisoned");
    match st.lifecycle {
        Lifecycle::Aborting => RequalifyGate::Stop,
        Lifecycle::Draining if !st.shards[shard_idx].is_empty() => RequalifyGate::ServeQueue,
        Lifecycle::Draining => RequalifyGate::Stop,
        // While running, a fenced shard never serves — queued work here (it
        // exists only while no shard is healthy) waits for a readmission
        // failover, its deadline, or a drain.
        Lifecycle::Running => RequalifyGate::Continue,
    }
}

/// Requalifies a quarantined shard: recharacterise, generate probation
/// windows that are graded but never served, and readmit after
/// [`HealthPolicy::probation_windows`](crate::health::HealthPolicy) pass in
/// a row; a failing window loops back to recharacterisation (after a brief
/// backoff, so a permanently faulty shard cycles instead of pegging a
/// core). Readmission re-places any requests stranded on still-fenced peers
/// (see [`failover_fenced_queues`]). Returns `false` only when the service
/// stopped mid-requalification (the worker exits); `true` hands control
/// back to the serving loop — during a drain, also to serve requests
/// stranded on this shard as the last resort.
fn requalify_shard(
    shared: &Shared,
    shard_idx: usize,
    trng: &mut QuacTrng,
    scratch: &mut Vec<u8>,
) -> bool {
    let vcfg = &shared.cfg.validation;
    let window_bytes = vcfg.window_bits / 8;
    loop {
        match requalify_gate(shared, shard_idx) {
            RequalifyGate::Stop => return false,
            RequalifyGate::ServeQueue => return true,
            RequalifyGate::Continue => {}
        }
        // Recharacterise only from the Quarantined state (fresh quarantine,
        // or a failed probation window dropped back to it). A shard still
        // in Probation — requalification yielded to queued work between
        // windows — resumes its run instead of repeating the expensive
        // sweep, so steady fallback traffic cannot defer readmission
        // indefinitely.
        let needs_recharacterization = {
            let st = shared.state.lock().expect("service state poisoned");
            st.health[shard_idx].state != crate::health::ShardState::Probation
        };
        if needs_recharacterization {
            // The sweep runs unlocked, so healthy shards keep serving.
            trng.recharacterize(&vcfg.recharacterization);
            let mut st = shared.state.lock().expect("service state poisoned");
            st.health[shard_idx].begin_probation();
            st.stats.validation.recharacterizations += 1;
        }
        loop {
            match requalify_gate(shared, shard_idx) {
                RequalifyGate::Stop => return false,
                RequalifyGate::ServeQueue => return true,
                RequalifyGate::Continue => {}
            }
            scratch.resize(window_bytes, 0);
            trng.fill_bytes(scratch);
            let bits = BitVec::from_bytes(scratch, vcfg.window_bits);
            let pass = qt_nist_sts::run_all_tests(&bits).iter().all(|r| r.passes(vcfg.alpha));
            let mut st = shared.state.lock().expect("service state poisoned");
            st.stats.validation.probation_windows += 1;
            if st.health[shard_idx].record_probation_window(pass, &vcfg.policy) {
                st.stats.validation.readmissions += 1;
                // A new stream epoch: any tap chunk from before this point
                // (fenced-era bytes still queued at the validator) is stale
                // and must not grade the fresh record.
                st.shard_epoch[shard_idx] += 1;
                // With a healthy shard back, re-place any work stranded on
                // still-fenced peers during a total-quarantine interval.
                failover_fenced_queues(&mut st);
                // Back in placement: wake submitters and peers.
                shared.work.notify_all();
                shared.space.notify_all();
                return true;
            }
            if !pass {
                break; // recharacterise again, after the backoff below
            }
        }
        // Backoff between requalification attempts: a shard whose fault
        // persists would otherwise alternate characterisation sweeps and
        // battery runs at full duty for the life of the service. Waiting on
        // the work condvar keeps shutdown prompt.
        let st = shared.state.lock().expect("service state poisoned");
        if st.lifecycle == Lifecycle::Running {
            let _ = shared
                .work
                .wait_timeout(st, Duration::from_millis(50))
                .expect("service state poisoned");
        }
    }
}

/// The validator thread: drains tapped chunks, windows them per shard,
/// grades full windows with the word-parallel battery, and folds verdicts
/// into shard health — quarantining a shard the moment a bound trips.
fn validator_loop(shared: &Shared, rx: &mpsc::Receiver<TapChunk>, shard_count: usize) {
    let vcfg = &shared.cfg.validation;
    let mut validator = StreamValidator::new(shard_count, vcfg.window_bits);
    while let Ok(chunk) = rx.recv() {
        if !vcfg.lossless_tap {
            // Mirror of the worker-side increment: the occupancy estimate
            // lets lossy workers skip copies the full queue would drop.
            shared.tap_fill.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Skip grading while aborting (but keep draining so lossless
        // workers never block on a dead validator), for fenced-off shards
        // (their tapped bytes predate the quarantine and are stale), and
        // for chunks from a previous stream epoch (fenced-era bytes that
        // sat in this queue across a readmission).
        let skip = {
            let st = shared.state.lock().expect("service state poisoned");
            st.lifecycle == Lifecycle::Aborting
                || !st.health[chunk.shard].is_serving()
                || st.shard_epoch[chunk.shard] != chunk.epoch
        };
        if skip {
            validator.reset_shard(chunk.shard);
            continue;
        }
        let mut fenced = false;
        validator.ingest(&chunk, |report| {
            let mut st = shared.state.lock().expect("service state poisoned");
            if !st.health[chunk.shard].is_serving() {
                return; // quarantined by an earlier window of this push
            }
            let pass = report.passes(vcfg.alpha);
            let quarantine = st.health[chunk.shard].record_window(pass, &vcfg.policy);
            st.stats.validation.windows_validated += 1;
            if !pass {
                st.stats.validation.windows_failed += 1;
            }
            if quarantine {
                fenced = true;
                st.stats.validation.quarantines += 1;
                // Re-place the fenced shard's queued (not-yet-generated)
                // requests onto healthy shards: accepted work is not served
                // through a suspect generator. No-op when no shard is
                // healthy — the requests then wait for readmission, their
                // deadlines, or a drain.
                failover_shard_queue(&mut st, chunk.shard);
                // Wake the fenced shard's worker (to requalify), the
                // failover targets (new work), and any parked submitter
                // (which must observe the degraded state).
                shared.work.notify_all();
                shared.space.notify_all();
            }
        });
        if fenced {
            // Whatever partial window followed the quarantine decision is
            // stale stream content.
            validator.reset_shard(chunk.shard);
        }
    }
}

/// Completes every queued request of `shard` whose deadline is at or before
/// `now` with a typed [`Expired`] outcome, releasing its budget and load.
/// Returns the bytes released (the caller notifies `space` when non-zero).
fn sweep_shard_expired(
    st: &mut State,
    shard: usize,
    now: Instant,
    scratch: &mut Vec<RngRequest>,
) -> usize {
    scratch.clear();
    st.shards[shard].remove_expired(now, scratch);
    let mut released = 0;
    for req in scratch.drain(..) {
        st.in_flight_bytes -= req.len;
        st.shard_load[shard] -= req.len;
        released += req.len;
        st.stats.expired_requests += 1;
        if let Some(tx) = st.senders.remove(&req.seq) {
            let _ = tx.send(Outcome::Expired(Expired {
                seq: req.seq,
                deadline: req.deadline.expect("expired requests carry a deadline"),
                expired_at: now,
            }));
        }
    }
    released
}

/// The expiry sweep thread: every
/// [`expiry_sweep_interval`](RngServiceConfig::expiry_sweep_interval) (or
/// sooner, on any work notification) it completes overdue queued requests on
/// every shard — including fenced and idle shards, whose workers never reach
/// the pop-time sweep. Exits when the service leaves `Running` (a drain
/// serves the remaining queue; an abort cancels it).
fn expiry_loop(shared: &Shared) {
    let mut scratch: Vec<RngRequest> = Vec::new();
    let mut st = shared.state.lock().expect("service state poisoned");
    loop {
        if st.lifecycle != Lifecycle::Running {
            return;
        }
        let now = Instant::now();
        let mut released = 0;
        for shard in 0..st.shards.len() {
            released += sweep_shard_expired(&mut st, shard, now, &mut scratch);
        }
        if released > 0 {
            shared.space.notify_all();
        }
        let (guard, _) = shared
            .work
            .wait_timeout(st, shared.cfg.expiry_sweep_interval)
            .expect("service state poisoned");
        st = guard;
    }
}

/// Re-places the queued (not-yet-generated) requests of shard `from` onto
/// healthy shards via the least-loaded placement rule, preserving their
/// dispatch order. The in-flight budget stays charged (the requests are
/// still admitted); only the per-shard load moves. No-op while no shard is
/// healthy. Returns how many requests moved.
fn failover_shard_queue(st: &mut State, from: usize) -> u64 {
    if st.shards[from].is_empty() || !st.health.iter().any(ShardHealth::is_serving) {
        return 0;
    }
    let mut moved: Vec<RngRequest> = Vec::new();
    st.shards[from].drain_ordered(&mut moved);
    let count = moved.len() as u64;
    for req in moved {
        let target = {
            let st = &*st;
            least_loaded_shard(
                st.shards.len(),
                st.next_shard,
                |i| st.shard_load[i],
                |i| !st.health[i].is_serving(),
            )
        };
        st.next_shard = (target + 1) % st.shards.len();
        st.shard_load[from] -= req.len;
        st.shard_load[target] += req.len;
        st.shards[target].push(req);
    }
    st.stats.failed_over_requests += count;
    count
}

/// Failover sweep at readmission: re-places every still-fenced shard's queue
/// (work stranded during a total-quarantine interval, when the trip-time
/// failover had no healthy target) onto the shards now serving.
fn failover_fenced_queues(st: &mut State) -> u64 {
    let mut total = 0;
    for shard in 0..st.shards.len() {
        if !st.health[shard].is_serving() {
            total += failover_shard_queue(st, shard);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::ShardState;

    #[test]
    fn shard_state_default_is_healthy() {
        assert_eq!(ShardState::default(), ShardState::Healthy);
        assert!(ShardHealth::new().is_serving());
    }

    #[test]
    fn config_default_disables_validation() {
        let cfg = RngServiceConfig::default();
        assert!(!cfg.validation.enabled);
    }
}
