//! The concurrent RNG service: per-shard worker threads behind a shared,
//! bounded request queue, with an optional continuous-validation loop
//! grading what the shards serve.

use crate::health::ShardHealth;
use crate::queue::{least_loaded_shard, ShardScheduler};
use crate::request::{ClientId, Completion, Priority, RngRequest, SubmitError};
use crate::stats::ServiceStats;
use crate::validate::{tap_quota_allows, StreamValidator, TapChunk, ValidationConfig};
use qt_dram_core::BitVec;
use qt_memctrl::IdleBudget;
use quac_trng::pipeline::QuacTrng;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngServiceConfig {
    /// Backpressure budget: the maximum number of requested-but-undelivered
    /// bytes (queued plus being generated). `try_submit` rejects and
    /// `submit` parks while admitting a request would exceed it.
    pub max_inflight_bytes: usize,
    /// Coalescing target: a worker keeps dequeuing requests until the batch
    /// reaches this many bytes (small reads ride along in whole QUAC
    /// iterations instead of paying one wakeup each).
    pub max_batch_bytes: usize,
    /// Hard cap on requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Anti-starvation window of the per-shard scheduler: at most this many
    /// consecutive high-priority dispatches while normal work waits.
    pub fairness_window: u32,
    /// Per-shard delivery-rate budget (idle DRAM cycles of the channel).
    /// [`IdleBudget::unlimited`] disables pacing.
    pub pacing: IdleBudget,
    /// Continuous in-service validation (off by default). See
    /// [`crate::validate`] for the loop and [`crate::health`] for the
    /// quarantine state machine.
    pub validation: ValidationConfig,
}

impl Default for RngServiceConfig {
    fn default() -> Self {
        RngServiceConfig {
            max_inflight_bytes: 1 << 20,
            max_batch_bytes: 16 << 10,
            max_batch_requests: 64,
            fairness_window: 4,
            pacing: IdleBudget::unlimited(),
            validation: ValidationConfig::default(),
        }
    }
}

/// The receipt for one submitted request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    shard: usize,
    rx: mpsc::Receiver<Completion>,
}

/// The request was discarded before completion (service aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request canceled: the RNG service stopped before serving it")
    }
}

impl std::error::Error for Canceled {}

impl Ticket {
    /// Submission sequence number of the request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard (channel) the request was assigned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the request is served and returns its bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Canceled`] if the service was aborted before serving it.
    pub fn wait(self) -> Result<Completion, Canceled> {
        self.rx.recv().map_err(|_| Canceled)
    }

    /// Non-blocking poll: `Ok(Some)` once the request has been served,
    /// `Ok(None)` while it is still pending.
    ///
    /// # Errors
    ///
    /// Returns [`Canceled`] if the service was aborted before serving it
    /// (polling loops must not keep spinning on a dead request).
    pub fn try_wait(&self) -> Result<Option<Completion>, Canceled> {
        match self.rx.try_recv() {
            Ok(completion) => Ok(Some(completion)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(Canceled),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    Running,
    /// Serve everything already queued, then stop.
    Draining,
    /// Discard queued work and stop as soon as possible.
    Aborting,
}

#[derive(Debug)]
struct State {
    shards: Vec<ShardScheduler>,
    /// Completion channel of each queued request, keyed by sequence number.
    /// Dropping a sender cancels its ticket.
    senders: HashMap<u64, mpsc::Sender<Completion>>,
    in_flight_bytes: usize,
    /// Admitted-but-undelivered bytes per shard — the load metric
    /// least-loaded placement minimises (unlike the scheduler's queued
    /// bytes, it still counts a batch being generated).
    shard_load: Vec<usize>,
    /// Per-shard validation health; placement skips shards that are not
    /// [`ShardState::Healthy`].
    health: Vec<ShardHealth>,
    /// Per-shard stream epoch, bumped at readmission. Tap chunks carry the
    /// epoch of the batch they were served in, so bytes served while the
    /// shard was fenced (stale stream content, possibly still faulty) can
    /// never fold into the fresh post-readmission health record even if
    /// they linger in the tap queue across the whole requalification.
    shard_epoch: Vec<u64>,
    /// Rotation point for placement tie-breaking (advanced past each pick,
    /// so equal loads degrade to round-robin).
    next_shard: usize,
    next_seq: u64,
    lifecycle: Lifecycle,
    stats: ServiceStats,
}

impl State {
    /// A consistent stats snapshot including per-shard health.
    fn snapshot(&self) -> ServiceStats {
        let mut stats = self.stats.clone();
        stats.shard_health = self.health.clone();
        stats
    }
}

#[derive(Debug)]
struct Shared {
    cfg: RngServiceConfig,
    /// Approximate occupancy of the tap queue (incremented by workers on a
    /// successful send, decremented by the validator on receive). Lets the
    /// lossy tap skip building a batch copy it would immediately drop.
    tap_fill: std::sync::atomic::AtomicUsize,
    state: Mutex<State>,
    /// Signalled when work arrives or the lifecycle changes (workers wait
    /// here, both for requests and during pacing sleeps), and when a shard
    /// is quarantined (its idle worker must wake to requalify it).
    work: Condvar,
    /// Signalled when in-flight bytes are released (parked submitters wait
    /// here).
    space: Condvar,
}

/// A sharded, batching, backpressured random-number service: one worker
/// thread per [`QuacTrng`] shard (channel), a priority/round-robin scheduler
/// per shard, least-loaded quarantine-aware placement, a service-wide
/// in-flight byte budget, and (optionally) a continuous-validation thread
/// grading served windows with the NIST battery.
///
/// See the [crate docs](crate) for the architecture and the determinism
/// contract, [`crate::validate`] for the validation loop, and
/// [`crate::health`] for the quarantine state machine.
#[derive(Debug)]
pub struct RngService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    validator: Option<JoinHandle<()>>,
}

impl RngService {
    /// Starts the service over the given per-channel generator shards
    /// (usually built with [`QuacTrng::shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, or if validation is enabled with a
    /// window that is not a whole number of bytes.
    pub fn start(shards: Vec<QuacTrng>, cfg: RngServiceConfig) -> Self {
        assert!(!shards.is_empty(), "the RNG service needs at least one shard");
        if cfg.validation.enabled {
            // Fail here, in the caller's thread — a malformed window would
            // otherwise panic the validator/worker threads at first use,
            // silently disabling validation (their join errors are dropped).
            assert!(
                cfg.validation.window_bits > 0 && cfg.validation.window_bits % 8 == 0,
                "validation windows must be a positive whole number of bytes, got {} bits",
                cfg.validation.window_bits
            );
        }
        let shard_count = shards.len();
        let shared = Arc::new(Shared {
            cfg,
            tap_fill: std::sync::atomic::AtomicUsize::new(0),
            state: Mutex::new(State {
                shards: (0..shard_count).map(|_| ShardScheduler::new(cfg.fairness_window)).collect(),
                senders: HashMap::new(),
                in_flight_bytes: 0,
                shard_load: vec![0; shard_count],
                health: vec![ShardHealth::new(); shard_count],
                shard_epoch: vec![0; shard_count],
                next_shard: 0,
                next_seq: 0,
                lifecycle: Lifecycle::Running,
                stats: ServiceStats {
                    per_shard_bytes: vec![0; shard_count],
                    ..ServiceStats::default()
                },
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let (tap_tx, validator) = if cfg.validation.enabled {
            let (tx, rx) = mpsc::sync_channel(cfg.validation.tap_queue_batches.max(1));
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("rng-validator".into())
                .spawn(move || validator_loop(&shared, &rx, shard_count))
                .expect("spawning the RNG validator");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(idx, trng)| {
                let shared = Arc::clone(&shared);
                let tap = tap_tx.clone();
                std::thread::Builder::new()
                    .name(format!("rng-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx, trng, tap))
                    .expect("spawning an RNG shard worker")
            })
            .collect();
        // `tap_tx` drops here: the validator exits once every worker's
        // clone is gone (i.e. after the workers join).
        RngService { shared, workers, validator }
    }

    /// Number of shards (channels) serving requests.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The service configuration.
    pub fn config(&self) -> &RngServiceConfig {
        &self.shared.cfg
    }

    /// Submits a request, parking the caller while the in-flight byte budget
    /// is exhausted (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] for requests that
    /// can never be served; [`SubmitError::ShuttingDown`] once shutdown has
    /// begun (including while parked).
    pub fn submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        loop {
            if st.lifecycle != Lifecycle::Running {
                return Err(SubmitError::ShuttingDown);
            }
            if st.in_flight_bytes + len <= self.shared.cfg.max_inflight_bytes {
                break;
            }
            st = self.shared.space.wait(st).expect("service state poisoned");
        }
        Ok(self.admit(&mut st, client, priority, len))
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns, plus
    /// [`SubmitError::Saturated`] when the request does not fit the in-flight
    /// budget right now.
    pub fn try_submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        if st.lifecycle != Lifecycle::Running {
            return Err(SubmitError::ShuttingDown);
        }
        if st.in_flight_bytes + len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::Saturated {
                requested: len,
                in_flight: st.in_flight_bytes,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(self.admit(&mut st, client, priority, len))
    }

    /// A snapshot of the running counters, including per-shard health.
    pub fn stats(&self) -> ServiceStats {
        self.lock().snapshot()
    }

    /// Bytes currently in flight (queued plus being generated).
    pub fn in_flight_bytes(&self) -> usize {
        self.lock().in_flight_bytes
    }

    /// Serves everything already queued, then stops the workers and returns
    /// the final counters. Parked submitters are released with
    /// [`SubmitError::ShuttingDown`], and delivery pacing is lifted for the
    /// drain, so shutdown completes promptly even under a near-zero idle
    /// budget. A shard mid-requalification abandons it (no readmission
    /// survives shutdown anyway).
    pub fn shutdown(self) -> ServiceStats {
        self.stop(Lifecycle::Draining)
    }

    /// Stops as soon as possible, discarding queued work; the discarded
    /// requests' tickets report [`Canceled`].
    pub fn abort(self) -> ServiceStats {
        self.stop(Lifecycle::Aborting)
    }

    fn stop(mut self, how: Lifecycle) -> ServiceStats {
        {
            let mut st = self.lock();
            st.lifecycle = how;
            if how == Lifecycle::Aborting {
                // Cancel every queued ticket by dropping its sender.
                st.senders.clear();
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The workers' tap senders are gone; the validator drains the
        // channel and exits on disconnect.
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
        self.lock().snapshot()
    }

    fn validate(&self, len: usize) -> Result<(), SubmitError> {
        if len == 0 {
            return Err(SubmitError::Empty);
        }
        if len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::TooLarge {
                requested: len,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(())
    }

    /// Admits a validated, budget-fitting request: assigns its sequence
    /// number and shard — the least-loaded healthy shard, with rotation
    /// tie-breaking so an idle service degrades to the round-robin
    /// assignment the serial-equivalence tests replay — charges the budget,
    /// records the queue-depth sample, and wakes a worker.
    fn admit(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Ticket {
        let seq = st.next_seq;
        st.next_seq += 1;
        let shard = {
            let st = &**st;
            least_loaded_shard(
                st.shards.len(),
                st.next_shard,
                |i| st.shard_load[i],
                |i| !st.health[i].is_serving(),
            )
        };
        st.next_shard = (shard + 1) % st.shards.len();
        st.in_flight_bytes += len;
        st.shard_load[shard] += len;
        st.stats.peak_in_flight_bytes = st.stats.peak_in_flight_bytes.max(st.in_flight_bytes);
        let depth = st.shards[shard].len() as u64;
        st.stats.queue_depth.record(depth);
        let (tx, rx) = mpsc::channel();
        st.senders.insert(seq, tx);
        st.shards[shard].push(RngRequest {
            client,
            priority,
            len,
            seq,
            submitted_at: Instant::now(),
        });
        self.shared.work.notify_all();
        Ticket { seq, shard, rx }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("service state poisoned")
    }
}

impl Drop for RngService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.lifecycle = Lifecycle::Aborting;
            st.senders.clear();
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
    }
}

/// One shard's worker: dequeue a coalesced batch, generate all its bytes
/// with a single buffer-reusing [`QuacTrng::fill_bytes`] call, pace delivery
/// against the idle-cycle budget, deliver per-request completions, tap a
/// copy for the validator, release the budget. When the shard is
/// quarantined and its queue has drained, the worker switches to
/// requalification: recharacterise, generate probation windows, grade them,
/// and readmit on a passing streak.
fn worker_loop(
    shared: &Shared,
    shard_idx: usize,
    mut trng: QuacTrng,
    tap: Option<mpsc::SyncSender<TapChunk>>,
) {
    // Token-bucket pacing deadline: each batch owes `time_for_bytes` of
    // wall-clock on top of the previous deadline (or of "now" after an idle
    // gap — idle time is not banked into a later burst). Accumulating per
    // batch keeps every single wait within `time_for_bytes`' saturation
    // bound, no matter how much has been delivered in total.
    let mut pace_deadline = Instant::now();
    let mut batch: Vec<RngRequest> = Vec::new();
    let mut senders: Vec<Option<mpsc::Sender<Completion>>> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    // Delivered-byte offset within the current stream epoch: readmission
    // restarts the shard's stream (recharacterisation rebuilds the
    // sampler), so offsets restart with it — completions stay gapless per
    // `(shard, epoch)`.
    let mut stream_offset: u64 = 0;
    let mut current_epoch: u64 = 0;
    // Coverage accounting of the lossy tap (bytes served vs bytes tapped by
    // this worker), enforcing `ValidationConfig::target_coverage`.
    let mut tap_served: u64 = 0;
    let mut tap_taken: u64 = 0;
    loop {
        // Phase 1 (locked): wait for work, dequeue a batch and its tickets —
        // or detect that this shard is fenced off with an empty queue and
        // must requalify instead.
        batch.clear();
        senders.clear();
        let mut requalify = false;
        let mut batch_epoch = 0u64;
        let batch_bytes = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    Lifecycle::Draining if st.shards[shard_idx].is_empty() => return,
                    // Anything already queued is served (the drain step of
                    // quarantine) before requalification starts.
                    _ if !st.shards[shard_idx].is_empty() => break,
                    Lifecycle::Running if !st.health[shard_idx].is_serving() => {
                        requalify = true;
                        break;
                    }
                    _ => st = shared.work.wait(st).expect("service state poisoned"),
                }
            }
            if requalify {
                0
            } else {
                batch_epoch = st.shard_epoch[shard_idx];
                let bytes = st.shards[shard_idx].pop_batch(
                    shared.cfg.max_batch_bytes,
                    shared.cfg.max_batch_requests,
                    &mut batch,
                );
                senders.extend(batch.iter().map(|r| st.senders.remove(&r.seq)));
                bytes
            }
        };
        if requalify {
            if !requalify_shard(shared, shard_idx, &mut trng, &mut buf) {
                return;
            }
            continue;
        }
        if batch_epoch != current_epoch {
            current_epoch = batch_epoch;
            stream_offset = 0;
        }

        // Phase 2 (unlocked): one generation pass covers the whole batch.
        buf.resize(batch_bytes, 0);
        trng.fill_bytes(&mut buf);

        // Phase 3: pace delivery against the channel's idle-cycle budget.
        // The batch's bytes stay charged against the in-flight budget while
        // the worker is parked, which is what makes backpressure reflect the
        // *delivered* rate, not the simulation's generation speed.
        if !shared.cfg.pacing.is_unlimited() {
            pace_deadline = pace_deadline.max(Instant::now())
                + shared.cfg.pacing.time_for_bytes(batch_bytes);
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                match st.lifecycle {
                    Lifecycle::Aborting => return,
                    // A drain lifts pacing: queued work is delivered
                    // promptly instead of making `shutdown()` wait out the
                    // budget (which saturates at an hour per batch).
                    Lifecycle::Draining => break,
                    Lifecycle::Running => {}
                }
                let now = Instant::now();
                if now >= pace_deadline {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, pace_deadline - now)
                    .expect("service state poisoned");
                st = guard;
            }
        }

        // Phase 4: tap a copy of the served bytes for the validator,
        // release the budget, then deliver completions. The budget and
        // per-shard load are released *before* any completion becomes
        // visible: a sequential client that saw its reply and immediately
        // submits again must observe the load already settled, or placement
        // (and with it the per-request replay determinism the tests pin)
        // would race the release.
        let mut tapped = 0u64;
        let mut dropped = 0u64;
        if let Some(tap) = &tap {
            use std::sync::atomic::Ordering;
            if shared.cfg.validation.lossless_tap {
                // Parks this worker until the validator catches up: full,
                // deterministic coverage for tests (and backpressure stays
                // charged meanwhile, coupling admission to validation).
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                if tap.send(chunk).is_ok() {
                    tapped = batch_bytes as u64;
                }
            } else if !tap_quota_allows(
                tap_taken,
                tap_served,
                batch_bytes as u64,
                shared.cfg.validation.target_coverage,
            ) || shared.tap_fill.load(Ordering::Relaxed)
                >= shared.cfg.validation.tap_queue_batches.max(1)
            {
                // Over the coverage budget, or the queue is (approximately)
                // full — the expected steady state when generation outpaces
                // grading. Skip without paying the batch copy a try_send
                // would immediately discard.
                dropped = batch_bytes as u64;
            } else {
                let chunk = TapChunk {
                    shard: shard_idx,
                    epoch: batch_epoch,
                    bytes: buf[..batch_bytes].to_vec(),
                };
                match tap.try_send(chunk) {
                    Ok(()) => {
                        shared.tap_fill.fetch_add(1, Ordering::Relaxed);
                        tapped = batch_bytes as u64;
                    }
                    Err(_) => dropped = batch_bytes as u64,
                }
            }
            tap_served += batch_bytes as u64;
            tap_taken += tapped;
        }
        {
            let now = Instant::now();
            let mut st = shared.state.lock().expect("service state poisoned");
            st.in_flight_bytes -= batch_bytes;
            st.shard_load[shard_idx] -= batch_bytes;
            st.stats.completed_requests += batch.len() as u64;
            st.stats.completed_bytes += batch_bytes as u64;
            st.stats.per_shard_bytes[shard_idx] += batch_bytes as u64;
            st.stats.validation.bytes_tapped += tapped;
            st.stats.validation.bytes_dropped += dropped;
            for req in &batch {
                st.stats
                    .latency_us
                    .record(now.duration_since(req.submitted_at).as_micros() as u64);
            }
            shared.space.notify_all();
        }
        let mut offset_in_batch = 0usize;
        for (req, sender) in batch.iter().zip(&senders) {
            let bytes = buf[offset_in_batch..offset_in_batch + req.len].to_vec();
            if let Some(sender) = sender {
                // A dropped receiver just means the client lost interest.
                let _ = sender.send(Completion {
                    client: req.client,
                    seq: req.seq,
                    shard: shard_idx,
                    epoch: batch_epoch,
                    stream_offset: stream_offset + offset_in_batch as u64,
                    bytes,
                });
            }
            offset_in_batch += req.len;
        }
        stream_offset += batch_bytes as u64;
    }
}

/// What the requalification loop should do next, checked between its
/// expensive unlocked steps.
enum RequalifyGate {
    /// Keep requalifying.
    Continue,
    /// Requests are queued on this shard (the all-quarantined placement
    /// fallback admits to fenced shards rather than deadlocking): go back
    /// and serve them — accepted work is never stranded behind probation.
    ServeQueue,
    /// The service is stopping.
    Stop,
}

fn requalify_gate(shared: &Shared, shard_idx: usize) -> RequalifyGate {
    let st = shared.state.lock().expect("service state poisoned");
    match st.lifecycle {
        Lifecycle::Aborting => RequalifyGate::Stop,
        // Queued work outranks both requalification and a drain: accepted
        // requests are served before this worker does anything else, which
        // is what keeps shutdown()'s serve-everything-accepted contract
        // intact even mid-requalification (the serving loop then handles
        // `Draining` + empty queue by exiting).
        _ if !st.shards[shard_idx].is_empty() => RequalifyGate::ServeQueue,
        Lifecycle::Draining => RequalifyGate::Stop,
        Lifecycle::Running => RequalifyGate::Continue,
    }
}

/// Requalifies a quarantined shard: recharacterise, generate probation
/// windows that are graded but never served, and readmit after
/// [`HealthPolicy::probation_windows`](crate::health::HealthPolicy) pass in
/// a row; a failing window loops back to recharacterisation (after a brief
/// backoff, so a permanently faulty shard cycles instead of pegging a
/// core). Yields between steps whenever requests are queued on this shard —
/// the all-quarantined placement fallback still gets served — and returns
/// `false` only when the service stopped mid-requalification (the worker
/// exits); `true` hands control back to the serving loop, which re-enters
/// requalification once the queue is empty again if the shard is still
/// fenced.
fn requalify_shard(
    shared: &Shared,
    shard_idx: usize,
    trng: &mut QuacTrng,
    scratch: &mut Vec<u8>,
) -> bool {
    let vcfg = &shared.cfg.validation;
    let window_bytes = vcfg.window_bits / 8;
    loop {
        match requalify_gate(shared, shard_idx) {
            RequalifyGate::Stop => return false,
            RequalifyGate::ServeQueue => return true,
            RequalifyGate::Continue => {}
        }
        // Recharacterise only from the Quarantined state (fresh quarantine,
        // or a failed probation window dropped back to it). A shard still
        // in Probation — requalification yielded to queued work between
        // windows — resumes its run instead of repeating the expensive
        // sweep, so steady fallback traffic cannot defer readmission
        // indefinitely.
        let needs_recharacterization = {
            let st = shared.state.lock().expect("service state poisoned");
            st.health[shard_idx].state != crate::health::ShardState::Probation
        };
        if needs_recharacterization {
            // The sweep runs unlocked, so healthy shards keep serving.
            trng.recharacterize(&vcfg.recharacterization);
            let mut st = shared.state.lock().expect("service state poisoned");
            st.health[shard_idx].begin_probation();
            st.stats.validation.recharacterizations += 1;
        }
        loop {
            match requalify_gate(shared, shard_idx) {
                RequalifyGate::Stop => return false,
                RequalifyGate::ServeQueue => return true,
                RequalifyGate::Continue => {}
            }
            scratch.resize(window_bytes, 0);
            trng.fill_bytes(scratch);
            let bits = BitVec::from_bytes(scratch, vcfg.window_bits);
            let pass = qt_nist_sts::run_all_tests(&bits).iter().all(|r| r.passes(vcfg.alpha));
            let mut st = shared.state.lock().expect("service state poisoned");
            st.stats.validation.probation_windows += 1;
            if st.health[shard_idx].record_probation_window(pass, &vcfg.policy) {
                st.stats.validation.readmissions += 1;
                // A new stream epoch: any tap chunk from before this point
                // (fenced-era bytes still queued at the validator) is stale
                // and must not grade the fresh record.
                st.shard_epoch[shard_idx] += 1;
                // Back in placement: wake submitters and peers.
                shared.work.notify_all();
                shared.space.notify_all();
                return true;
            }
            if !pass {
                break; // recharacterise again, after the backoff below
            }
        }
        // Backoff between requalification attempts: a shard whose fault
        // persists would otherwise alternate characterisation sweeps and
        // battery runs at full duty for the life of the service. Waiting on
        // the work condvar keeps shutdown and new queue arrivals prompt.
        let st = shared.state.lock().expect("service state poisoned");
        if st.lifecycle == Lifecycle::Running && st.shards[shard_idx].is_empty() {
            let _ = shared
                .work
                .wait_timeout(st, std::time::Duration::from_millis(50))
                .expect("service state poisoned");
        }
    }
}

/// The validator thread: drains tapped chunks, windows them per shard,
/// grades full windows with the word-parallel battery, and folds verdicts
/// into shard health — quarantining a shard the moment a bound trips.
fn validator_loop(shared: &Shared, rx: &mpsc::Receiver<TapChunk>, shard_count: usize) {
    let vcfg = &shared.cfg.validation;
    let mut validator = StreamValidator::new(shard_count, vcfg.window_bits);
    while let Ok(chunk) = rx.recv() {
        if !vcfg.lossless_tap {
            // Mirror of the worker-side increment: the occupancy estimate
            // lets lossy workers skip copies the full queue would drop.
            shared.tap_fill.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Skip grading while aborting (but keep draining so lossless
        // workers never block on a dead validator), for fenced-off shards
        // (their tapped bytes predate the quarantine and are stale), and
        // for chunks from a previous stream epoch (fenced-era bytes that
        // sat in this queue across a readmission).
        let skip = {
            let st = shared.state.lock().expect("service state poisoned");
            st.lifecycle == Lifecycle::Aborting
                || !st.health[chunk.shard].is_serving()
                || st.shard_epoch[chunk.shard] != chunk.epoch
        };
        if skip {
            validator.reset_shard(chunk.shard);
            continue;
        }
        let mut fenced = false;
        validator.ingest(&chunk, |report| {
            let mut st = shared.state.lock().expect("service state poisoned");
            if !st.health[chunk.shard].is_serving() {
                return; // quarantined by an earlier window of this push
            }
            let pass = report.passes(vcfg.alpha);
            let quarantine = st.health[chunk.shard].record_window(pass, &vcfg.policy);
            st.stats.validation.windows_validated += 1;
            if !pass {
                st.stats.validation.windows_failed += 1;
            }
            if quarantine {
                fenced = true;
                st.stats.validation.quarantines += 1;
                // The shard is out of placement as of now; wake its (likely
                // idle) worker so it drains and requalifies.
                shared.work.notify_all();
            }
        });
        if fenced {
            // Whatever partial window followed the quarantine decision is
            // stale stream content.
            validator.reset_shard(chunk.shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::ShardState;

    #[test]
    fn shard_state_default_is_healthy() {
        assert_eq!(ShardState::default(), ShardState::Healthy);
        assert!(ShardHealth::new().is_serving());
    }

    #[test]
    fn config_default_disables_validation() {
        let cfg = RngServiceConfig::default();
        assert!(!cfg.validation.enabled);
    }
}
