//! Lifecycle glue of the service: admission and thread start/stop. The
//! configuration and shared state live in `crate::state`; the control
//! plane (placement, health, degraded admission, requalification,
//! expiry/failover) in [`crate::control`] and [`crate::placement`]; the
//! data plane (batch loop, pacing, tap, delivery) in `crate::worker` and
//! [`crate::queue`]; the client-side receipt in [`crate::ticket`].

use crate::control::{expiry_loop, validator_loop, ServicePolicies};
use crate::health::ShardHealth;
use crate::mixer::{self, MixedTicket};
use crate::queue::ShardScheduler;
use crate::request::{ClientId, Priority, RngRequest, SubmitError};
use crate::state::{Lifecycle, RngServiceConfig, Shared, State};
use crate::stats::{EntropyLedger, ServiceStats};
use crate::ticket::{ticket_channel, Expired, ExpiryStage, Ticket};
use crate::validate::TapChunk;
use crate::worker::worker_loop;
use quac_trng::pipeline::QuacTrng;
use quac_trng::{BackendKind, EntropyBackend};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// A sharded, batching, backpressured random-number service: one worker
/// thread per [`QuacTrng`] shard (channel), a priority/round-robin scheduler
/// per shard, least-loaded quarantine-aware placement, a service-wide
/// in-flight byte budget, and (optionally) a continuous-validation thread
/// grading served windows with the NIST battery.
///
/// See the [crate docs](crate) for the architecture and the determinism
/// contract, [`crate::validate`] for the validation loop, and
/// [`crate::health`] for the quarantine state machine.
#[derive(Debug)]
pub struct RngService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    validator: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl RngService {
    /// Starts the service over the given per-channel generator shards
    /// (usually built with [`QuacTrng::shards`]) with the stock policies
    /// ([`ServicePolicies::for_config`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, or if validation is enabled with a
    /// window that is not a whole number of bytes.
    pub fn start(shards: Vec<QuacTrng>, cfg: RngServiceConfig) -> Self {
        let policies = ServicePolicies::for_config(&cfg);
        Self::start_with_policies(shards, cfg, policies)
    }

    /// Like [`RngService::start`], with an explicit control-plane policy set
    /// — the seam where custom placement, degraded-admission, or
    /// requalification rules plug in without touching the service's state
    /// machine. A placement policy that is a pure function of its view
    /// preserves the replay-determinism contract.
    ///
    /// # Panics
    ///
    /// As [`RngService::start`].
    pub fn start_with_policies(
        shards: Vec<QuacTrng>,
        cfg: RngServiceConfig,
        policies: ServicePolicies,
    ) -> Self {
        let backends = shards
            .into_iter()
            .map(|shard| Box::new(shard) as Box<dyn EntropyBackend>)
            .collect();
        Self::start_backends(backends, cfg, policies)
    }

    /// Starts the service over a heterogeneous set of entropy backends — the
    /// **entropy mesh** — with the mesh policies
    /// ([`ServicePolicies::for_mesh`]): tiered placement routes
    /// latency-sensitive ([`Priority::High`]) requests to D-RaNGe shards and
    /// bulk ([`Priority::Normal`]) to QUAC shards, with retention the last
    /// resort, and quarantine failover re-places a fenced shard's queue
    /// across the remaining tiers by the same rule. Each shard's
    /// [`BackendKind`] is taken from its
    /// [`class`](quac_trng::EntropyBackend::class), and the per-backend
    /// metric labels in [`export`](crate::export) follow it.
    ///
    /// # Panics
    ///
    /// As [`RngService::start`].
    pub fn start_mesh(backends: Vec<Box<dyn EntropyBackend>>, cfg: RngServiceConfig) -> Self {
        let policies = ServicePolicies::for_mesh(&cfg);
        Self::start_backends(backends, cfg, policies)
    }

    /// Like [`RngService::start_mesh`], with an explicit control-plane
    /// policy set.
    ///
    /// # Panics
    ///
    /// As [`RngService::start`].
    pub fn start_mesh_with_policies(
        backends: Vec<Box<dyn EntropyBackend>>,
        cfg: RngServiceConfig,
        policies: ServicePolicies,
    ) -> Self {
        Self::start_backends(backends, cfg, policies)
    }

    fn start_backends(
        backends: Vec<Box<dyn EntropyBackend>>,
        cfg: RngServiceConfig,
        policies: ServicePolicies,
    ) -> Self {
        assert!(
            !backends.is_empty(),
            "the RNG service needs at least one shard"
        );
        if cfg.validation.enabled {
            // Fail here, in the caller's thread — a malformed window would
            // otherwise panic the validator/worker threads at first use,
            // silently disabling validation (their join errors are dropped).
            assert!(
                cfg.validation.window_bits > 0 && cfg.validation.window_bits % 8 == 0,
                "validation windows must be a positive whole number of bytes, got {} bits",
                cfg.validation.window_bits
            );
        }
        let shard_count = backends.len();
        let backend_kinds: Vec<BackendKind> = backends
            .iter()
            .map(|backend| backend.class().kind)
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            policies,
            tap_fill: std::sync::atomic::AtomicUsize::new(0),
            state: Mutex::new(State {
                shards: (0..shard_count)
                    .map(|_| ShardScheduler::new(cfg.fairness_window))
                    .collect(),
                senders: HashMap::new(),
                in_flight_bytes: 0,
                shard_load: vec![0; shard_count],
                health: vec![ShardHealth::new(); shard_count],
                backend_kinds,
                shard_epoch: vec![0; shard_count],
                next_shard: 0,
                next_seq: 0,
                lifecycle: Lifecycle::Running,
                stats: ServiceStats {
                    per_shard_bytes: vec![0; shard_count],
                    per_shard_ledger: vec![EntropyLedger::default(); shard_count],
                    ..ServiceStats::default()
                },
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            deadlines: Condvar::new(),
        });
        let (tap_tx, validator) = if cfg.validation.enabled {
            let (tx, rx) = mpsc::sync_channel::<TapChunk>(cfg.validation.tap_queue_batches.max(1));
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("rng-validator".into())
                .spawn(move || validator_loop(&shared, &rx, shard_count))
                .expect("spawning the RNG validator");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = backends
            .into_iter()
            .enumerate()
            .map(|(idx, trng)| {
                let shared = Arc::clone(&shared);
                let tap = tap_tx.clone();
                std::thread::Builder::new()
                    .name(format!("rng-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx, trng, tap))
                    .expect("spawning an RNG shard worker")
            })
            .collect();
        let sweeper = {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("rng-expiry".into())
                    .spawn(move || expiry_loop(&shared))
                    .expect("spawning the RNG expiry sweep"),
            )
        };
        // `tap_tx` drops here: the validator exits once every worker's
        // clone is gone (i.e. after the workers join).
        RngService {
            shared,
            workers,
            validator,
            sweeper,
        }
    }

    /// Number of shards (channels) serving requests.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The service configuration.
    pub fn config(&self) -> &RngServiceConfig {
        &self.shared.cfg
    }

    /// Submits a request, parking the caller while the in-flight byte budget
    /// is exhausted (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] for requests that
    /// can never be served; [`SubmitError::ShuttingDown`] once shutdown has
    /// begun (including while parked); [`SubmitError::Degraded`] while every
    /// shard is quarantined, per the configured [`DegradedPolicy`](crate::DegradedPolicy).
    pub fn submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(client, priority, len, None)
    }

    /// Like [`RngService::submit`], with a completion deadline: if the
    /// request is still queued (generation not started) when `deadline`
    /// passes, the expiry sweep completes its ticket with
    /// [`WaitError::Expired`](crate::WaitError::Expired) within one
    /// [`expiry_sweep_interval`](RngServiceConfig::expiry_sweep_interval)
    /// instead of leaving the client parked. A deadline already in the past
    /// returns an immediately-[`Expired`] ticket without admitting or
    /// charging the request, and a submission parked on the in-flight
    /// budget gives up with the same typed outcome when its deadline passes
    /// — no submit path blocks past `max(deadline, policy bound)`.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns. Under
    /// [`DegradedPolicy::Park`](crate::DegradedPolicy::Park), degraded
    /// parking additionally gives up at
    /// `deadline` if that is earlier than the policy's bound (returning
    /// [`SubmitError::Degraded`], since the request was never admitted for
    /// a shard to expire).
    pub fn submit_with_deadline(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Instant,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(client, priority, len, Some(deadline))
    }

    fn submit_inner(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        self.charge_qos(&mut st, client, len)?;
        // Pinned at the first degraded observation of this call, so repeated
        // park/wake rounds share one bound instead of restarting it.
        let mut park_deadline: Option<Instant> = None;
        // Whether this submission has parked on the in-flight budget — the
        // expiry stage a deadline crossed mid-park is attributed to.
        let mut parked = false;
        loop {
            if st.lifecycle != Lifecycle::Running {
                return Err(SubmitError::ShuttingDown);
            }
            if !st.health.iter().any(ShardHealth::is_serving) {
                let quarantined = st.health.len();
                let now = Instant::now();
                let bound = match self.shared.policies.admission.degraded_park_bound(now) {
                    None => {
                        st.stats.degraded_rejections += 1;
                        return Err(SubmitError::Degraded { quarantined });
                    }
                    Some(policy_bound) => {
                        let bound = *park_deadline.get_or_insert(policy_bound);
                        deadline.map_or(bound, |d| bound.min(d))
                    }
                };
                if now >= bound {
                    st.stats.degraded_rejections += 1;
                    return Err(SubmitError::Degraded { quarantined });
                }
                let (guard, _) = self
                    .shared
                    .space
                    .wait_timeout(st, bound - now)
                    .expect("service state poisoned");
                st = guard;
                continue;
            }
            // A deadline already behind us — at first admission, or after a
            // round parked on the in-flight budget below — resolves with the
            // typed outcome immediately: the request is never placed or
            // charged, and no submit path blocks past its own deadline.
            if let Some(d) = deadline {
                let now = Instant::now();
                if now >= d {
                    let stage = if parked {
                        ExpiryStage::Parked
                    } else {
                        ExpiryStage::Admission
                    };
                    return Ok(self.admit_expired(&mut st, d, now, stage));
                }
            }
            if st.in_flight_bytes + len <= self.shared.cfg.max_inflight_bytes {
                break;
            }
            parked = true;
            st = match deadline {
                None => self.shared.space.wait(st).expect("service state poisoned"),
                // Bounded budget park: wake at the deadline and fall through
                // to the expiry check above.
                Some(d) => {
                    let now = Instant::now();
                    let (guard, _) = self
                        .shared
                        .space
                        .wait_timeout(st, d.saturating_duration_since(now))
                        .expect("service state poisoned");
                    guard
                }
            };
        }
        Ok(self.admit(&mut st, client, priority, len, deadline))
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::submit`] returns, plus
    /// [`SubmitError::Saturated`] when the request does not fit the in-flight
    /// budget right now. While every shard is quarantined this rejects with
    /// [`SubmitError::Degraded`] immediately, under either policy (a
    /// non-blocking call never parks).
    pub fn try_submit(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<Ticket, SubmitError> {
        self.try_submit_inner(client, priority, len, None)
    }

    /// Like [`RngService::try_submit`], with a completion deadline (see
    /// [`RngService::submit_with_deadline`]). A deadline already in the past
    /// returns an immediately-[`Expired`] ticket without admitting the
    /// request.
    ///
    /// # Errors
    ///
    /// Everything [`RngService::try_submit`] returns.
    pub fn try_submit_with_deadline(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Instant,
    ) -> Result<Ticket, SubmitError> {
        self.try_submit_inner(client, priority, len, Some(deadline))
    }

    fn try_submit_inner(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        self.validate(len)?;
        let mut st = self.lock();
        self.charge_qos(&mut st, client, len)?;
        if st.lifecycle != Lifecycle::Running {
            return Err(SubmitError::ShuttingDown);
        }
        if !st.health.iter().any(ShardHealth::is_serving) {
            st.stats.degraded_rejections += 1;
            return Err(SubmitError::Degraded {
                quarantined: st.health.len(),
            });
        }
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                return Ok(self.admit_expired(&mut st, d, now, ExpiryStage::Admission));
            }
        }
        if st.in_flight_bytes + len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::Saturated {
                requested: len,
                in_flight: st.in_flight_bytes,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(self.admit(&mut st, client, priority, len, deadline))
    }

    /// Submits a request that demands **multi-source independence**: one
    /// half is placed on each of two serving shards with *distinct* backend
    /// kinds (chosen deterministically — see
    /// [`MixedTicket`]), and redeeming the ticket
    /// XOR-folds the two streams and SHA-256-conditions the fold
    /// ([`mixer::mix`]), so the output stays unpredictable unless both
    /// sources fail together. Each source contributes
    /// [`mixer::source_len`]`(len)` bytes; the caller receives exactly `len`.
    /// Parks on the in-flight budget like [`RngService::submit`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::NoIndependentSources`] when fewer than two backend
    /// kinds have a serving shard (a mesh degraded to one tier serves plain
    /// submissions but cannot vouch for independence — this fails fast
    /// rather than parking); otherwise everything [`RngService::submit`]
    /// returns, with the budget checks applied to the *combined* source
    /// bytes.
    pub fn submit_mixed(
        &self,
        client: ClientId,
        priority: Priority,
        len: usize,
    ) -> Result<MixedTicket, SubmitError> {
        self.validate(len)?;
        let per_source = mixer::source_len(len);
        let total = 2 * per_source;
        if total > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::TooLarge {
                requested: total,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        let mut st = self.lock();
        // QoS charges the client-visible length, not the amplified source
        // bytes — the mixing amplification is the service's cost model, not
        // the tenant's.
        self.charge_qos(&mut st, client, len)?;
        loop {
            if st.lifecycle != Lifecycle::Running {
                return Err(SubmitError::ShuttingDown);
            }
            let Some((first, second)) =
                pick_independent_sources(&st.backend_kinds, &st.health, &st.shard_load)
            else {
                let serving_kinds = serving_kind_count(&st.backend_kinds, &st.health);
                st.stats.degraded_rejections += 1;
                return Err(SubmitError::NoIndependentSources { serving_kinds });
            };
            if st.in_flight_bytes + total <= self.shared.cfg.max_inflight_bytes {
                let a = self.admit_to(&mut st, client, priority, per_source, None, first);
                let b = self.admit_to(&mut st, client, priority, per_source, None, second);
                return Ok(MixedTicket::new(a, b, len, Arc::clone(&self.shared)));
            }
            st = self.shared.space.wait(st).expect("service state poisoned");
        }
    }

    /// A snapshot of the running counters, including per-shard health.
    /// Diff two snapshots with
    /// [`ServiceStats::delta_since`](crate::ServiceStats::delta_since) for a
    /// rate window, or render one with
    /// [`export::prometheus_text`](crate::export::prometheus_text).
    pub fn stats(&self) -> ServiceStats {
        self.lock().snapshot()
    }

    /// Bytes currently in flight (queued plus being generated).
    pub fn in_flight_bytes(&self) -> usize {
        self.lock().in_flight_bytes
    }

    /// Serves everything already queued, then stops the workers and returns
    /// the final counters. Parked submitters are released with
    /// [`SubmitError::ShuttingDown`], and delivery pacing is lifted for the
    /// drain, so shutdown completes promptly even under a near-zero idle
    /// budget. A shard mid-requalification abandons it (no readmission
    /// survives shutdown anyway).
    pub fn shutdown(self) -> ServiceStats {
        self.stop(Lifecycle::Draining)
    }

    /// Stops as soon as possible, discarding queued work; the discarded
    /// requests' tickets report [`Canceled`](crate::Canceled).
    pub fn abort(self) -> ServiceStats {
        self.stop(Lifecycle::Aborting)
    }

    fn stop(mut self, how: Lifecycle) -> ServiceStats {
        {
            let mut st = self.lock();
            st.lifecycle = how;
            if how == Lifecycle::Aborting {
                // Cancel every queued ticket by dropping its sender.
                st.senders.clear();
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
            self.shared.deadlines.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The workers' tap senders are gone; the validator drains the
        // channel and exits on disconnect. The sweeper saw the lifecycle
        // change on the deadlines condvar and exited.
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
        self.lock().snapshot()
    }

    fn validate(&self, len: usize) -> Result<(), SubmitError> {
        if len == 0 {
            return Err(SubmitError::Empty);
        }
        if len > self.shared.cfg.max_inflight_bytes {
            return Err(SubmitError::TooLarge {
                requested: len,
                budget: self.shared.cfg.max_inflight_bytes,
            });
        }
        Ok(())
    }

    /// Charges `len` bytes against the client's QoS allowance. A rejection
    /// is typed and immediate for blocking and non-blocking paths alike —
    /// rate limiting is policy, not backpressure, so nothing parks on it.
    fn charge_qos(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        len: usize,
    ) -> Result<(), SubmitError> {
        match self
            .shared
            .policies
            .qos
            .try_charge(client, len, Instant::now())
        {
            Ok(()) => Ok(()),
            Err(retry_after) => {
                st.stats.rate_limited_rejections += 1;
                Err(SubmitError::RateLimited {
                    client,
                    retry_after,
                })
            }
        }
    }

    /// Admits a validated, budget-fitting request: assigns its sequence
    /// number and shard (via the placement policy — least-loaded healthy
    /// shard with rotation tie-break by default, so an idle service degrades
    /// to the round-robin assignment the serial-equivalence tests replay),
    /// charges the budget, records the queue-depth sample, and wakes a
    /// worker.
    fn admit(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
    ) -> Ticket {
        let shard = st.place(&*self.shared.policies.placement, priority);
        self.admit_to(st, client, priority, len, deadline, shard)
    }

    /// [`admit`](Self::admit) with the shard already chosen — the seam
    /// [`submit_mixed`](Self::submit_mixed) uses to pin each half of a mixed
    /// request to its pre-selected independent source.
    fn admit_to(
        &self,
        st: &mut MutexGuard<'_, State>,
        client: ClientId,
        priority: Priority,
        len: usize,
        deadline: Option<Instant>,
        shard: usize,
    ) -> Ticket {
        let seq = st.next_seq;
        st.next_seq += 1;
        st.in_flight_bytes += len;
        st.shard_load[shard] += len;
        st.stats.peak_in_flight_bytes = st.stats.peak_in_flight_bytes.max(st.in_flight_bytes);
        let depth = st.shards[shard].len() as u64;
        st.stats.queue_depth.record(depth);
        let (tx, ticket) = ticket_channel(seq, shard);
        st.senders.insert(seq, tx);
        st.shards[shard].push(RngRequest {
            client,
            priority,
            len,
            seq,
            submitted_at: Instant::now(),
            deadline,
        });
        self.shared.work.notify_all();
        if deadline.is_some() {
            // Only deadline-carrying admissions wake the expiry sweep.
            self.shared.deadlines.notify_all();
        }
        ticket
    }

    /// Completes a submission whose deadline already passed — at admission,
    /// or while parked on the in-flight budget — with the typed [`Expired`]
    /// outcome: a sequence number is consumed and the expiry counted, but
    /// the request is never placed, charged, or queued.
    fn admit_expired(
        &self,
        st: &mut MutexGuard<'_, State>,
        deadline: Instant,
        now: Instant,
        stage: ExpiryStage,
    ) -> Ticket {
        let seq = st.next_seq;
        st.next_seq += 1;
        st.stats.expired_requests += 1;
        Ticket::expired(
            seq,
            Expired {
                seq,
                deadline,
                expired_at: now,
                stage,
            },
        )
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("service state poisoned")
    }
}

/// Deterministically selects two serving shards with distinct backend kinds
/// for a mixed submission: kinds are scanned in the fixed order QUAC →
/// D-RaNGe → retention, each contributing its least-loaded serving shard
/// (lowest index breaking ties), and the first two kinds with one win. Pure
/// function of the snapshot, so mixed placement replays deterministically.
fn pick_independent_sources(
    kinds: &[BackendKind],
    health: &[ShardHealth],
    loads: &[usize],
) -> Option<(usize, usize)> {
    let mut picks = [
        BackendKind::Quac,
        BackendKind::DRange,
        BackendKind::Retention,
    ]
    .into_iter()
    .filter_map(|kind| {
        (0..kinds.len())
            .filter(|&i| kinds[i] == kind && health[i].is_serving())
            .min_by_key(|&i| (loads[i], i))
    });
    let first = picks.next()?;
    let second = picks.next()?;
    Some((first, second))
}

/// Number of distinct backend kinds with at least one serving shard.
fn serving_kind_count(kinds: &[BackendKind], health: &[ShardHealth]) -> usize {
    [
        BackendKind::Quac,
        BackendKind::DRange,
        BackendKind::Retention,
    ]
    .into_iter()
    .filter(|kind| {
        kinds
            .iter()
            .zip(health)
            .any(|(k, h)| k == kind && h.is_serving())
    })
    .count()
}

impl Drop for RngService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.lifecycle = Lifecycle::Aborting;
            st.senders.clear();
            self.shared.work.notify_all();
            self.shared.space.notify_all();
            self.shared.deadlines.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(validator) = self.validator.take() {
            let _ = validator.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_health(serving: &[bool]) -> Vec<ShardHealth> {
        serving
            .iter()
            .map(|&up| {
                let mut h = ShardHealth::new();
                if !up {
                    h.force_quarantine();
                }
                h
            })
            .collect()
    }

    #[test]
    fn independent_sources_require_two_distinct_serving_kinds() {
        let kinds = [BackendKind::Quac, BackendKind::Quac, BackendKind::DRange];
        let all_up = mesh_health(&[true, true, true]);
        // Least-loaded QUAC shard first (kind order), then the D-RaNGe one.
        assert_eq!(
            pick_independent_sources(&kinds, &all_up, &[50, 10, 0]),
            Some((1, 2))
        );
        assert_eq!(serving_kind_count(&kinds, &all_up), 2);
        // With the D-RaNGe shard fenced only one kind serves: no pair.
        let drange_down = mesh_health(&[true, true, false]);
        assert_eq!(
            pick_independent_sources(&kinds, &drange_down, &[50, 10, 0]),
            None
        );
        assert_eq!(serving_kind_count(&kinds, &drange_down), 1);
        // A quarantined shard never sources a mixed request even when its
        // kind would otherwise be picked.
        let quac0_down = mesh_health(&[false, true, true]);
        assert_eq!(
            pick_independent_sources(&kinds, &quac0_down, &[0, 10, 0]),
            Some((1, 2))
        );
    }
}
