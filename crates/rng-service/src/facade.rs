//! The async front door: `await` a ticket instead of blocking on it.
//!
//! [`AsyncTicket`] and [`AsyncMixedTicket`] implement
//! [`std::future::Future`] directly over the ticket's shared resolution
//! cell: polling an unresolved ticket registers the task's [`Waker`] in the
//! cell, and the **delivery side wakes it** — the worker when it serves the
//! request, the expiry sweep when the deadline kills it, the abort path
//! when the service discards it. There is **no polling thread, no timer,
//! and no async runtime dependency** anywhere in this module: resolution
//! and wake-up happen at the same boundary that signals blocking waiters,
//! so a parked executor sees exactly one wake per outcome and zero
//! spurious ones.
//!
//! Any executor that drives a plain [`Future`] works — tokio, async-std,
//! or the minimal [`block_on`] shipped here for examples and tests (a
//! thread-park executor in ~20 lines, the no-runtime design made
//! concrete).
//!
//! ```
//! use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
//! use qt_rng_service::facade::{block_on, AsyncTicket};
//! use quac_trng::characterize::{characterize_module, CharacterizationConfig};
//! use quac_trng::pipeline::QuacTrng;
//! use qt_dram_analog::{ModuleVariation, QuacAnalogModel};
//! use qt_dram_core::{DataPattern, DramGeometry};
//!
//! let geom = DramGeometry::tiny_test();
//! let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 1));
//! let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, ..Default::default() };
//! let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
//! let service = RngService::start(QuacTrng::shards(&model, &ch, 42, 1), RngServiceConfig::default());
//! let ticket = service.submit(ClientId(0), Priority::Normal, 64).unwrap();
//! let completion = block_on(AsyncTicket::from(ticket)).unwrap();
//! assert_eq!(completion.bytes.len(), 64);
//! service.shutdown();
//! ```

use crate::mixer::{MixedCompletion, MixedTicket};
use crate::request::Completion;
use crate::ticket::{Ticket, WaitError};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// A [`Ticket`] as a [`Future`]: resolves to the same
/// `Result<Completion, WaitError>` that [`Ticket::wait`] returns, woken by
/// the delivery side with no polling thread (see the [module
/// docs](self)).
///
/// The future is **idempotent after resolution**, like every ticket wait
/// variant: polling a resolved future again returns the same terminal
/// outcome. Dropping the future before resolution is safe and leaks
/// nothing — the delivery side holds its own handle on the shared cell,
/// resolves into it, and lets go; the cell is freed when the last handle
/// drops.
#[derive(Debug)]
pub struct AsyncTicket {
    ticket: Ticket,
}

impl AsyncTicket {
    /// The underlying ticket — the blocking wait variants remain available
    /// (from another thread, or after [`AsyncTicket::into_inner`]).
    pub fn ticket(&self) -> &Ticket {
        &self.ticket
    }

    /// Unwraps back to the plain [`Ticket`].
    pub fn into_inner(self) -> Ticket {
        self.ticket
    }
}

impl From<Ticket> for AsyncTicket {
    fn from(ticket: Ticket) -> Self {
        AsyncTicket { ticket }
    }
}

impl Future for AsyncTicket {
    type Output = Result<Completion, WaitError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.ticket.poll_wait(cx)
    }
}

/// A [`MixedTicket`] as a [`Future`]: resolves once **both** halves are
/// terminal, with [`MixedTicket::wait`]'s join-both semantics — the first
/// half's error wins, and a sibling that delivered bytes while the other
/// half failed is recorded in
/// [`ServiceStats::mixed_halves_abandoned`](crate::ServiceStats::mixed_halves_abandoned).
/// Each poll registers the waker on every still-pending half, so whichever
/// resolves *last* wakes the task — never a wake per half.
#[derive(Debug)]
pub struct AsyncMixedTicket {
    ticket: MixedTicket,
}

impl AsyncMixedTicket {
    /// The underlying mixed ticket.
    pub fn ticket(&self) -> &MixedTicket {
        &self.ticket
    }

    /// Unwraps back to the plain [`MixedTicket`].
    pub fn into_inner(self) -> MixedTicket {
        self.ticket
    }
}

impl From<MixedTicket> for AsyncMixedTicket {
    fn from(ticket: MixedTicket) -> Self {
        AsyncMixedTicket { ticket }
    }
}

impl Future for AsyncMixedTicket {
    type Output = Result<MixedCompletion, WaitError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let (first, second) = self.ticket.halves();
        // Poll both halves every time: each pending half re-registers the
        // waker, so the future is woken when the *last* half resolves no
        // matter which order they land in. A resolved half's poll is a
        // cheap sticky-cache read.
        let a = first.poll_wait(cx);
        let b = second.poll_wait(cx);
        match (a, b) {
            (Poll::Ready(first), Poll::Ready(second)) => {
                Poll::Ready(self.ticket.finish(first, second))
            }
            _ => Poll::Pending,
        }
    }
}

/// The minimal thread-park waker behind [`block_on`]: `wake` unparks the
/// executor thread.
#[derive(Debug)]
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the current thread by parking between
/// polls — the no-runtime executor for examples, tests, and synchronous
/// callers of async APIs. Safe against spurious unparks (it just re-polls)
/// and against wakes that land before the park (an `unpark` ahead of
/// `park` makes the park return immediately; the token is not lost).
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::{ticket_channel, Canceled, Outcome};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn completion(seq: u64) -> Completion {
        Completion {
            client: crate::request::ClientId(0),
            seq,
            shard: 0,
            epoch: 0,
            stream_offset: 0,
            fresh_bits: 64,
            backend: quac_trng::BackendKind::Quac,
            bytes: vec![7; 8],
        }
    }

    /// A waker that counts its wakes — the zero-spurious-wakes probe.
    #[derive(Debug, Default)]
    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn a_future_polled_before_resolution_gets_exactly_one_wake() {
        let (tx, ticket) = ticket_channel(1, 0);
        let mut future = std::pin::pin!(AsyncTicket::from(ticket));
        let counter = Arc::new(CountingWaker::default());
        let waker = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&waker);
        assert!(future.as_mut().poll(&mut cx).is_pending());
        assert_eq!(
            counter.0.load(Ordering::SeqCst),
            0,
            "no wake before resolution"
        );
        tx.send(Outcome::Served(completion(1)));
        assert_eq!(
            counter.0.load(Ordering::SeqCst),
            1,
            "resolution wakes exactly once"
        );
        let Poll::Ready(Ok(c)) = future.as_mut().poll(&mut cx) else {
            panic!("resolved future must be ready");
        };
        assert_eq!(c.seq, 1);
        // Re-polling a resolved future is idempotent and wakes no more.
        assert!(future.as_mut().poll(&mut cx).is_ready());
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_future_resolved_before_first_poll_is_immediately_ready() {
        let (tx, ticket) = ticket_channel(2, 0);
        tx.send(Outcome::Served(completion(2)));
        assert!(block_on(AsyncTicket::from(ticket)).is_ok());
    }

    #[test]
    fn dropping_the_sender_wakes_with_canceled() {
        let (tx, ticket) = ticket_channel(3, 0);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
        });
        let out = block_on(AsyncTicket::from(ticket));
        handle.join().unwrap();
        assert_eq!(out, Err(WaitError::Canceled(Canceled)));
    }

    #[test]
    fn dropping_the_future_before_resolution_leaks_nothing() {
        let (tx, ticket) = ticket_channel(4, 0);
        let weak = ticket.cell_weak();
        // Box::pin rather than pin!: the test must be able to truly drop
        // the future (dropping a stack pin's `Pin<&mut _>` handle would
        // leave the ticket alive until end of scope).
        let mut future = Box::pin(AsyncTicket::from(ticket));
        let counter = Arc::new(CountingWaker::default());
        let waker = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&waker);
        assert!(future.as_mut().poll(&mut cx).is_pending());
        // Ticket + sender hold the cell; the registered waker lives inside
        // it, not the other way round.
        assert_eq!(weak.strong_count(), 2);
        drop(future);
        assert_eq!(weak.strong_count(), 1, "only the delivery side remains");
        // The delivery side resolving into a dead cell is harmless (it
        // wakes the stale waker once, which is a no-op for the executor).
        tx.send(Outcome::Served(completion(4)));
        drop(tx);
        assert_eq!(weak.strong_count(), 0, "cell freed once both sides let go");
        // Only `counter` itself and the local `waker` hold the waker now:
        // the clone registered in the cell was consumed by the wake.
        assert_eq!(
            Arc::strong_count(&counter),
            2,
            "registered waker clone released"
        );
    }
}
