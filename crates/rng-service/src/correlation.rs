//! Cross-correlation health check: the windowed inter-backend statistic
//! that catches **common-mode** faults individual-stream validation cannot.
//!
//! A single shard's NIST battery grades each stream in isolation; two
//! backends corrupted by the same fault (shared voltage rail, common clock,
//! a bug replicating one stream) can both emit individually plausible bytes
//! that are *mutually* dependent. The monitor compares same-index windows of
//! different shards with a plain bit-agreement statistic: independent
//! streams agree on ~half their bits (for `w` window bits the agreement
//! fraction concentrates within ~`1/√w` of 0.5), so a sustained excursion
//! beyond [`CorrelationConfig::max_deviation`] is overwhelming evidence of
//! coupling. After [`CorrelationConfig::trip_windows`] *consecutive*
//! deviating windows a pair trips, and the validator force-quarantines
//! **both** shards — with a common-mode fault there is no telling which
//! stream is the corrupted one.
//!
//! Everything here is pure data: the monitor is a deterministic function of
//! the per-shard byte sequences it ingests, so trip behaviour is
//! property-testable without threads (see the correlation proptests).

use std::collections::VecDeque;

/// Tuning of the cross-correlation monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationConfig {
    /// Master switch (off by default — the monitor costs one window buffer
    /// per shard and a popcount pass per window pair).
    pub enabled: bool,
    /// Bytes per comparison window. Default 1024 (8192 bits: independent
    /// streams deviate from 0.5 agreement by ~0.0055 σ, so the default
    /// deviation bound sits ~36σ out).
    pub window_bytes: usize,
    /// A window pair deviates when `|agreement − 0.5|` exceeds this.
    pub max_deviation: f64,
    /// Consecutive deviating windows after which a shard pair trips.
    pub trip_windows: u32,
    /// Completed windows retained per shard awaiting a slower peer's
    /// same-index window; older ones are dropped (bounded memory — a pair
    /// whose streams drift further apart than this simply isn't compared).
    pub max_pending_windows: usize,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            enabled: false,
            window_bytes: 1024,
            max_deviation: 0.2,
            trip_windows: 3,
            max_pending_windows: 8,
        }
    }
}

impl CorrelationConfig {
    /// Correlation monitoring on with the default window/thresholds.
    pub fn enabled() -> Self {
        CorrelationConfig { enabled: true, ..CorrelationConfig::default() }
    }
}

/// Fraction of bit positions on which `a` and `b` agree (both slices must
/// have equal length; 1.0 for identical, ~0.5 for independent streams).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn bit_agreement(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "agreement needs equal-length windows");
    assert!(!a.is_empty(), "agreement of an empty window is undefined");
    let differing: u32 = a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum();
    1.0 - f64::from(differing) / (8.0 * a.len() as f64)
}

/// What one ingest call observed: windows compared and shard pairs tripped.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CorrelationOutcome {
    /// Same-index window pairs compared by this call.
    pub compared: u64,
    /// Shard pairs `(a, b)` with `a < b` whose deviation streak reached the
    /// trip bound during this call. A pair reports at most once until one
    /// of its shards is reset.
    pub tripped: Vec<(usize, usize)>,
}

/// The monitor: per-shard window assembly plus per-pair deviation streaks.
#[derive(Debug)]
pub struct CorrelationMonitor {
    cfg: CorrelationConfig,
    shard_count: usize,
    /// Bytes accumulated toward each shard's next window.
    partial: Vec<Vec<u8>>,
    /// Index of the next window each shard will complete (since its last
    /// reset).
    next_index: Vec<u64>,
    /// Completed windows retained per shard, oldest first, as
    /// `(window_index, bytes)`.
    pending: Vec<VecDeque<(u64, Vec<u8>)>>,
    /// Per-pair consecutive-deviation streak, indexed `a * shards + b`.
    streaks: Vec<u32>,
    /// Pairs already reported (suppressed until a reset).
    tripped: Vec<bool>,
}

impl CorrelationMonitor {
    /// A monitor over `shard_count` shards.
    pub fn new(shard_count: usize, cfg: CorrelationConfig) -> Self {
        assert!(cfg.window_bytes > 0, "correlation windows need at least one byte");
        CorrelationMonitor {
            cfg,
            shard_count,
            partial: vec![Vec::new(); shard_count],
            next_index: vec![0; shard_count],
            pending: vec![VecDeque::new(); shard_count],
            streaks: vec![0; shard_count * shard_count],
            tripped: vec![false; shard_count * shard_count],
        }
    }

    fn pair(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo * self.shard_count + hi
    }

    /// Feeds served bytes of one shard; completes windows and compares each
    /// against every peer's same-index window still pending.
    pub fn ingest(&mut self, shard: usize, mut bytes: &[u8]) -> CorrelationOutcome {
        let mut outcome = CorrelationOutcome::default();
        while !bytes.is_empty() {
            let room = self.cfg.window_bytes - self.partial[shard].len();
            let take = room.min(bytes.len());
            self.partial[shard].extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.partial[shard].len() < self.cfg.window_bytes {
                break;
            }
            let window = std::mem::take(&mut self.partial[shard]);
            let index = self.next_index[shard];
            self.next_index[shard] += 1;
            self.compare_window(shard, index, &window, &mut outcome);
            self.pending[shard].push_back((index, window));
            while self.pending[shard].len() > self.cfg.max_pending_windows.max(1) {
                self.pending[shard].pop_front();
            }
        }
        outcome
    }

    fn compare_window(
        &mut self,
        shard: usize,
        index: u64,
        window: &[u8],
        outcome: &mut CorrelationOutcome,
    ) {
        for peer in 0..self.shard_count {
            if peer == shard {
                continue;
            }
            let Some((_, peer_window)) =
                self.pending[peer].iter().find(|(i, _)| *i == index)
            else {
                continue;
            };
            outcome.compared += 1;
            let deviates =
                (bit_agreement(window, peer_window) - 0.5).abs() > self.cfg.max_deviation;
            let pair = self.pair(shard, peer);
            if deviates {
                self.streaks[pair] += 1;
                if self.streaks[pair] >= self.cfg.trip_windows.max(1) && !self.tripped[pair] {
                    self.tripped[pair] = true;
                    outcome.tripped.push((shard.min(peer), shard.max(peer)));
                }
            } else {
                self.streaks[pair] = 0;
            }
        }
    }

    /// Forgets one shard's accumulation and every streak involving it — its
    /// stream is discontinuous (quarantined, about to be recharacterised),
    /// so pre-fence windows must not convict the post-readmission stream.
    pub fn reset_shard(&mut self, shard: usize) {
        self.partial[shard].clear();
        self.pending[shard].clear();
        self.next_index[shard] = 0;
        for peer in 0..self.shard_count {
            if peer != shard {
                let pair = self.pair(shard, peer);
                self.streaks[pair] = 0;
                self.tripped[pair] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn cfg() -> CorrelationConfig {
        CorrelationConfig { enabled: true, window_bytes: 64, ..CorrelationConfig::default() }
    }

    fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
    }

    #[test]
    fn agreement_statistic_is_sane() {
        assert!((bit_agreement(&[0xFF; 8], &[0xFF; 8]) - 1.0).abs() < 1e-12);
        assert!(bit_agreement(&[0xFF; 8], &[0x00; 8]).abs() < 1e-12);
        let a = random_bytes(1, 4096);
        let b = random_bytes(2, 4096);
        assert!((bit_agreement(&a, &b) - 0.5).abs() < 0.05);
    }

    #[test]
    fn identical_streams_trip_within_the_bound() {
        let c = cfg();
        let mut m = CorrelationMonitor::new(2, c);
        let stream = random_bytes(3, c.window_bytes * c.trip_windows as usize);
        let mut trips = Vec::new();
        for chunk in stream.chunks(c.window_bytes) {
            m.ingest(0, chunk);
            trips.extend(m.ingest(1, chunk).tripped);
        }
        assert_eq!(trips, vec![(0, 1)], "identical streams must trip exactly once");
        // Once tripped, the pair stays silent until a reset.
        m.ingest(0, &stream[..c.window_bytes]);
        let again = m.ingest(1, &stream[..c.window_bytes]);
        assert_eq!(again.tripped, vec![]);
        assert_eq!(again.compared, 1);
    }

    #[test]
    fn independent_streams_never_trip_and_resets_clear_streaks() {
        let c = cfg();
        let mut m = CorrelationMonitor::new(2, c);
        for i in 0..32 {
            let out0 = m.ingest(0, &random_bytes(100 + i, c.window_bytes));
            let out1 = m.ingest(1, &random_bytes(200 + i, c.window_bytes));
            assert!(out0.tripped.is_empty() && out1.tripped.is_empty());
        }
        // Two deviating windows, then a reset: the streak must restart, so
        // a single further deviating window cannot trip.
        let shared = random_bytes(7, c.window_bytes);
        m.ingest(0, &shared);
        m.ingest(1, &shared);
        m.ingest(0, &shared);
        m.ingest(1, &shared);
        m.reset_shard(1);
        m.ingest(0, &shared);
        let out = m.ingest(1, &shared);
        assert!(out.tripped.is_empty(), "reset must clear the deviation streak");
    }

    #[test]
    fn window_alignment_survives_uneven_chunking() {
        let c = cfg();
        let mut m = CorrelationMonitor::new(2, c);
        let stream = random_bytes(9, c.window_bytes * 4);
        // Shard 0 receives the stream in awkward slices, shard 1 in whole
        // windows: same windows, so the pair still trips.
        let mut trips = Vec::new();
        for chunk in stream.chunks(17) {
            trips.extend(m.ingest(0, chunk).tripped);
        }
        for chunk in stream.chunks(c.window_bytes) {
            trips.extend(m.ingest(1, chunk).tripped);
        }
        assert_eq!(trips, vec![(0, 1)]);
    }

    proptest! {
        /// Satellite property: two shards fed one shared seeded stream trip
        /// within `trip_windows` comparisons; independently seeded streams
        /// never trip (the agreement statistic concentrates at 0.5).
        #[test]
        fn prop_shared_streams_trip_and_independent_streams_do_not(
            seed in any::<u64>(),
            windows in 4usize..12,
        ) {
            let c = cfg();
            let mut shared = CorrelationMonitor::new(2, c);
            let mut independent = CorrelationMonitor::new(2, c);
            let mut first_trip = None;
            for w in 0..windows {
                let common = random_bytes(seed ^ w as u64, c.window_bytes);
                shared.ingest(0, &common);
                let out = shared.ingest(1, &common);
                if first_trip.is_none() && !out.tripped.is_empty() {
                    first_trip = Some(w + 1);
                }
                independent.ingest(0, &random_bytes(seed ^ (w as u64) << 1, c.window_bytes));
                let ind = independent.ingest(
                    1,
                    &random_bytes(!seed ^ (w as u64) << 1, c.window_bytes),
                );
                prop_assert!(ind.tripped.is_empty(), "independent streams tripped");
            }
            prop_assert_eq!(first_trip, Some(c.trip_windows as usize));
        }
    }
}
