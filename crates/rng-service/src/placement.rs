//! Control plane: shard placement — the pure decision rule that assigns an
//! admitted request to a shard, and the [`PlacementPolicy`] trait seam that
//! lets alternative rules (pinning, locality, DR-STRaNGe-style interference
//! avoidance) plug into the service without touching its state machine.
//!
//! Placement runs under the service's state lock with a read-only
//! [`PlacementView`] of the moment's loads and health, so a policy is a pure
//! function: deterministic placement is what the serial-equivalence and
//! placement-property tests replay, and any policy substituted through
//! [`RngService::start_with_policies`](crate::RngService::start_with_policies)
//! inherits the same replay guarantee if it is deterministic in the view.

use crate::health::ShardHealth;
use crate::request::Priority;
use quac_trng::BackendKind;

/// A read-only snapshot of what placement may consult, taken under the
/// service state lock at one admission (or failover re-placement).
#[derive(Debug)]
pub struct PlacementView<'a> {
    /// Admitted-but-undelivered bytes per shard (queued plus being
    /// generated) — the load metric the default rule minimises.
    pub loads: &'a [usize],
    /// Per-shard validation health; the default rule never places on a
    /// shard that is not serving while any serving shard exists.
    pub health: &'a [ShardHealth],
    /// The entropy-backend kind behind each shard — what
    /// [`TieredPlacement`] routes across (all `Quac` for a homogeneous
    /// [`RngService::start`](crate::RngService::start) instance).
    pub kinds: &'a [BackendKind],
    /// Priority of the request being placed, for policies that route
    /// latency-sensitive work differently from bulk work.
    pub priority: Priority,
    /// Rotation point for tie-breaking, advanced past each pick by the
    /// service so equal loads degrade to round-robin.
    pub rotation: usize,
}

/// The placement seam of the control plane: given the moment's view, pick
/// the shard an admitted request is queued on.
///
/// The returned index must be `< view.loads.len()`; the service panics on an
/// out-of-range pick rather than corrupting its load accounting. A policy
/// that is a pure function of the view preserves the replay-determinism
/// contract (see the [crate docs](crate)); a stateful or randomized one
/// trades that away knowingly.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Picks the shard for the next request.
    fn place(&self, view: &PlacementView<'_>) -> usize;
}

/// The default policy: [`least_loaded_shard`] — least-loaded serving shard,
/// rotation tie-break.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn place(&self, view: &PlacementView<'_>) -> usize {
        least_loaded_shard(
            view.loads.len(),
            view.rotation,
            |i| view.loads[i],
            |i| !view.health[i].is_serving(),
        )
    }
}

/// Tier-aware placement over a heterogeneous entropy mesh: route each
/// request to its preferred backend tier, falling through to slower tiers
/// when the preferred one has no serving shard.
///
/// The tier preference is a pure function of the request priority:
///
/// * [`Priority::High`] (latency-sensitive) → D-RaNGe, then QUAC, then
///   retention — D-RaNGe produces one number in a single reduced-tRCD
///   read, the lowest-latency mechanism in the mesh.
/// * [`Priority::Normal`] (bulk) → QUAC, then D-RaNGe, then retention —
///   QUAC has ~10× the per-channel throughput.
///
/// Retention is always the last resort (slow, bursty). Within the chosen
/// tier the rule is exactly [`least_loaded_shard`] with non-tier shards
/// masked out, so the policy inherits its round-robin tie-break and the
/// replay-determinism contract. When *no* shard in any tier is serving
/// (the degraded state) it falls back to plain least-loaded over all
/// shards, keeping the rule total like the default policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TieredPlacement;

impl TieredPlacement {
    /// The backend-tier preference order for a request priority.
    pub fn tier_order(priority: Priority) -> [BackendKind; 3] {
        match priority {
            Priority::High => [BackendKind::DRange, BackendKind::Quac, BackendKind::Retention],
            Priority::Normal => [BackendKind::Quac, BackendKind::DRange, BackendKind::Retention],
        }
    }
}

impl PlacementPolicy for TieredPlacement {
    fn place(&self, view: &PlacementView<'_>) -> usize {
        let serving_kind = |i: usize, kind: BackendKind| {
            view.health[i].is_serving() && view.kinds.get(i).copied() == Some(kind)
        };
        for kind in Self::tier_order(view.priority) {
            if (0..view.loads.len()).any(|i| serving_kind(i, kind)) {
                return least_loaded_shard(
                    view.loads.len(),
                    view.rotation,
                    |i| view.loads[i],
                    |i| !serving_kind(i, kind),
                );
            }
        }
        // Every shard of every tier is fenced (or kinds are unknown):
        // degrade to the default rule so the pick stays total.
        least_loaded_shard(
            view.loads.len(),
            view.rotation,
            |i| view.loads[i],
            |i| !view.health[i].is_serving(),
        )
    }
}

/// Least-loaded, quarantine-aware shard placement — the pure decision rule
/// behind [`RngService::submit`](crate::RngService::submit)'s shard
/// assignment, split out so placement properties can be tested without
/// threads.
///
/// Scans the `count` shards starting from `start` (the rotation point the
/// service advances past each pick) and returns the first non-quarantined
/// shard with the strictly smallest load. Consequences of that rule:
///
/// * **Quarantine-aware** — while at least one shard is healthy, a
///   quarantined shard is never selected. If *every* shard is quarantined,
///   placement falls back to all shards — the service layer normally never
///   asks in that state (admission is governed by
///   [`DegradedPolicy`](crate::DegradedPolicy) instead), so the fallback
///   only keeps the pure rule total.
/// * **Round-robin at equal load** — ties go to the first candidate in
///   rotation order from `start`, so an otherwise idle service degrades to
///   exactly the round-robin assignment the serial-equivalence tests replay.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn least_loaded_shard(
    count: usize,
    start: usize,
    load: impl Fn(usize) -> usize,
    quarantined: impl Fn(usize) -> bool,
) -> usize {
    assert!(count > 0, "placement needs at least one shard");
    let any_healthy = (0..count).any(|i| !quarantined(i));
    let mut best: Option<usize> = None;
    for k in 0..count {
        let i = (start + k) % count;
        if any_healthy && quarantined(i) {
            continue;
        }
        match best {
            Some(b) if load(i) >= load(b) => {}
            _ => best = Some(i),
        }
    }
    best.expect("some shard is always eligible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn placement_is_round_robin_at_equal_load() {
        // All loads zero: rotation from `start` degrades to round-robin,
        // the behaviour the serial-equivalence integration tests replay.
        let mut start = 0;
        let mut picks = Vec::new();
        for _ in 0..6 {
            let s = least_loaded_shard(3, start, |_| 0, |_| false);
            picks.push(s);
            start = (s + 1) % 3;
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn placement_prefers_the_least_loaded_shard() {
        let loads = [500usize, 20, 300];
        assert_eq!(least_loaded_shard(3, 0, |i| loads[i], |_| false), 1);
        // Strictly smallest wins regardless of rotation start.
        for start in 0..3 {
            assert_eq!(least_loaded_shard(3, start, |i| loads[i], |_| false), 1);
        }
    }

    #[test]
    fn placement_never_selects_a_quarantined_shard_while_any_is_healthy() {
        let loads = [0usize, 10, 20];
        // Shard 0 is idle but quarantined: the busier healthy shard wins.
        assert_eq!(least_loaded_shard(3, 0, |i| loads[i], |i| i == 0), 1);
        for start in 0..3 {
            let pick = least_loaded_shard(3, start, |i| loads[i], |i| i != 2);
            assert_eq!(pick, 2, "only healthy shard must be picked (start {start})");
        }
    }

    #[test]
    fn placement_falls_back_when_every_shard_is_quarantined() {
        let loads = [7usize, 3, 9];
        assert_eq!(least_loaded_shard(3, 0, |i| loads[i], |_| true), 1);
    }

    #[test]
    fn least_loaded_policy_matches_the_pure_rule() {
        use crate::health::ShardState;
        let loads = [40usize, 10, 10];
        let mut health = vec![ShardHealth::new(); 3];
        health[1].state = ShardState::Quarantined;
        let view = PlacementView {
            loads: &loads,
            health: &health,
            kinds: &[BackendKind::Quac; 3],
            priority: Priority::Normal,
            rotation: 0,
        };
        // Shard 1 has minimal load but is fenced: the policy must pick 2.
        assert_eq!(LeastLoaded.place(&view), 2);
        let expected =
            least_loaded_shard(3, 0, |i| loads[i], |i| !health[i].is_serving());
        assert_eq!(LeastLoaded.place(&view), expected);
    }

    #[test]
    fn tiered_placement_routes_by_priority_and_falls_through_tiers() {
        use crate::health::ShardState;
        fn place(health: &[ShardHealth], priority: Priority) -> usize {
            let kinds = [BackendKind::Quac, BackendKind::DRange, BackendKind::Retention];
            TieredPlacement.place(&PlacementView {
                loads: &[0, 100, 0],
                health,
                kinds: &kinds,
                priority,
                rotation: 0,
            })
        }
        let mut health = vec![ShardHealth::new(); 3];
        // Bulk work goes to the (idle) QUAC shard; latency-sensitive work
        // goes to the D-RaNGe shard even though it is busier.
        assert_eq!(place(&health, Priority::Normal), 0);
        assert_eq!(place(&health, Priority::High), 1);
        // QUAC fenced: bulk falls through to D-RaNGe, never to retention
        // while D-RaNGe serves.
        health[0].state = ShardState::Quarantined;
        assert_eq!(place(&health, Priority::Normal), 1);
        // D-RaNGe also fenced: both priorities land on the retention tier.
        health[1].state = ShardState::Quarantined;
        assert_eq!(place(&health, Priority::Normal), 2);
        assert_eq!(place(&health, Priority::High), 2);
        // Everything fenced: total fallback, least-loaded over all shards.
        health[2].state = ShardState::Quarantined;
        assert_eq!(place(&health, Priority::Normal), 0);
    }

    #[test]
    fn tiered_placement_is_least_loaded_within_a_tier() {
        let kinds = [BackendKind::Quac, BackendKind::Quac, BackendKind::DRange];
        let loads = [50usize, 10, 0];
        let health = vec![ShardHealth::new(); 3];
        let view = PlacementView {
            loads: &loads,
            health: &health,
            kinds: &kinds,
            priority: Priority::Normal,
            rotation: 0,
        };
        // The idle D-RaNGe shard is outside the preferred tier: the less
        // loaded of the two QUAC shards wins.
        assert_eq!(TieredPlacement.place(&view), 1);
    }

    proptest! {
        /// Placement safety under arbitrary load/quarantine vectors: never a
        /// quarantined shard while a healthy one exists, always a (healthy)
        /// load minimum.
        #[test]
        fn prop_placement_is_safe_and_minimal(
            loads in proptest::collection::vec(0usize..1000, 1..9),
            mask in proptest::collection::vec(any::<bool>(), 1..9),
            start in 0usize..9,
        ) {
            let n = loads.len().min(mask.len());
            let loads = &loads[..n];
            let mask = &mask[..n];
            let pick = least_loaded_shard(n, start % n, |i| loads[i], |i| mask[i]);
            prop_assert!(pick < n);
            let any_healthy = mask.iter().any(|q| !q);
            if any_healthy {
                prop_assert!(!mask[pick], "picked a quarantined shard");
                let min_healthy =
                    (0..n).filter(|&i| !mask[i]).map(|i| loads[i]).min().unwrap();
                prop_assert_eq!(loads[pick], min_healthy);
            } else {
                let min_all = loads.iter().copied().min().unwrap();
                prop_assert_eq!(loads[pick], min_all);
            }
        }
    }
}
