//! Configuration and shared mutable state of the service: the one
//! `Mutex<State>` + condvar set that both planes meet through, and the
//! [`RngServiceConfig`] tuning knobs.
//!
//! Everything control-plane loops and data-plane workers observe or mutate
//! lives behind [`Shared`]: the per-shard schedulers, loads, health records,
//! stream epochs, the in-flight budget, and the running [`ServiceStats`].
//! Keeping it in one lock is what makes every placement/admission decision a
//! pure function of a consistent snapshot — the property the
//! replay-determinism tests pin.

use crate::control::{DegradedPolicy, ServicePolicies};
use crate::health::ShardHealth;
use crate::placement::PlacementPolicy;
use crate::queue::ShardScheduler;
use crate::stats::ServiceStats;
use crate::ticket::TicketSender;
use crate::validate::ValidationConfig;
use qt_memctrl::IdleBudget;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngServiceConfig {
    /// Backpressure budget: the maximum number of requested-but-undelivered
    /// bytes (queued plus being generated). `try_submit` rejects and
    /// `submit` parks while admitting a request would exceed it.
    pub max_inflight_bytes: usize,
    /// Coalescing target: a worker keeps dequeuing requests until the batch
    /// reaches this many bytes (small reads ride along in whole QUAC
    /// iterations instead of paying one wakeup each).
    pub max_batch_bytes: usize,
    /// Hard cap on requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Anti-starvation window of the per-shard scheduler: at most this many
    /// consecutive high-priority dispatches while normal work waits.
    pub fairness_window: u32,
    /// Per-shard delivery-rate budget (idle DRAM cycles of the channel).
    /// [`IdleBudget::unlimited`] disables pacing.
    pub pacing: IdleBudget,
    /// Continuous in-service validation (off by default). See
    /// [`crate::validate`] for the loop and [`crate::health`] for the
    /// quarantine state machine.
    pub validation: ValidationConfig,
    /// Admission behaviour while every shard is quarantined.
    pub degraded: DegradedPolicy,
    /// Period of the expiry sweep that completes overdue queued requests
    /// with [`Expired`](crate::Expired) — the upper bound on how long past its deadline a
    /// still-queued request lingers.
    pub expiry_sweep_interval: Duration,
}

impl Default for RngServiceConfig {
    fn default() -> Self {
        RngServiceConfig {
            max_inflight_bytes: 1 << 20,
            max_batch_bytes: 16 << 10,
            max_batch_requests: 64,
            fairness_window: 4,
            pacing: IdleBudget::unlimited(),
            validation: ValidationConfig::default(),
            degraded: DegradedPolicy::default(),
            expiry_sweep_interval: Duration::from_millis(5),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lifecycle {
    Running,
    /// Serve everything already queued, then stop.
    Draining,
    /// Discard queued work and stop as soon as possible.
    Aborting,
}

#[derive(Debug)]
pub(crate) struct State {
    pub(crate) shards: Vec<ShardScheduler>,
    /// Resolution-cell handle of each queued request, keyed by sequence
    /// number. Dropping a sender cancels its ticket (and wakes its
    /// waiters, blocking and async alike).
    pub(crate) senders: HashMap<u64, TicketSender>,
    pub(crate) in_flight_bytes: usize,
    /// Admitted-but-undelivered bytes per shard — the load metric
    /// least-loaded placement minimises (unlike the scheduler's queued
    /// bytes, it still counts a batch being generated).
    pub(crate) shard_load: Vec<usize>,
    /// Per-shard validation health; placement skips shards that are not
    /// [`ShardState::Healthy`](crate::health::ShardState::Healthy).
    pub(crate) health: Vec<ShardHealth>,
    /// Per-shard stream epoch, bumped at readmission. Tap chunks carry the
    /// epoch of the batch they were served in, so bytes served while the
    /// shard was fenced (stale stream content, possibly still faulty) can
    /// never fold into the fresh post-readmission health record even if
    /// they linger in the tap queue across the whole requalification.
    pub(crate) shard_epoch: Vec<u64>,
    /// The entropy-backend kind behind each shard (all `Quac` for a
    /// homogeneous [`RngService::start`](crate::RngService::start) instance)
    /// — what tier-aware placement routes across and what the Prometheus
    /// export labels shard series with.
    pub(crate) backend_kinds: Vec<quac_trng::BackendKind>,
    /// Rotation point for placement tie-breaking (advanced past each pick,
    /// so equal loads degrade to round-robin).
    pub(crate) next_shard: usize,
    pub(crate) next_seq: u64,
    pub(crate) lifecycle: Lifecycle,
    pub(crate) stats: ServiceStats,
}

impl State {
    /// A consistent stats snapshot including per-shard health and backend
    /// kinds.
    pub(crate) fn snapshot(&self) -> ServiceStats {
        let mut stats = self.stats.clone();
        stats.shard_health = self.health.clone();
        stats.backend_kinds = self.backend_kinds.clone();
        stats
    }

    /// Queued requests carrying a deadline, across all shards — the expiry
    /// sweep parks indefinitely while this is 0.
    pub(crate) fn queued_deadline_count(&self) -> usize {
        self.shards
            .iter()
            .map(ShardScheduler::queued_deadlines)
            .sum()
    }

    /// Asks `placement` for a shard under the current view and advances the
    /// tie-break rotation past the pick.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an out-of-range shard index.
    pub(crate) fn place(
        &mut self,
        placement: &dyn PlacementPolicy,
        priority: crate::request::Priority,
    ) -> usize {
        let shard = placement.place(&crate::placement::PlacementView {
            loads: &self.shard_load,
            health: &self.health,
            kinds: &self.backend_kinds,
            priority,
            rotation: self.next_shard,
        });
        assert!(
            shard < self.shards.len(),
            "placement policy picked shard {shard} of {}",
            self.shards.len()
        );
        self.next_shard = (shard + 1) % self.shards.len();
        shard
    }
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) cfg: RngServiceConfig,
    /// The control-plane policy set (placement, degraded admission,
    /// requalification) this instance runs with.
    pub(crate) policies: ServicePolicies,
    /// Approximate occupancy of the tap queue (incremented by workers on a
    /// successful send, decremented by the validator on receive). Lets the
    /// lossy tap skip building a batch copy it would immediately drop.
    pub(crate) tap_fill: std::sync::atomic::AtomicUsize,
    pub(crate) state: Mutex<State>,
    /// Signalled when work arrives or the lifecycle changes (workers wait
    /// here, both for requests and during pacing sleeps), and when a shard
    /// is quarantined (its idle worker must wake to requalify it).
    pub(crate) work: Condvar,
    /// Signalled when in-flight bytes are released (parked submitters wait
    /// here).
    pub(crate) space: Condvar,
    /// Signalled only by deadline-carrying admissions and lifecycle changes
    /// — the expiry sweep waits here, so deadline-free load never wakes it.
    pub(crate) deadlines: Condvar,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_disables_validation() {
        let cfg = RngServiceConfig::default();
        assert!(!cfg.validation.enabled);
    }
}
