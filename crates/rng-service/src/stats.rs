//! Observability: log₂ histograms, validation counters, and the service's
//! aggregate [`ServiceStats`] snapshot.
//!
//! Everything here is plain data guarded by the service's one state lock —
//! recording is a couple of integer ops, cheap enough for the submit and
//! delivery paths — and a [`RngService::stats`](crate::RngService::stats)
//! call clones a consistent snapshot out, so tests and operators can assert
//! on queue depths, latencies, and per-shard health without stopping the
//! service.

use crate::health::ShardHealth;
use quac_trng::BackendKind;

/// Number of log₂ buckets; values at or above 2³⁰ land in the last bucket.
const BUCKETS: usize = 32;

/// A log₂-bucketed histogram of non-negative integer samples (queue depths
/// in requests, latencies in microseconds). Bucket 0 holds zeros; bucket
/// `i ≥ 1` holds values in `[2^(i−1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples recorded (saturating — exact until ~18 exabytes
    /// of accumulated value).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the inclusive upper
    /// edge of the first bucket whose cumulative count reaches `q·count`,
    /// clamped to the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The final bucket is open-ended ([2^30, u64::MAX]), so its
                // only honest upper bound is the observed maximum.
                let edge = if i == 0 {
                    0
                } else if i == BUCKETS - 1 {
                    self.max
                } else {
                    (1u64 << i) - 1
                };
                return edge.min(self.max);
            }
        }
        self.max
    }

    /// The per-bucket counts (bucket 0 = zeros, bucket `i` = `[2^(i−1), 2^i)`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The samples recorded since `earlier` (an older snapshot of the same
    /// histogram): per-bucket counts, count, and sum subtract; `max` is the
    /// lifetime maximum of `self` — a histogram does not remember when its
    /// max was recorded, so the window's true max is unrecoverable and this
    /// reports the honest upper bound instead.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        Histogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// Counters of the continuous-validation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationStats {
    /// Served bytes copied into the validator tap.
    pub bytes_tapped: u64,
    /// Served bytes that bypassed validation because the tap queue was full
    /// (lossy mode only) — the coverage the validator knowingly gave up.
    pub bytes_dropped: u64,
    /// Served windows the battery graded (all shards).
    pub windows_validated: u64,
    /// Served windows that failed the battery.
    pub windows_failed: u64,
    /// Quarantine transitions.
    pub quarantines: u64,
    /// Recharacterisations run by quarantined shards.
    pub recharacterizations: u64,
    /// Probation windows generated and graded during requalification.
    pub probation_windows: u64,
    /// Readmissions after a passed probation.
    pub readmissions: u64,
    /// Shard pairs whose windows the cross-correlation monitor compared.
    pub correlation_windows: u64,
    /// Common-mode trips: correlated shard pairs force-quarantined by the
    /// cross-correlation monitor (each trip fences two shards).
    pub correlation_trips: u64,
}

impl ValidationStats {
    /// The counter increments since `earlier` (an older snapshot).
    pub fn delta_since(&self, earlier: &ValidationStats) -> ValidationStats {
        ValidationStats {
            bytes_tapped: self.bytes_tapped.saturating_sub(earlier.bytes_tapped),
            bytes_dropped: self.bytes_dropped.saturating_sub(earlier.bytes_dropped),
            windows_validated: self
                .windows_validated
                .saturating_sub(earlier.windows_validated),
            windows_failed: self.windows_failed.saturating_sub(earlier.windows_failed),
            quarantines: self.quarantines.saturating_sub(earlier.quarantines),
            recharacterizations: self
                .recharacterizations
                .saturating_sub(earlier.recharacterizations),
            probation_windows: self
                .probation_windows
                .saturating_sub(earlier.probation_windows),
            readmissions: self.readmissions.saturating_sub(earlier.readmissions),
            correlation_windows: self
                .correlation_windows
                .saturating_sub(earlier.correlation_windows),
            correlation_trips: self
                .correlation_trips
                .saturating_sub(earlier.correlation_trips),
        }
    }
}

/// One shard's entropy accounting: raw fresh bits drawn from the physical
/// mechanism vs conditioned bytes served out of them. The ledger is the
/// ground truth the typed [`contract`](crate::contract) responses enforce
/// their MUST-consume-≥N-fresh-bits clause against, with the pinned
/// invariant `fresh_bits_claimed ≤ fresh_bits_drawn`: the delivery path
/// attributes each batch's draw across its completions pro-rata and flushes
/// drawn and claimed atomically, so no snapshot ever shows responses
/// claiming bits the shard has not consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntropyLedger {
    /// Raw fresh entropy bits drawn from the mechanism — metastable cells
    /// sampled across served batches *and* probation windows (drawn,
    /// graded, never served).
    pub fresh_bits_drawn: u64,
    /// Fresh bits attributed to delivered completions (the sum of
    /// [`Completion::fresh_bits`](crate::Completion::fresh_bits) over this
    /// shard's deliveries). Never exceeds
    /// [`fresh_bits_drawn`](Self::fresh_bits_drawn).
    pub fresh_bits_claimed: u64,
    /// Conditioned output bytes delivered by this shard.
    pub conditioned_bytes_served: u64,
}

impl EntropyLedger {
    /// The counter increments since `earlier` (an older snapshot).
    pub fn delta_since(&self, earlier: &EntropyLedger) -> EntropyLedger {
        EntropyLedger {
            fresh_bits_drawn: self
                .fresh_bits_drawn
                .saturating_sub(earlier.fresh_bits_drawn),
            fresh_bits_claimed: self
                .fresh_bits_claimed
                .saturating_sub(earlier.fresh_bits_claimed),
            conditioned_bytes_served: self
                .conditioned_bytes_served
                .saturating_sub(earlier.conditioned_bytes_served),
        }
    }
}

/// Counters the service maintains while running and reports at shutdown.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceStats {
    /// Requests completed (delivered to their tickets).
    pub completed_requests: u64,
    /// Random bytes delivered.
    pub completed_bytes: u64,
    /// High-water mark of in-flight bytes — never exceeds
    /// [`RngServiceConfig::max_inflight_bytes`](crate::RngServiceConfig::max_inflight_bytes).
    pub peak_in_flight_bytes: usize,
    /// Bytes delivered by each shard.
    pub per_shard_bytes: Vec<u64>,
    /// Per-shard entropy accounting: fresh bits drawn vs claimed vs
    /// conditioned bytes served (see [`EntropyLedger`]).
    pub per_shard_ledger: Vec<EntropyLedger>,
    /// Requests completed with a typed `Expired` outcome — by the deadline
    /// sweep, or at admission for a deadline already in the past (their
    /// bytes were never generated).
    pub expired_requests: u64,
    /// Scans the expiry-sweep thread actually ran. The sweeper sleeps
    /// indefinitely while no queued request carries a deadline, so this
    /// stays 0 under deadline-free load.
    pub expiry_sweeps: u64,
    /// Queued requests re-placed from a quarantined shard onto a healthy one
    /// by the failover path (at quarantine trip or at the next readmission).
    pub failed_over_requests: u64,
    /// Submissions rejected with
    /// [`SubmitError::Degraded`](crate::SubmitError::Degraded) because every
    /// shard was quarantined (fail-fast rejections, non-blocking submissions,
    /// and parking that timed out all count here).
    pub degraded_rejections: u64,
    /// Submissions rejected with
    /// [`SubmitError::RateLimited`](crate::SubmitError::RateLimited) by the
    /// configured [`QosPolicy`](crate::QosPolicy) (always 0 under the
    /// default [`NoQos`](crate::control::NoQos)).
    pub rate_limited_rejections: u64,
    /// Halves of a mixed submission whose bytes were generated and then
    /// discarded because the *other* half failed (expired or canceled):
    /// entropy drawn with nothing delivered. Bumped once per abandoned
    /// half when a [`MixedTicket`](crate::MixedTicket) resolves.
    pub mixed_halves_abandoned: u64,
    /// Queue depth (requests already waiting on the chosen shard) sampled at
    /// each admission.
    pub queue_depth: Histogram,
    /// Request latency (submission to delivery) in microseconds.
    pub latency_us: Histogram,
    /// Deadline slack — microseconds left until the deadline at delivery —
    /// of every served request that carried one (a request delivered at or
    /// past its deadline records 0). Expired requests are not delivered and
    /// appear in [`expired_requests`](Self::expired_requests) instead.
    pub deadline_slack_us: Histogram,
    /// Continuous-validation counters (all zero when validation is off).
    pub validation: ValidationStats,
    /// Per-shard health records (empty until snapshot; filled by
    /// [`RngService::stats`](crate::RngService::stats) and at shutdown).
    pub shard_health: Vec<ShardHealth>,
    /// The entropy-backend kind behind each shard (empty until snapshot,
    /// like [`shard_health`](Self::shard_health)). Shards of a
    /// [`RngService::start`](crate::RngService::start) instance are all
    /// [`BackendKind::Quac`]; a mesh records each backend's own kind, and
    /// the Prometheus export labels shard series with it.
    pub backend_kinds: Vec<BackendKind>,
}

impl ServiceStats {
    /// The activity between `earlier` (an older snapshot of the same
    /// service) and `self` — a stable rate window for operators and tests:
    /// counters and histograms subtract; `peak_in_flight_bytes` and
    /// histogram maxima stay at the lifetime value of `self` (peaks are not
    /// invertible); `shard_health` is the *current* record (a state, not a
    /// counter). Shards added between snapshots (never happens today) keep
    /// their full count.
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            completed_requests: self
                .completed_requests
                .saturating_sub(earlier.completed_requests),
            completed_bytes: self.completed_bytes.saturating_sub(earlier.completed_bytes),
            peak_in_flight_bytes: self.peak_in_flight_bytes,
            per_shard_bytes: self
                .per_shard_bytes
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    b.saturating_sub(earlier.per_shard_bytes.get(i).copied().unwrap_or(0))
                })
                .collect(),
            per_shard_ledger: self
                .per_shard_ledger
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    l.delta_since(&earlier.per_shard_ledger.get(i).copied().unwrap_or_default())
                })
                .collect(),
            expired_requests: self
                .expired_requests
                .saturating_sub(earlier.expired_requests),
            expiry_sweeps: self.expiry_sweeps.saturating_sub(earlier.expiry_sweeps),
            failed_over_requests: self
                .failed_over_requests
                .saturating_sub(earlier.failed_over_requests),
            degraded_rejections: self
                .degraded_rejections
                .saturating_sub(earlier.degraded_rejections),
            rate_limited_rejections: self
                .rate_limited_rejections
                .saturating_sub(earlier.rate_limited_rejections),
            mixed_halves_abandoned: self
                .mixed_halves_abandoned
                .saturating_sub(earlier.mixed_halves_abandoned),
            queue_depth: self.queue_depth.delta_since(&earlier.queue_depth),
            latency_us: self.latency_us.delta_since(&earlier.latency_us),
            deadline_slack_us: self
                .deadline_slack_us
                .delta_since(&earlier.deadline_slack_us),
            validation: self.validation.delta_since(&earlier.validation),
            shard_health: self.shard_health.clone(),
            backend_kinds: self.backend_kinds.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_bucket() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 5, 8, 13, 900] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 900);
        assert_eq!(h.quantile_upper_bound(0.0), 0);
        // Median of 9 samples is the 5th (value 3): its bucket [2,4) has
        // upper edge 3.
        assert_eq!(h.quantile_upper_bound(0.5), 3);
        assert!(h.quantile_upper_bound(1.0) >= 900);
        assert_eq!(
            h.quantile_upper_bound(1.0),
            900,
            "clamped to the observed max"
        );
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn open_ended_final_bucket_reports_the_observed_max() {
        // Values beyond 2^31 land in the open-ended last bucket; its edge
        // must be the observed max, not the (1 << 31) - 1 boundary.
        let mut h = Histogram::new();
        h.record(10_000_000_000); // ~2.8 hours in microseconds
        h.record(5);
        assert_eq!(h.quantile_upper_bound(1.0), 10_000_000_000);
        assert!(h.quantile_upper_bound(0.25) <= 7);
    }

    #[test]
    fn record_accumulates_counts() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(7);
        }
        assert_eq!(h.buckets()[Histogram::bucket_of(7)], 10);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 70);
    }

    #[test]
    fn histogram_delta_subtracts_buckets_count_and_sum() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(100);
        let earlier = h.clone();
        h.record(3);
        h.record(5000);
        let delta = h.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 5003);
        assert_eq!(delta.buckets()[Histogram::bucket_of(3)], 1);
        assert_eq!(delta.buckets()[Histogram::bucket_of(100)], 0);
        assert_eq!(delta.buckets()[Histogram::bucket_of(5000)], 1);
        assert_eq!(delta.max(), 5000, "max is the lifetime upper bound");
        // A snapshot diffed against itself is empty.
        let zero = h.delta_since(&h);
        assert_eq!(zero.count(), 0);
        assert_eq!(zero.sum(), 0);
        assert!(zero.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    fn service_stats_delta_subtracts_counters_and_keeps_health() {
        let mut earlier = ServiceStats {
            per_shard_bytes: vec![10, 20],
            ..Default::default()
        };
        earlier.completed_requests = 5;
        earlier.completed_bytes = 30;
        earlier.expiry_sweeps = 2;
        earlier.validation.windows_validated = 4;
        earlier.rate_limited_rejections = 1;
        earlier.mixed_halves_abandoned = 1;
        earlier.per_shard_ledger = vec![
            EntropyLedger {
                fresh_bits_drawn: 100,
                fresh_bits_claimed: 40,
                conditioned_bytes_served: 5,
            },
            EntropyLedger::default(),
        ];
        let mut later = earlier.clone();
        later.completed_requests = 9;
        later.completed_bytes = 75;
        later.expiry_sweeps = 7;
        later.per_shard_bytes = vec![25, 50];
        later.validation.windows_validated = 6;
        later.rate_limited_rejections = 4;
        later.mixed_halves_abandoned = 3;
        later.per_shard_ledger[0] = EntropyLedger {
            fresh_bits_drawn: 260,
            fresh_bits_claimed: 90,
            conditioned_bytes_served: 11,
        };
        later.shard_health = vec![ShardHealth::new(); 2];
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.completed_requests, 4);
        assert_eq!(delta.completed_bytes, 45);
        assert_eq!(delta.expiry_sweeps, 5);
        assert_eq!(delta.per_shard_bytes, vec![15, 30]);
        assert_eq!(delta.validation.windows_validated, 2);
        assert_eq!(delta.rate_limited_rejections, 3);
        assert_eq!(delta.mixed_halves_abandoned, 2);
        assert_eq!(
            delta.per_shard_ledger[0],
            EntropyLedger {
                fresh_bits_drawn: 160,
                fresh_bits_claimed: 50,
                conditioned_bytes_served: 6,
            }
        );
        assert_eq!(delta.per_shard_ledger[1], EntropyLedger::default());
        assert_eq!(
            delta.shard_health.len(),
            2,
            "health is current state, not a diff"
        );
    }
}
