//! # qt-rng-service
//!
//! A sharded, asynchronous random-number **service** in front of the
//! QUAC-TRNG pipeline — the system layer of the paper's end-to-end story
//! (Sections 3, 7.3 and 9): a memory controller answering random-number
//! requests from many applications out of idle DRAM cycles. DR-STRaNGe
//! (arXiv:2201.01385) shows that the system value of a DRAM TRNG hinges on
//! exactly this layer — request scheduling, buffering, and fairness between
//! RNG traffic and regular traffic — and D-RaNGe (arXiv:1808.04286) frames
//! the same multi-client throughput question.
//!
//! ## Architecture: control plane / data plane
//!
//! The crate is split along the classic control/data seam. The **data
//! plane** moves bytes: queue → worker batch loop → pacing → tap →
//! completion delivery. The **control plane** decides *which* shard serves
//! and *whether* a request is still worth serving: placement, shard health
//! and quarantine, degraded admission, requalification, expiry, failover.
//! The two meet only through one state lock, so every control decision is a
//! pure function of observable state.
//!
//! ```text
//!                         CONTROL PLANE
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ placement  — PlacementPolicy (least-loaded + rotation)     │
//!   │ control    — AdmissionPolicy (DegradedPolicy),             │
//!   │              RequalifyPolicy, validator loop, quarantine   │
//!   │              failover, deadline-expiry sweep               │
//!   │ health     — ShardHealth EWMA/streak state machine         │
//!   └──────────────▲─────────────────────────────▲───────────────┘
//!                  │ one Mutex<State> + condvars │
//!   ┌──────────────▼─────────────────────────────▼───────────────┐
//!   │ service    — config, admission, lifecycle glue             │
//!   │ queue      — per-shard ShardScheduler (bands, round-robin, │
//!   │              fairness window)                              │
//!   │ worker     — batch loop: fill_bytes → pace (IdleBudget)    │
//!   │              → tap → release budget → deliver              │
//!   │ ticket     — client-side receipt (Served/Expired/Canceled) │
//!   └────────────────────────────────────────────────────────────┘
//!          DATA PLANE           stats/export — snapshots, deltas,
//!                                              Prometheus text
//! ```
//!
//! Module map and seams:
//!
//! * [`service`] — [`RngServiceConfig`], admission (backpressure, deadline
//!   checks), thread lifecycle. [`RngService::start_with_policies`] is the
//!   injection point for a custom [`ServicePolicies`] set;
//!   [`RngService::start_mesh`] runs a heterogeneous **entropy mesh** of
//!   boxed [`EntropyBackend`](quac_trng::EntropyBackend)s (QUAC, D-RaNGe,
//!   retention) with tiered placement and cross-tier failover.
//! * [`placement`] — [`PlacementPolicy`] + the default
//!   [`least_loaded_shard`] rule: least-loaded serving shard, rotation
//!   tie-break (so an idle service degrades to round-robin), quarantined
//!   shards skipped while any healthy shard exists. [`TieredPlacement`]
//!   routes by priority across backend kinds and falls through tiers as
//!   quarantine empties them.
//! * [`mixer`] — cross-source conditioning: XOR-fold + batched SHA-256 over
//!   two independent backends' streams ([`RngService::submit_mixed`],
//!   [`MixedTicket`]), pinned bit-for-bit to the scalar
//!   [`mix_reference`](mixer::mix_reference) twin.
//! * [`correlation`] — the cross-correlation health check: windowed
//!   inter-shard bit-agreement statistic; a correlated pair is
//!   force-quarantined whole (catches common-mode faults per-stream
//!   batteries cannot see).
//! * [`control`] — [`AdmissionPolicy`] (what a blocking submission does
//!   while *every* shard is fenced, stock impl [`DegradedPolicy`]),
//!   [`RequalifyPolicy`] (recharacterise-on-quarantine pacing),
//!   [`QosPolicy`] (per-tenant token-bucket admission, stock impls
//!   [`NoQos`] / [`TokenBucketQos`], rejection via
//!   [`SubmitError::RateLimited`]), and the orchestration loops: validation
//!   verdict folding, quarantine failover, requalification, and the
//!   deadline-expiry sweep (which waits on its own condvar, so
//!   deadline-free load never wakes it).
//! * [`health`] — the per-shard window → EWMA/streak → quarantine →
//!   probation → readmission state machine.
//! * [`queue`] / `worker` — the data plane: priority bands with
//!   round-robin per client and a bounded anti-starvation window
//!   ([`RngServiceConfig::fairness_window`]); batch coalescing up to
//!   [`RngServiceConfig::max_batch_bytes`]; delivery pacing against an
//!   [`IdleBudget`](qt_memctrl::IdleBudget) (Figure 12's injection model);
//!   backpressure against [`RngServiceConfig::max_inflight_bytes`].
//! * [`ticket`] — the client-side receipt: [`Ticket::wait`],
//!   [`Ticket::try_wait`], [`Ticket::wait_deadline`]; typed terminal
//!   outcomes [`Expired`] (stamped with the [`ExpiryStage`] it died at) and
//!   [`Canceled`]. Tickets are `Sync`: the resolution cell is shared with
//!   the delivery side, so waits from several threads agree.
//! * [`facade`] — the async front door: [`AsyncTicket`] /
//!   [`AsyncMixedTicket`] implement [`Future`](std::future::Future) with the
//!   waker registered at the completion-delivery boundary (worker, expiry
//!   sweep, abort — no polling thread, no runtime dependency), plus the
//!   minimal [`block_on`] executor.
//! * [`contract`] — typed Spinel-shaped responses ([`Trng32`], [`Trng128`],
//!   [`TrngRaw32`]): payload + checksum + [`SourceTelemetry`] in one frame,
//!   each constructor enforcing its MUST-consume-≥N-fresh-bits clause
//!   against the completion's ledger-attributed
//!   [`fresh_bits`](Completion::fresh_bits).
//! * [`validate`] — the continuous-validation tap and windowing in front of
//!   the word-parallel NIST SP 800-22 battery.
//! * [`stats`] / [`export`] — [`ServiceStats`] snapshots, log₂
//!   [`Histogram`]s, the per-shard [`EntropyLedger`] (raw fresh bits drawn
//!   vs conditioned bytes served, per backend), rate windows via
//!   [`ServiceStats::delta_since`], and Prometheus text exposition via
//!   [`export::prometheus_text`].
//!
//! ## Deadlines and degraded operation
//!
//! Requests may carry a completion deadline
//! ([`RngService::submit_with_deadline`]): a request still queued when it
//! passes is completed with a typed [`Expired`] outcome within one
//! [`RngServiceConfig::expiry_sweep_interval`]; a deadline already in the
//! past resolves at admission without being charged; and a submission
//! parked on the in-flight budget gives up with the same typed outcome at
//! its deadline — no submit path blocks past `max(deadline, policy bound)`.
//! While *every* shard is quarantined, admission follows the configured
//! [`DegradedPolicy`] — fail-fast rejection with [`SubmitError::Degraded`],
//! or parking bounded by the policy (and by the request's own deadline).
//! [`Ticket::wait_deadline`] bounds the wait itself. With
//! [`ValidationConfig::enabled`], a validator thread grades served windows
//! and quarantines shards whose health trips a bound; their queued requests
//! fail over to healthy shards, and readmission requires a probation streak
//! (see [`health`]).
//!
//! ## Determinism contract
//!
//! Shard `i` seeded via `QuacTrng::shards(.., base_seed, ..)` emits one fixed
//! byte stream. Every [`Completion`] carries `(shard, epoch, stream_offset)`,
//! and a shard's epoch-0 completions — sorted by `stream_offset` —
//! concatenate to exactly the prefix an identically-seeded, single-threaded
//! `QuacTrng` produces. A quarantine→readmission cycle restarts the shard's
//! stream and bumps the epoch (offsets restart at 0), so each `(shard,
//! epoch)` stream is gapless on its own; shards that never fail validation
//! stay in epoch 0 forever.
//! Thread interleaving can change *which request* receives *which chunk*,
//! but never the bytes each shard hands out; under a fixed submission order
//! (single submitter, one request outstanding) even the per-request bytes
//! are reproducible. The integration suite (`tests/rng_service.rs` at the
//! workspace root) pins both properties — and thereby the whole
//! control-plane/data-plane split: any placement or scheduling change that
//! breaks replay shows up there as a stream mismatch. A custom
//! [`PlacementPolicy`] keeps the contract iff it is a pure function of its
//! [`PlacementView`](placement::PlacementView).
//!
//! ## Quickstart
//!
//! ```
//! use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
//! use quac_trng::characterize::{characterize_module, CharacterizationConfig};
//! use quac_trng::pipeline::QuacTrng;
//! use qt_dram_analog::{ModuleVariation, QuacAnalogModel};
//! use qt_dram_core::{DataPattern, DramGeometry};
//!
//! // Characterise once, then shard the generator across two channels.
//! let geom = DramGeometry::tiny_test();
//! let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 1));
//! let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, ..Default::default() };
//! let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
//! let service = RngService::start(
//!     QuacTrng::shards(&model, &ch, 42, 2),
//!     RngServiceConfig::default(),
//! );
//! let ticket = service.submit(ClientId(0), Priority::Normal, 64).unwrap();
//! let completion = ticket.wait().unwrap();
//! assert_eq!(completion.bytes.len(), 64);
//! println!("{}", qt_rng_service::export::prometheus_text(&service.stats()));
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod control;
pub mod correlation;
pub mod export;
pub mod facade;
pub mod health;
pub mod mixer;
pub mod placement;
pub mod queue;
pub mod request;
pub mod service;
pub(crate) mod state;
pub mod stats;
pub mod ticket;
pub mod validate;
pub(crate) mod worker;

pub use contract::{ContractError, SourceTelemetry, Trng128, Trng32, TrngRaw32};
pub use control::{
    AdmissionPolicy, DegradedPolicy, NoQos, QosPolicy, RequalifyPolicy, ServicePolicies,
    TokenBucketQos,
};
pub use correlation::{bit_agreement, CorrelationConfig, CorrelationMonitor};
pub use facade::{block_on, AsyncMixedTicket, AsyncTicket};
pub use health::{HealthPolicy, ShardHealth, ShardState};
pub use mixer::{MixedCompletion, MixedTicket};
pub use placement::{least_loaded_shard, PlacementPolicy, TieredPlacement};
pub use queue::ShardScheduler;
pub use request::{ClientId, Completion, Priority, RngRequest, SubmitError};
pub use service::RngService;
pub use state::RngServiceConfig;
pub use stats::{EntropyLedger, Histogram, ServiceStats, ValidationStats};
pub use ticket::{Canceled, Expired, ExpiryStage, Ticket, WaitError};
pub use validate::ValidationConfig;
