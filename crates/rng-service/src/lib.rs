//! # qt-rng-service
//!
//! A sharded, asynchronous random-number **service** in front of the
//! QUAC-TRNG pipeline — the system layer of the paper's end-to-end story
//! (Sections 3, 7.3 and 9): a memory controller answering random-number
//! requests from many applications out of idle DRAM cycles. DR-STRaNGe
//! (arXiv:2201.01385) shows that the system value of a DRAM TRNG hinges on
//! exactly this layer — request scheduling, buffering, and fairness between
//! RNG traffic and regular traffic — and D-RaNGe (arXiv:1808.04286) frames
//! the same multi-client throughput question.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──▶ submit()/try_submit() ──▶ ┌────────────────────────────┐
//!   (N apps)     │ backpressure:         │ per-shard ShardScheduler   │
//!                │ park/reject when      │  · High ▷ Normal bands     │
//!                │ in-flight bytes       │  · round-robin per client  │
//!                │ exceed the budget     │  · fairness window (aging) │
//!                ▼                       └─────────────┬──────────────┘
//!            Ticket (mpsc)                             │ pop_batch(): coalesce
//!                ▲                                     ▼
//!                │               ┌──────────────────────────────────────┐
//!                └── Completion ─┤ worker thread per shard (channel):   │
//!                                │  QuacTrng::fill_bytes over the batch │
//!                                │  → pace against IdleBudget           │
//!                                │  → deliver → release budget          │
//!                                └──────────────────────────────────────┘
//! ```
//!
//! * **Sharding** — one [`QuacTrng`](quac_trng::pipeline::QuacTrng) per
//!   DRAM channel (built with `QuacTrng::shards`), each owned by a worker
//!   thread; requests are assigned to shards round-robin at submission.
//! * **Batching** — a worker drains its queue up to
//!   [`RngServiceConfig::max_batch_bytes`] per wakeup and generates the whole
//!   batch with one buffer-reusing `fill_bytes` call, so small reads coalesce
//!   into whole QUAC iterations instead of paying per-request overhead.
//! * **Backpressure** — a service-wide in-flight byte budget
//!   ([`RngServiceConfig::max_inflight_bytes`]): [`RngService::try_submit`]
//!   rejects with [`SubmitError::Saturated`], [`RngService::submit`] parks the
//!   caller until space frees.
//! * **Scheduling** — per shard, two priority bands with round-robin between
//!   clients inside a band and a bounded anti-starvation window
//!   ([`RngServiceConfig::fairness_window`]): at most that many consecutive
//!   high-priority dispatches while normal work waits (property-tested in
//!   [`queue`]).
//! * **Pacing** — an optional [`IdleBudget`](qt_memctrl::IdleBudget) from
//!   `qt_memctrl` throttles each worker's *delivery* rate to the random-byte
//!   rate the channel's idle cycles can sustain under co-running traffic
//!   (Figure 12's injection model).
//! * **Placement** — requests go to the least-loaded healthy shard
//!   ([`queue::least_loaded_shard`]), with rotation tie-breaking so an idle
//!   service degrades to round-robin; quarantined shards are skipped while
//!   any healthy shard exists.
//! * **Continuous validation** — with [`ValidationConfig::enabled`]
//!   (default off), a validator thread taps a copy of every served batch,
//!   grades fixed-size windows with the word-parallel NIST SP 800-22
//!   battery, and folds verdicts into per-shard health (pass-rate EWMA +
//!   consecutive-failure streak). A shard crossing a bound is
//!   **quarantined**: removed from placement, its queued requests **failed
//!   over** to healthy shards, recharacterised via
//!   `QuacTrng::recharacterize`, and readmitted only after a probation
//!   streak passes the battery. See [`validate`] for the loop and
//!   [`health`] for the state machine.
//! * **Degraded operation** — requests may carry a completion deadline
//!   ([`RngService::submit_with_deadline`]): a request still queued when it
//!   passes is completed with a typed [`Expired`] outcome by the expiry
//!   sweep within one [`RngServiceConfig::expiry_sweep_interval`], so
//!   clients never park on work the service cannot do in time. While
//!   *every* shard is quarantined, admission follows the configured
//!   [`DegradedPolicy`] — fail-fast rejection with
//!   [`SubmitError::Degraded`], or parking bounded by the policy (and by
//!   the request's own deadline). [`Ticket::wait_deadline`] bounds the wait
//!   itself. The expired / failed-over / degraded-rejection counts and a
//!   deadline-slack histogram are part of every [`ServiceStats`] snapshot.
//!
//! ## Determinism contract
//!
//! Shard `i` seeded via `QuacTrng::shards(.., base_seed, ..)` emits one fixed
//! byte stream. Every [`Completion`] carries `(shard, epoch, stream_offset)`,
//! and a shard's epoch-0 completions — sorted by `stream_offset` —
//! concatenate to exactly the prefix an identically-seeded, single-threaded
//! `QuacTrng` produces. A quarantine→readmission cycle restarts the shard's
//! stream and bumps the epoch (offsets restart at 0), so each `(shard,
//! epoch)` stream is gapless on its own; shards that never fail validation
//! stay in epoch 0 forever.
//! Thread interleaving can change *which request* receives *which chunk*,
//! but never the bytes each shard hands out; under a fixed submission order
//! (single submitter, one request outstanding) even the per-request bytes
//! are reproducible. The integration suite (`tests/rng_service.rs` at the
//! workspace root) pins both properties.
//!
//! ## Quickstart
//!
//! ```
//! use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
//! use quac_trng::characterize::{characterize_module, CharacterizationConfig};
//! use quac_trng::pipeline::QuacTrng;
//! use qt_dram_analog::{ModuleVariation, QuacAnalogModel};
//! use qt_dram_core::{DataPattern, DramGeometry};
//!
//! // Characterise once, then shard the generator across two channels.
//! let geom = DramGeometry::tiny_test();
//! let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 1));
//! let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, ..Default::default() };
//! let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
//! let service = RngService::start(
//!     QuacTrng::shards(&model, &ch, 42, 2),
//!     RngServiceConfig::default(),
//! );
//! let ticket = service.submit(ClientId(0), Priority::Normal, 64).unwrap();
//! let completion = ticket.wait().unwrap();
//! assert_eq!(completion.bytes.len(), 64);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod queue;
pub mod request;
pub mod service;
pub mod stats;
pub mod validate;

pub use health::{HealthPolicy, ShardHealth, ShardState};
pub use queue::{least_loaded_shard, ShardScheduler};
pub use request::{ClientId, Completion, Priority, RngRequest, SubmitError};
pub use service::{
    Canceled, DegradedPolicy, Expired, RngService, RngServiceConfig, Ticket, WaitError,
};
pub use stats::{Histogram, ServiceStats, ValidationStats};
pub use validate::ValidationConfig;
