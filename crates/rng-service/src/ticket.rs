//! The client-side receipt of a submission: [`Ticket`] and its terminal
//! outcomes ([`Completion`], [`Expired`],
//! [`Canceled`]).
//!
//! This is the delivery end of the data plane: workers (and the control
//! plane's expiry sweep) push exactly one outcome into a ticket's shared
//! resolution cell and wake every waiter — blocking waits parked on the
//! cell's condvar *and* an async task's registered [`Waker`] (see
//! [`crate::facade`]). The cell is `Sync`: once resolved, every wait
//! variant on every thread reports the *same* terminal outcome forever.

use crate::request::Completion;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// The receipt for one submitted request; redeem it with [`Ticket::wait`],
/// poll it with [`Ticket::try_wait`], or wait with a bound via
/// [`Ticket::wait_deadline`]. Convert it with
/// [`AsyncTicket::from`](crate::facade::AsyncTicket) to `await` it instead.
///
/// A ticket resolves to exactly one terminal outcome — served, [`Expired`],
/// or [`Canceled`] — held in a shared cell the delivery side writes once:
/// after any wait variant has observed the outcome, every later call (from
/// any thread: `Ticket` is `Sync`) reports the *same* outcome (a served
/// ticket polled twice returns the same completion again rather than
/// misreporting `Canceled` after the service stops).
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    shard: Option<usize>,
    cell: Arc<TicketCell>,
}

/// The shared resolution slot between a ticket (and its async facade) and
/// the delivery side. The resolution is written exactly once; the condvar
/// wakes blocking waiters and the stored [`Waker`] wakes an async task —
/// both at the same delivery boundary, so no polling thread exists
/// anywhere.
#[derive(Debug, Default)]
pub(crate) struct TicketCell {
    state: Mutex<CellState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct CellState {
    /// The terminal outcome, written once by the delivery side (or by the
    /// sender's drop, as `Canceled`). Never overwritten.
    resolution: Option<Result<Completion, WaitError>>,
    /// Waker of the async task that last polled an unresolved ticket;
    /// taken and woken by the resolving side.
    waker: Option<Waker>,
}

impl TicketCell {
    /// Stores the terminal outcome (first write wins) and wakes every
    /// waiter: blocking waits via the condvar, an async task via its
    /// registered waker.
    fn resolve(&self, resolution: Result<Completion, WaitError>) {
        let waker = {
            let mut st = self.state.lock().expect("ticket cell poisoned");
            if st.resolution.is_some() {
                return; // already terminal; late cancels must not clobber
            }
            st.resolution = Some(resolution);
            st.waker.take()
        };
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// The delivery side's handle on a ticket's resolution cell. Sending an
/// [`Outcome`] resolves the ticket; dropping the sender unresolved cancels
/// it (the service discarded the request) — both wake all waiters.
#[derive(Debug)]
pub(crate) struct TicketSender {
    cell: Arc<TicketCell>,
}

impl TicketSender {
    /// Resolves the ticket with `outcome` and wakes its waiters.
    pub(crate) fn send(&self, outcome: Outcome) {
        self.cell.resolve(match outcome {
            Outcome::Served(c) => Ok(c),
            Outcome::Expired(e) => Err(WaitError::Expired(e)),
        });
    }
}

impl Drop for TicketSender {
    fn drop(&mut self) {
        // Dropping the sender of an unresolved ticket is a cancellation
        // (abort discarded the request); `resolve` is a no-op when the
        // ticket already carries its real outcome.
        self.cell.resolve(Err(WaitError::Canceled(Canceled)));
    }
}

/// Creates the shared resolution cell of one pending request: the
/// [`TicketSender`] goes to the service's delivery side, the [`Ticket`] to
/// the client.
pub(crate) fn ticket_channel(seq: u64, shard: usize) -> (TicketSender, Ticket) {
    let cell = Arc::new(TicketCell::default());
    (
        TicketSender {
            cell: Arc::clone(&cell),
        },
        Ticket {
            seq,
            shard: Some(shard),
            cell,
        },
    )
}

/// The request was discarded before completion (service aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request canceled: the RNG service stopped before serving it"
        )
    }
}

impl std::error::Error for Canceled {}

/// Where in its lifecycle a request was expired — carried in [`Expired`]
/// so operator logs attribute the failure to the right stage instead of
/// blaming the queue for every miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiryStage {
    /// The deadline was already in the past when the request was submitted:
    /// it was never placed, charged, or queued.
    Admission,
    /// The submitter parked on the in-flight budget and its own deadline
    /// passed before space freed: the request was never admitted.
    Parked,
    /// The request was queued on a shard when its deadline passed; the
    /// expiry sweep (or a worker's pop-time sweep) completed it.
    Sweep,
}

/// The request's deadline passed before any byte was generated for it: the
/// expiry sweep (or admission itself, for a deadline already in the past)
/// completed it with this typed outcome instead of leaving the client
/// parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// Submission sequence number of the expired request.
    pub seq: u64,
    /// The deadline the request was submitted with.
    pub deadline: Instant,
    /// When it was expired: at admission for a deadline already in the
    /// past, at the parked submitter's own deadline for a submission that
    /// waited out the in-flight budget, or by the sweep (at most one
    /// [`expiry_sweep_interval`](crate::RngServiceConfig::expiry_sweep_interval)
    /// past the deadline while the service runs) for a queued request.
    pub expired_at: Instant,
    /// The lifecycle stage that expired the request — admission, a parked
    /// submitter's own deadline, or the queue sweep.
    pub stage: ExpiryStage,
}

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            ExpiryStage::Admission => "at admission, its deadline already past",
            ExpiryStage::Parked => "while its submitter was parked on the in-flight budget",
            ExpiryStage::Sweep => "while still queued",
        };
        write!(
            f,
            "request {} expired {} µs past its deadline {stage}",
            self.seq,
            self.expired_at
                .saturating_duration_since(self.deadline)
                .as_micros()
        )
    }
}

impl std::error::Error for Expired {}

/// Terminal failure of a ticket: why the request will never deliver bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed while the request was still queued.
    Expired(Expired),
    /// The service was aborted before serving it.
    Canceled(Canceled),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Expired(e) => e.fmt(f),
            WaitError::Canceled(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for WaitError {}

/// What the delivery side pushes into a ticket's cell. `Canceled` has no
/// variant: it is the sender dropping with nothing resolved (the service
/// discarded the request without serving or expiring it).
#[derive(Debug)]
pub(crate) enum Outcome {
    /// The request was served.
    Served(Completion),
    /// The request's deadline passed while it was queued.
    Expired(Expired),
}

impl Ticket {
    /// A ticket that expired at admission: its deadline had already passed
    /// (or passed while the submitter was parked on the in-flight budget),
    /// so it was never placed on a shard and never charged to the budget.
    pub(crate) fn expired(seq: u64, expired: Expired) -> Self {
        let cell = Arc::new(TicketCell::default());
        cell.resolve(Err(WaitError::Expired(expired)));
        Ticket {
            seq,
            shard: None,
            cell,
        }
    }

    /// Submission sequence number of the request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard (channel) the request was assigned to at admission, or
    /// `None` for a request that expired at admission and was never placed.
    /// Quarantine failover may re-place a queued request, so the shard that
    /// actually generates the bytes is
    /// [`Completion::shard`](crate::request::Completion::shard), which is
    /// authoritative for provenance.
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    /// Blocks until the request resolves and returns its bytes.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] if the request's deadline passed while it was
    /// still queued; [`WaitError::Canceled`] if the service was aborted
    /// before serving it.
    pub fn wait(self) -> Result<Completion, WaitError> {
        self.wait_ref()
    }

    /// [`Ticket::wait`] by reference, for compound receipts
    /// ([`MixedTicket`](crate::mixer::MixedTicket)) that must join several
    /// halves before consuming themselves.
    pub(crate) fn wait_ref(&self) -> Result<Completion, WaitError> {
        let mut st = self.cell.state.lock().expect("ticket cell poisoned");
        loop {
            if let Some(resolution) = &st.resolution {
                return resolution.clone();
            }
            st = self.cell.ready.wait(st).expect("ticket cell poisoned");
        }
    }

    /// Non-blocking poll: `Ok(Some)` once the request has been served,
    /// `Ok(None)` while it is still pending. Idempotent after resolution:
    /// a served ticket keeps returning its completion, an expired or
    /// canceled one keeps returning the same error — from any thread.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] once the deadline has expired the request;
    /// [`WaitError::Canceled`] once the service aborted it (polling loops
    /// must not keep spinning on a dead request).
    pub fn try_wait(&self) -> Result<Option<Completion>, WaitError> {
        let st = self.cell.state.lock().expect("ticket cell poisoned");
        match &st.resolution {
            Some(resolution) => resolution.clone().map(Some),
            None => Ok(None),
        }
    }

    /// Blocks until the request resolves or `deadline` passes, whichever is
    /// first: `Ok(Some)` with the bytes, or `Ok(None)` if the request is
    /// still pending at the deadline (the request itself stays queued — this
    /// bounds the *wait*, not the request; submit with a deadline to bound
    /// the request).
    ///
    /// # Errors
    ///
    /// The same terminal errors as [`Ticket::wait`].
    pub fn wait_deadline(&self, deadline: Instant) -> Result<Option<Completion>, WaitError> {
        let mut st = self.cell.state.lock().expect("ticket cell poisoned");
        loop {
            if let Some(resolution) = &st.resolution {
                return resolution.clone().map(Some);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .cell
                .ready
                .wait_timeout(st, deadline - now)
                .expect("ticket cell poisoned");
            st = guard;
        }
    }

    /// The async-facade poll: returns the terminal outcome if resolved,
    /// otherwise registers `cx`'s waker in the cell (replacing any earlier
    /// one) so the delivery side wakes the task exactly when the outcome
    /// lands — no polling thread anywhere.
    pub(crate) fn poll_wait(&self, cx: &mut Context<'_>) -> Poll<Result<Completion, WaitError>> {
        let mut st = self.cell.state.lock().expect("ticket cell poisoned");
        match &st.resolution {
            Some(resolution) => Poll::Ready(resolution.clone()),
            None => {
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    /// Weak handle on the resolution cell — lets tests observe that
    /// dropping a future (and its ticket) leaks nothing once the delivery
    /// side lets go.
    #[cfg(test)]
    pub(crate) fn cell_weak(&self) -> std::sync::Weak<TicketCell> {
        Arc::downgrade(&self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_admission_expired_ticket_is_resolved_and_sticky() {
        let now = Instant::now();
        let expired = Expired {
            seq: 7,
            deadline: now,
            expired_at: now,
            stage: ExpiryStage::Admission,
        };
        let t = Ticket::expired(7, expired);
        assert_eq!(t.seq(), 7);
        assert_eq!(t.shard(), None, "never placed on a shard");
        assert_eq!(t.try_wait(), Err(WaitError::Expired(expired)));
        // Terminal state is cached: a second poll repeats it.
        assert_eq!(t.try_wait(), Err(WaitError::Expired(expired)));
        assert_eq!(t.wait_deadline(now), Err(WaitError::Expired(expired)));
        assert_eq!(t.wait(), Err(WaitError::Expired(expired)));
    }

    #[test]
    fn a_dropped_sender_cancels_the_ticket() {
        let (tx, t) = ticket_channel(1, 0);
        assert_eq!(t.shard(), Some(0));
        assert_eq!(t.try_wait(), Ok(None), "pending while the sender lives");
        drop(tx);
        assert_eq!(t.try_wait(), Err(WaitError::Canceled(Canceled)));
        assert_eq!(
            t.wait(),
            Err(WaitError::Canceled(Canceled)),
            "cancellation is sticky"
        );
    }

    #[test]
    fn a_sent_outcome_beats_the_senders_drop() {
        let (tx, t) = ticket_channel(2, 1);
        let completion = Completion {
            client: crate::request::ClientId(0),
            seq: 2,
            shard: 1,
            epoch: 0,
            stream_offset: 0,
            fresh_bits: 0,
            backend: quac_trng::BackendKind::Quac,
            bytes: vec![0xAB; 4],
        };
        tx.send(Outcome::Served(completion.clone()));
        drop(tx); // the drop-cancel must not clobber the real outcome
        assert_eq!(t.try_wait(), Ok(Some(completion.clone())));
        assert_eq!(t.wait(), Ok(completion));
    }

    #[test]
    fn expiry_stages_render_distinctly() {
        let now = Instant::now();
        let render = |stage| {
            Expired {
                seq: 1,
                deadline: now,
                expired_at: now,
                stage,
            }
            .to_string()
        };
        let admission = render(ExpiryStage::Admission);
        let parked = render(ExpiryStage::Parked);
        let sweep = render(ExpiryStage::Sweep);
        assert!(admission.contains("at admission"), "{admission}");
        assert!(
            parked.contains("parked on the in-flight budget"),
            "{parked}"
        );
        assert!(sweep.contains("while still queued"), "{sweep}");
        assert_ne!(admission, parked);
        assert_ne!(parked, sweep);
    }

    #[test]
    fn tickets_are_shareable_across_threads() {
        // The Sync bound itself (compile-time) plus a smoke run: two
        // threads observe the same terminal outcome.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Ticket>();
        let (tx, t) = ticket_channel(3, 0);
        let t = std::sync::Arc::new(t);
        let spinner = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || loop {
                match t.try_wait() {
                    Ok(None) => std::thread::yield_now(),
                    other => return other,
                }
            })
        };
        let now = Instant::now();
        let expired = Expired {
            seq: 3,
            deadline: now,
            expired_at: now,
            stage: ExpiryStage::Sweep,
        };
        tx.send(Outcome::Expired(expired));
        assert_eq!(spinner.join().unwrap(), Err(WaitError::Expired(expired)));
        assert_eq!(
            t.wait_deadline(Instant::now()),
            Err(WaitError::Expired(expired))
        );
    }
}
