//! The client-side receipt of a submission: [`Ticket`] and its terminal
//! outcomes ([`Completion`], [`Expired`],
//! [`Canceled`]).
//!
//! This is the delivery end of the data plane: workers (and the control
//! plane's expiry sweep) push exactly one outcome down a ticket's
//! channel, and the ticket caches the first outcome it observes so every
//! later wait variant reports the same resolution.

use crate::request::Completion;
use std::sync::mpsc;
use std::time::Instant;

/// The receipt for one submitted request; redeem it with [`Ticket::wait`],
/// poll it with [`Ticket::try_wait`], or wait with a bound via
/// [`Ticket::wait_deadline`].
///
/// A ticket resolves to exactly one terminal outcome — served, [`Expired`],
/// or [`Canceled`] — and caches it: once any wait variant has observed the
/// outcome, every later call reports the *same* outcome (a served ticket
/// polled twice returns the same completion again rather than misreporting
/// `Canceled` after the channel drains).
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    shard: Option<usize>,
    rx: mpsc::Receiver<Outcome>,
    /// The cached terminal outcome. Interior mutability keeps the polling
    /// API (`&self`) while making the pending→terminal transition atomic
    /// from the caller's point of view: the state observed here never
    /// changes once set.
    resolved: std::cell::RefCell<Option<Result<Completion, WaitError>>>,
}

/// The request was discarded before completion (service aborted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request canceled: the RNG service stopped before serving it")
    }
}

impl std::error::Error for Canceled {}

/// The request's deadline passed before any byte was generated for it: the
/// expiry sweep (or admission itself, for a deadline already in the past)
/// completed it with this typed outcome instead of leaving the client
/// parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// Submission sequence number of the expired request.
    pub seq: u64,
    /// The deadline the request was submitted with.
    pub deadline: Instant,
    /// When it was expired: at admission for a deadline already in the
    /// past, at the parked submitter's own deadline for a submission that
    /// waited out the in-flight budget, or by the sweep (at most one
    /// [`expiry_sweep_interval`](crate::RngServiceConfig::expiry_sweep_interval)
    /// past the deadline while the service runs) for a queued request.
    pub expired_at: Instant,
}

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} expired {} µs past its deadline while still queued",
            self.seq,
            self.expired_at.saturating_duration_since(self.deadline).as_micros()
        )
    }
}

impl std::error::Error for Expired {}

/// Terminal failure of a ticket: why the request will never deliver bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed while the request was still queued.
    Expired(Expired),
    /// The service was aborted before serving it.
    Canceled(Canceled),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Expired(e) => e.fmt(f),
            WaitError::Canceled(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for WaitError {}

/// What travels over a ticket's completion channel. `Canceled` has no
/// variant: it is the channel disconnecting with nothing buffered (the
/// service dropped the sender without serving or expiring the request).
#[derive(Debug)]
pub(crate) enum Outcome {
    /// The request was served.
    Served(Completion),
    /// The request's deadline passed while it was queued.
    Expired(Expired),
}

impl Ticket {
    /// A pending ticket for a request placed on `shard`; the service keeps
    /// `tx` and resolves the ticket by sending one [`Outcome`] (or by
    /// dropping the sender, which cancels it).
    pub(crate) fn pending(seq: u64, shard: usize, rx: mpsc::Receiver<Outcome>) -> Self {
        Ticket { seq, shard: Some(shard), rx, resolved: std::cell::RefCell::new(None) }
    }

    /// A ticket that expired at admission: its deadline had already passed
    /// (or passed while the submitter was parked on the in-flight budget),
    /// so it was never placed on a shard and never charged to the budget.
    pub(crate) fn expired(seq: u64, expired: Expired) -> Self {
        let (tx, rx) = mpsc::channel();
        tx.send(Outcome::Expired(expired)).expect("receiver held locally");
        Ticket { seq, shard: None, rx, resolved: std::cell::RefCell::new(None) }
    }

    /// Submission sequence number of the request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard (channel) the request was assigned to at admission, or
    /// `None` for a request that expired at admission and was never placed.
    /// Quarantine failover may re-place a queued request, so the shard that
    /// actually generates the bytes is
    /// [`Completion::shard`](crate::request::Completion::shard), which is
    /// authoritative for provenance.
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    fn resolve(&self, outcome: Outcome) -> Result<Completion, WaitError> {
        let resolution = match outcome {
            Outcome::Served(c) => Ok(c),
            Outcome::Expired(e) => Err(WaitError::Expired(e)),
        };
        *self.resolved.borrow_mut() = Some(resolution.clone());
        resolution
    }

    fn resolve_canceled(&self) -> WaitError {
        let err = WaitError::Canceled(Canceled);
        *self.resolved.borrow_mut() = Some(Err(err));
        err
    }

    fn cached(&self) -> Option<Result<Completion, WaitError>> {
        self.resolved.borrow().clone()
    }

    /// Blocks until the request resolves and returns its bytes.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] if the request's deadline passed while it was
    /// still queued; [`WaitError::Canceled`] if the service was aborted
    /// before serving it.
    pub fn wait(self) -> Result<Completion, WaitError> {
        if let Some(resolution) = self.cached() {
            return resolution;
        }
        match self.rx.recv() {
            Ok(outcome) => self.resolve(outcome),
            Err(_) => Err(self.resolve_canceled()),
        }
    }

    /// Non-blocking poll: `Ok(Some)` once the request has been served,
    /// `Ok(None)` while it is still pending. Idempotent after resolution:
    /// a served ticket keeps returning its completion, an expired or
    /// canceled one keeps returning the same error.
    ///
    /// # Errors
    ///
    /// [`WaitError::Expired`] once the deadline has expired the request;
    /// [`WaitError::Canceled`] once the service aborted it (polling loops
    /// must not keep spinning on a dead request).
    pub fn try_wait(&self) -> Result<Option<Completion>, WaitError> {
        if self.cached().is_none() {
            match self.rx.try_recv() {
                Ok(outcome) => drop(self.resolve(outcome)),
                Err(mpsc::TryRecvError::Empty) => return Ok(None),
                Err(mpsc::TryRecvError::Disconnected) => drop(self.resolve_canceled()),
            }
        }
        self.cached().expect("ticket just resolved").map(Some)
    }

    /// Blocks until the request resolves or `deadline` passes, whichever is
    /// first: `Ok(Some)` with the bytes, or `Ok(None)` if the request is
    /// still pending at the deadline (the request itself stays queued — this
    /// bounds the *wait*, not the request; submit with a deadline to bound
    /// the request).
    ///
    /// # Errors
    ///
    /// The same terminal errors as [`Ticket::wait`].
    pub fn wait_deadline(&self, deadline: Instant) -> Result<Option<Completion>, WaitError> {
        if let Some(resolution) = self.cached() {
            return resolution.map(Some);
        }
        let now = Instant::now();
        if now >= deadline {
            return match self.rx.try_recv() {
                Ok(outcome) => self.resolve(outcome).map(Some),
                Err(mpsc::TryRecvError::Empty) => Ok(None),
                Err(mpsc::TryRecvError::Disconnected) => Err(self.resolve_canceled()),
            };
        }
        match self.rx.recv_timeout(deadline - now) {
            Ok(outcome) => self.resolve(outcome).map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.resolve_canceled()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_admission_expired_ticket_is_resolved_and_sticky() {
        let now = Instant::now();
        let expired = Expired { seq: 7, deadline: now, expired_at: now };
        let t = Ticket::expired(7, expired);
        assert_eq!(t.seq(), 7);
        assert_eq!(t.shard(), None, "never placed on a shard");
        assert_eq!(t.try_wait(), Err(WaitError::Expired(expired)));
        // Terminal state is cached: a second poll repeats it.
        assert_eq!(t.try_wait(), Err(WaitError::Expired(expired)));
        assert_eq!(t.wait_deadline(now), Err(WaitError::Expired(expired)));
        assert_eq!(t.wait(), Err(WaitError::Expired(expired)));
    }

    #[test]
    fn a_dropped_sender_cancels_the_ticket() {
        let (tx, rx) = mpsc::channel();
        let t = Ticket::pending(1, 0, rx);
        assert_eq!(t.shard(), Some(0));
        assert_eq!(t.try_wait(), Ok(None), "pending while the sender lives");
        drop(tx);
        assert_eq!(t.try_wait(), Err(WaitError::Canceled(Canceled)));
        assert_eq!(t.wait(), Err(WaitError::Canceled(Canceled)), "cancellation is sticky");
    }
}
