//! Per-shard health: the window → EWMA/streak → quarantine → probation →
//! readmission state machine behind continuous in-service validation.
//!
//! ## The state machine
//!
//! ```text
//!              window fails EWMA or streak test
//!   Healthy ───────────────────────────────────────▶ Quarantined
//!      ▲       · queued requests FAIL OVER to             │
//!      ▲         healthy shards (or wait, if none)        │ worker
//!      │       · in-flight batch still delivers           │ recharacterises
//!      │                                                  ▼
//!      │  `probation_windows` consecutive             Probation
//!      │  passing windows; readmission bumps the          │
//!      │  stream epoch and re-places any requests         │
//!      │  stranded on still-fenced peers                  │
//!      └──────────────────────────────────────────────────┘
//!               (a failing probation window goes back to
//!                recharacterisation, not to serving)
//!
//!   Orthogonal per-request transitions, at any shard state:
//!     queued ──deadline passes──▶ Expired   (expiry sweep, typed outcome)
//!     queued ──service aborts───▶ Canceled
//!     all shards fenced ─▶ admission follows DegradedPolicy
//!                          (FailFast reject / bounded Park)
//! ```
//!
//! While **Healthy**, every completed validation window folds into the
//! record: a pass-rate EWMA (`pass_ewma`) and a consecutive-failure counter.
//! The shard is quarantined when either trips its
//! [`HealthPolicy`] bound — the streak catches a hard fault within
//! `max_consecutive_failures` windows, the EWMA catches an intermittent one
//! that never fails often enough in a row.
//!
//! While **Quarantined/Probation**, the shard is out of placement and never
//! serves (while the service runs — a drain may serve requests stranded on
//! it as the documented last resort): at the quarantine trip its queued,
//! not-yet-generated requests are re-placed onto healthy shards by the
//! failover path, the worker recharacterises the module
//! (`QuacTrng::recharacterize` — Section 8's re-characterisation, on
//! demand), and then generates *probation* windows that are validated
//! without being served. Only `probation_windows` consecutive passing
//! windows readmit the shard; a single failure loops back to
//! recharacterisation. Readmission also re-places requests stranded on
//! still-fenced peers while every shard was quarantined.
//!
//! The record is a deterministic pure function of the window verdict
//! sequence, so every transition is unit-testable without threads.

/// Where a shard is in the validation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardState {
    /// In placement, serving, its served windows being validated.
    #[default]
    Healthy,
    /// Fenced off: out of placement, draining/awaiting requalification.
    Quarantined,
    /// Out of placement, generating probation windows after a
    /// recharacterisation.
    Probation,
}

/// The quarantine/readmission thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Weight of the newest window in the pass-rate EWMA.
    pub ewma_alpha: f64,
    /// Quarantine when the pass-rate EWMA falls below this.
    pub min_pass_ewma: f64,
    /// Quarantine after this many consecutive failing windows.
    pub max_consecutive_failures: u32,
    /// Consecutive passing probation windows required to readmit.
    pub probation_windows: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            ewma_alpha: 0.1,
            min_pass_ewma: 0.5,
            max_consecutive_failures: 3,
            probation_windows: 2,
        }
    }
}

/// One shard's validation health record.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Current lifecycle state.
    pub state: ShardState,
    /// EWMA of the per-window pass bit while healthy (starts at 1.0).
    pub pass_ewma: f64,
    /// Consecutive failing windows while healthy.
    pub consecutive_failures: u32,
    /// Served windows validated while healthy (lifetime).
    pub windows_validated: u64,
    /// Served windows that failed the battery while healthy (lifetime).
    pub windows_failed: u64,
    /// Times this shard was quarantined.
    pub quarantines: u64,
    /// Times this shard was readmitted after probation.
    pub readmissions: u64,
    /// Consecutive passing probation windows in the current probation run.
    pub probation_streak: u32,
}

impl Default for ShardHealth {
    fn default() -> Self {
        ShardHealth {
            state: ShardState::Healthy,
            pass_ewma: 1.0,
            consecutive_failures: 0,
            windows_validated: 0,
            windows_failed: 0,
            quarantines: 0,
            readmissions: 0,
            probation_streak: 0,
        }
    }
}

impl ShardHealth {
    /// A fresh, healthy record.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while the shard may receive placements.
    pub fn is_serving(&self) -> bool {
        self.state == ShardState::Healthy
    }

    /// Folds one served-window verdict into a healthy shard's record.
    /// Returns `true` when this window crosses a [`HealthPolicy`] bound and
    /// the shard must be quarantined (the transition is applied here).
    ///
    /// # Panics
    ///
    /// Panics if called while not [`ShardState::Healthy`] — served windows
    /// of a fenced-off shard are stale and must be discarded by the caller.
    pub fn record_window(&mut self, pass: bool, policy: &HealthPolicy) -> bool {
        assert_eq!(self.state, ShardState::Healthy, "only healthy shards fold served windows");
        self.windows_validated += 1;
        let alpha = policy.ewma_alpha.clamp(0.0, 1.0);
        self.pass_ewma = (1.0 - alpha) * self.pass_ewma + alpha * f64::from(u8::from(pass));
        if pass {
            self.consecutive_failures = 0;
        } else {
            self.windows_failed += 1;
            self.consecutive_failures += 1;
        }
        let quarantine = self.consecutive_failures >= policy.max_consecutive_failures.max(1)
            || self.pass_ewma < policy.min_pass_ewma;
        if quarantine {
            self.state = ShardState::Quarantined;
            self.quarantines += 1;
        }
        quarantine
    }

    /// Quarantines a healthy shard directly, outside the windowed
    /// EWMA/streak rule — the path the cross-correlation monitor takes when
    /// an *inter-shard* statistic (not this shard's own windows) convicts
    /// it of a common-mode fault. No-op unless currently serving.
    pub fn force_quarantine(&mut self) {
        if self.state == ShardState::Healthy {
            self.state = ShardState::Quarantined;
            self.quarantines += 1;
        }
    }

    /// Marks the start of a probation run (after a recharacterisation).
    pub fn begin_probation(&mut self) {
        self.state = ShardState::Probation;
        self.probation_streak = 0;
    }

    /// Folds one probation-window verdict. Returns `true` when the streak
    /// reaches [`HealthPolicy::probation_windows`] and the shard is
    /// readmitted (the record is reset to a serving state here); on a
    /// failure the streak resets and the state drops back to
    /// [`ShardState::Quarantined`] — the marker that the next
    /// requalification round must recharacterise before new probation
    /// windows count (a shard still in `Probation` resumes its run without
    /// repeating the expensive sweep, e.g. after yielding to queued work).
    pub fn record_probation_window(&mut self, pass: bool, policy: &HealthPolicy) -> bool {
        debug_assert_eq!(self.state, ShardState::Probation);
        if !pass {
            self.probation_streak = 0;
            self.state = ShardState::Quarantined;
            return false;
        }
        self.probation_streak += 1;
        if self.probation_streak >= policy.probation_windows.max(1) {
            self.state = ShardState::Healthy;
            self.pass_ewma = 1.0;
            self.consecutive_failures = 0;
            self.probation_streak = 0;
            self.readmissions += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            ewma_alpha: 0.25,
            min_pass_ewma: 0.5,
            max_consecutive_failures: 3,
            probation_windows: 2,
        }
    }

    #[test]
    fn default_state_is_healthy_and_serving() {
        assert_eq!(ShardState::default(), ShardState::Healthy);
        assert!(ShardHealth::new().is_serving());
    }

    #[test]
    fn consecutive_failures_quarantine_at_the_bound() {
        let mut h = ShardHealth::new();
        let p = policy();
        assert!(!h.record_window(false, &p));
        assert!(!h.record_window(false, &p));
        assert!(h.record_window(false, &p), "third consecutive failure quarantines");
        assert_eq!(h.state, ShardState::Quarantined);
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.windows_validated, 3);
        assert_eq!(h.windows_failed, 3);
    }

    #[test]
    fn passing_windows_reset_the_streak() {
        // EWMA bound disabled: this test isolates the streak counter (a
        // 50% failure rate would rightly trip the default EWMA bound).
        let mut h = ShardHealth::new();
        let p = HealthPolicy { min_pass_ewma: 0.0, ..policy() };
        for _ in 0..10 {
            assert!(!h.record_window(false, &p));
            assert!(!h.record_window(false, &p));
            assert!(!h.record_window(true, &p), "a pass resets the streak before the bound");
            assert_eq!(h.consecutive_failures, 0);
        }
        assert_eq!(h.state, ShardState::Healthy);
        assert_eq!(h.windows_failed, 20);
    }

    #[test]
    fn ewma_quarantines_intermittent_failures_the_streak_misses() {
        // Alternate fail/fail/pass: the streak never reaches 3, but the
        // pass EWMA decays toward 1/3 < 0.5 and trips the bound.
        let mut h = ShardHealth::new();
        let p = policy();
        let mut quarantined = false;
        for i in 0..60 {
            let pass = i % 3 == 2;
            if h.record_window(pass, &p) {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "EWMA bound must catch a 2/3 failure rate");
        assert_eq!(h.state, ShardState::Quarantined);
    }

    #[test]
    fn ewma_tracks_the_pass_rate() {
        let mut h = ShardHealth::new();
        // Both quarantine bounds disabled: this test only tracks the EWMA.
        let p = HealthPolicy {
            min_pass_ewma: 0.0,
            max_consecutive_failures: u32::MAX,
            ..policy()
        };
        for _ in 0..200 {
            h.record_window(true, &p);
        }
        assert!((h.pass_ewma - 1.0).abs() < 1e-9);
        for _ in 0..200 {
            h.record_window(false, &p);
        }
        assert!(h.pass_ewma < 1e-9, "ewma {}", h.pass_ewma);
        assert_eq!(h.state, ShardState::Healthy, "both bounds were disabled");
    }

    #[test]
    fn probation_requires_a_consecutive_streak() {
        let mut h = ShardHealth::new();
        let p = policy();
        for _ in 0..3 {
            h.record_window(false, &p);
        }
        assert_eq!(h.state, ShardState::Quarantined);
        h.begin_probation();
        assert_eq!(h.state, ShardState::Probation);
        assert!(!h.record_probation_window(true, &p));
        // A failure resets the streak and drops back to Quarantined — the
        // caller must recharacterise before probation resumes.
        assert!(!h.record_probation_window(false, &p));
        assert_eq!(h.probation_streak, 0);
        assert_eq!(h.state, ShardState::Quarantined);
        h.begin_probation();
        assert!(!h.record_probation_window(true, &p));
        assert!(h.record_probation_window(true, &p), "two consecutive passes readmit");
        assert_eq!(h.state, ShardState::Healthy);
        assert_eq!(h.readmissions, 1);
        assert!((h.pass_ewma - 1.0).abs() < 1e-12, "readmission resets the EWMA");
        assert!(h.is_serving());
    }

    #[test]
    #[should_panic(expected = "only healthy shards")]
    fn served_windows_of_a_quarantined_shard_are_rejected() {
        let mut h = ShardHealth::new();
        let p = policy();
        for _ in 0..3 {
            h.record_window(false, &p);
        }
        h.record_window(true, &p);
    }

    #[test]
    fn degenerate_policy_bounds_are_clamped() {
        let mut h = ShardHealth::new();
        let p = HealthPolicy {
            max_consecutive_failures: 0,
            probation_windows: 0,
            ..policy()
        };
        assert!(h.record_window(false, &p), "a zero streak bound acts as 1");
        h.begin_probation();
        assert!(h.record_probation_window(true, &p), "a zero probation run acts as 1");
    }
}
