//! Control plane: the policy seams ([`AdmissionPolicy`], [`RequalifyPolicy`],
//! plus [`PlacementPolicy`] in
//! [`crate::placement`]) and the orchestration loops that steer membership —
//! the validator folding verdicts into [`ShardHealth`], quarantine failover,
//! requalification, and the deadline-expiry sweep.
//!
//! Everything here decides *which* shard serves and *whether* a request is
//! still worth serving; none of it generates a byte. The data plane — queue,
//! worker batch loop, pacing, tap, delivery — lives in `crate::worker` and
//! [`crate::queue`], and the two sides meet only through the service's one
//! state lock, which is what keeps every control decision a pure function of
//! observable state and the replay-determinism contract intact.

use crate::correlation::CorrelationMonitor;
use crate::health::{ShardHealth, ShardState};
use crate::placement::{LeastLoaded, PlacementPolicy, TieredPlacement};
use crate::request::{ClientId, RngRequest};
use crate::state::{Lifecycle, RngServiceConfig, Shared, State};
use crate::ticket::{Expired, ExpiryStage, Outcome};
use crate::validate::{StreamValidator, TapChunk};
use qt_dram_core::BitVec;
use quac_trng::EntropyBackend;
use std::collections::HashMap;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// What admission does while *every* shard is quarantined (the service is
/// degraded: nothing can be placed, and parking submitters indefinitely
/// would look like a deadlock).
///
/// Requests accepted *before* the last shard tripped stay queued either way:
/// they are served at the next readmission, expired by their deadlines, or
/// drained at shutdown — the policy only governs new admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Reject immediately with
    /// [`SubmitError::Degraded`](crate::SubmitError::Degraded) — the
    /// brownout is visible to clients the moment it starts, and no caller
    /// ever parks on a service that may never recover.
    #[default]
    FailFast,
    /// Park blocking submissions up to `max_wait` for a readmission, then
    /// reject with [`SubmitError::Degraded`](crate::SubmitError::Degraded).
    /// A parked submission whose own request deadline is earlier gives up at
    /// that deadline instead. Non-blocking `try_submit` never parks and
    /// rejects immediately under either policy.
    Park {
        /// Longest a blocking submission waits for a shard to be readmitted.
        max_wait: Duration,
    },
}

/// The degraded-admission seam of the control plane: what a *blocking*
/// submission does when it finds every shard quarantined.
pub trait AdmissionPolicy: std::fmt::Debug + Send + Sync {
    /// `None` rejects the submission now (fail-fast); `Some(bound)` parks it
    /// until `bound` waiting for a readmission, then rejects. The service
    /// pins the bound at the submission's *first* degraded observation (so
    /// repeated park/wake rounds share one bound) and additionally caps it
    /// by the request's own deadline when that is earlier.
    fn degraded_park_bound(&self, now: Instant) -> Option<Instant>;
}

impl AdmissionPolicy for DegradedPolicy {
    fn degraded_park_bound(&self, now: Instant) -> Option<Instant> {
        match self {
            DegradedPolicy::FailFast => None,
            DegradedPolicy::Park { max_wait } => Some(now + *max_wait),
        }
    }
}

/// The requalification seam of the control plane: how a quarantined shard's
/// worker paces its way back to service.
pub trait RequalifyPolicy: std::fmt::Debug + Send + Sync {
    /// Whether the next requalification round must recharacterise the module
    /// before probation windows count, given the shard's current state.
    fn needs_recharacterization(&self, state: ShardState) -> bool;
    /// Backoff between requalification attempts after a failed probation
    /// window (a permanently faulty shard cycles instead of pegging a core).
    fn retry_backoff(&self) -> Duration;
}

/// The stock requalification policy: recharacterise from the `Quarantined`
/// state (fresh quarantine, or a failed probation window dropped back to
/// it); a shard still in `Probation` — requalification yielded to queued
/// work between windows — resumes its run instead of repeating the expensive
/// sweep, so steady fallback traffic cannot defer readmission indefinitely.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecharacterizeOnQuarantine;

impl RequalifyPolicy for RecharacterizeOnQuarantine {
    fn needs_recharacterization(&self, state: ShardState) -> bool {
        state != ShardState::Probation
    }

    fn retry_backoff(&self) -> Duration {
        Duration::from_millis(50)
    }
}

/// The per-tenant QoS seam of the control plane: whether one client may
/// submit `len` more bytes *right now*. Layered in front of the priority
/// bands and the fairness window — those schedule admitted work fairly; the
/// QoS policy decides what gets admitted at all, so one greedy tenant cannot
/// monopolise the in-flight budget before scheduling even starts.
///
/// A rejection is a typed policy outcome
/// ([`SubmitError::RateLimited`](crate::SubmitError::RateLimited)), not
/// backpressure: blocking submission does not park on it.
pub trait QosPolicy: std::fmt::Debug + Send + Sync {
    /// Charges `len` bytes against `client`'s allowance at `now`. `Ok(())`
    /// admits (the charge is consumed); `Err(retry_after)` rejects with the
    /// policy's estimate of when the same request could be covered
    /// ([`Duration::ZERO`] when it never can be).
    fn try_charge(&self, client: ClientId, len: usize, now: Instant) -> Result<(), Duration>;
}

/// The default QoS policy: every submission is admitted (rate limiting
/// opt-in via [`TokenBucketQos`] in a custom [`ServicePolicies`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoQos;

impl QosPolicy for NoQos {
    fn try_charge(&self, _client: ClientId, _len: usize, _now: Instant) -> Result<(), Duration> {
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-tenant token-bucket rate limiting: each client owns a bucket holding
/// up to `burst_bytes` tokens that refills at `rate_bytes_per_sec`; a
/// submission consumes its length in tokens or is rejected with the refill
/// time it would need. Buckets start full, so a quiet client keeps its
/// burst.
///
/// `burst_bytes` must cover the largest request a client legitimately
/// makes: a request larger than the burst can never be covered and is
/// rejected with a zero `retry_after` (mirroring how
/// [`SubmitError::TooLarge`](crate::SubmitError::TooLarge) refuses what the
/// in-flight budget could never admit).
#[derive(Debug)]
pub struct TokenBucketQos {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    buckets: Mutex<HashMap<ClientId, Bucket>>,
}

impl TokenBucketQos {
    /// A bucket set refilling at `rate_bytes_per_sec` with capacity
    /// `burst_bytes` per client.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes_per_sec` is not finite and positive, or
    /// `burst_bytes` is zero.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: usize) -> Self {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "refill rate must be finite and positive, got {rate_bytes_per_sec}"
        );
        assert!(burst_bytes > 0, "burst must be non-zero");
        TokenBucketQos {
            rate_bytes_per_sec,
            burst_bytes: burst_bytes as f64,
            buckets: Mutex::new(HashMap::new()),
        }
    }
}

impl QosPolicy for TokenBucketQos {
    fn try_charge(&self, client: ClientId, len: usize, now: Instant) -> Result<(), Duration> {
        let need = len as f64;
        if need > self.burst_bytes {
            // Could never be covered: reject immediately rather than have
            // the client back off forever in refill-sized steps.
            return Err(Duration::ZERO);
        }
        let mut buckets = self.buckets.lock().expect("QoS buckets poisoned");
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: self.burst_bytes,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_bytes_per_sec).min(self.burst_bytes);
        bucket.last = now;
        if bucket.tokens >= need {
            bucket.tokens -= need;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (need - bucket.tokens) / self.rate_bytes_per_sec,
            ))
        }
    }
}

/// The control-plane policy set one service instance runs with, injected at
/// [`RngService::start_with_policies`](crate::RngService::start_with_policies).
/// [`RngService::start`](crate::RngService::start) uses
/// [`ServicePolicies::for_config`].
#[derive(Debug)]
pub struct ServicePolicies {
    /// Shard assignment at admission and at failover re-placement.
    pub placement: Box<dyn PlacementPolicy>,
    /// Blocking-admission behaviour while every shard is quarantined.
    pub admission: Box<dyn AdmissionPolicy>,
    /// Requalification pacing of quarantined shards.
    pub requalify: Box<dyn RequalifyPolicy>,
    /// Per-tenant admission rate limiting ([`NoQos`] by default).
    pub qos: Box<dyn QosPolicy>,
}

impl ServicePolicies {
    /// The stock policies: least-loaded placement, the config's
    /// [`DegradedPolicy`], [`RecharacterizeOnQuarantine`], and no rate
    /// limiting.
    pub fn for_config(cfg: &RngServiceConfig) -> Self {
        ServicePolicies {
            placement: Box::new(LeastLoaded),
            admission: Box::new(cfg.degraded),
            requalify: Box::new(RecharacterizeOnQuarantine),
            qos: Box::new(NoQos),
        }
    }

    /// The stock policies of a heterogeneous mesh
    /// ([`RngService::start_mesh`](crate::RngService::start_mesh)):
    /// [`TieredPlacement`] routing by backend kind and priority, the
    /// config's [`DegradedPolicy`], [`RecharacterizeOnQuarantine`], and no
    /// rate limiting.
    pub fn for_mesh(cfg: &RngServiceConfig) -> Self {
        ServicePolicies {
            placement: Box::new(TieredPlacement),
            admission: Box::new(cfg.degraded),
            requalify: Box::new(RecharacterizeOnQuarantine),
            qos: Box::new(NoQos),
        }
    }
}

/// What the requalification loop should do next, checked between its
/// expensive unlocked steps.
enum RequalifyGate {
    /// Keep requalifying.
    Continue,
    /// The service is draining and requests are still queued on this shard
    /// (stranded from a total-quarantine interval no readmission resolved):
    /// go back and serve them — shutdown's serve-everything-accepted
    /// contract outranks the fence, as the documented last resort.
    ServeQueue,
    /// The service is stopping.
    Stop,
}

fn requalify_gate(shared: &Shared, shard_idx: usize) -> RequalifyGate {
    let st = shared.state.lock().expect("service state poisoned");
    match st.lifecycle {
        Lifecycle::Aborting => RequalifyGate::Stop,
        Lifecycle::Draining if !st.shards[shard_idx].is_empty() => RequalifyGate::ServeQueue,
        Lifecycle::Draining => RequalifyGate::Stop,
        // While running, a fenced shard never serves — queued work here (it
        // exists only while no shard is healthy) waits for a readmission
        // failover, its deadline, or a drain.
        Lifecycle::Running => RequalifyGate::Continue,
    }
}

/// Requalifies a quarantined shard: recharacterise (when the
/// [`RequalifyPolicy`] says the state demands it), generate probation
/// windows that are graded but never served, and readmit after
/// [`HealthPolicy::probation_windows`](crate::health::HealthPolicy) pass in
/// a row; a failing window loops back to recharacterisation (after the
/// policy's backoff). Readmission re-places any requests stranded on
/// still-fenced peers (see [`failover_fenced_queues`]). Returns `false` only
/// when the service stopped mid-requalification (the worker exits); `true`
/// hands control back to the serving loop — during a drain, also to serve
/// requests stranded on this shard as the last resort.
pub(crate) fn requalify_shard(
    shared: &Shared,
    shard_idx: usize,
    trng: &mut dyn EntropyBackend,
    scratch: &mut Vec<u8>,
) -> bool {
    let vcfg = &shared.cfg.validation;
    let window_bytes = vcfg.window_bits / 8;
    loop {
        match requalify_gate(shared, shard_idx) {
            RequalifyGate::Stop => return false,
            RequalifyGate::ServeQueue => return true,
            RequalifyGate::Continue => {}
        }
        let needs_recharacterization = {
            let st = shared.state.lock().expect("service state poisoned");
            shared
                .policies
                .requalify
                .needs_recharacterization(st.health[shard_idx].state)
        };
        if needs_recharacterization {
            // The sweep runs unlocked, so healthy shards keep serving.
            trng.recharacterize(&vcfg.recharacterization);
            let mut st = shared.state.lock().expect("service state poisoned");
            st.health[shard_idx].begin_probation();
            st.stats.validation.recharacterizations += 1;
        }
        loop {
            match requalify_gate(shared, shard_idx) {
                RequalifyGate::Stop => return false,
                RequalifyGate::ServeQueue => return true,
                RequalifyGate::Continue => {}
            }
            scratch.resize(window_bytes, 0);
            trng.fill_bytes(scratch);
            let bits = BitVec::from_bytes(scratch, vcfg.window_bits);
            let pass = qt_nist_sts::run_all_tests(&bits)
                .iter()
                .all(|r| r.passes(vcfg.alpha));
            let mut st = shared.state.lock().expect("service state poisoned");
            st.stats.validation.probation_windows += 1;
            if st.health[shard_idx].record_probation_window(pass, &vcfg.policy) {
                st.stats.validation.readmissions += 1;
                // A new stream epoch: any tap chunk from before this point
                // (fenced-era bytes still queued at the validator) is stale
                // and must not grade the fresh record.
                st.shard_epoch[shard_idx] += 1;
                // With a healthy shard back, re-place any work stranded on
                // still-fenced peers during a total-quarantine interval.
                failover_fenced_queues(&mut st, &*shared.policies.placement);
                // Back in placement: wake submitters and peers.
                shared.work.notify_all();
                shared.space.notify_all();
                return true;
            }
            if !pass {
                break; // recharacterise again, after the backoff below
            }
        }
        // Backoff between requalification attempts. Waiting on the work
        // condvar keeps shutdown prompt.
        let st = shared.state.lock().expect("service state poisoned");
        if st.lifecycle == Lifecycle::Running {
            let _ = shared
                .work
                .wait_timeout(st, shared.policies.requalify.retry_backoff())
                .expect("service state poisoned");
        }
    }
}

/// The validator thread: drains tapped chunks, windows them per shard,
/// grades full windows with the word-parallel battery, and folds verdicts
/// into shard health — quarantining a shard the moment a bound trips.
pub(crate) fn validator_loop(shared: &Shared, rx: &mpsc::Receiver<TapChunk>, shard_count: usize) {
    let vcfg = &shared.cfg.validation;
    let mut validator = StreamValidator::new(shard_count, vcfg.window_bits);
    let mut monitor = vcfg
        .correlation
        .enabled
        .then(|| CorrelationMonitor::new(shard_count, vcfg.correlation));
    while let Ok(chunk) = rx.recv() {
        if !vcfg.lossless_tap {
            // Mirror of the worker-side increment: the occupancy estimate
            // lets lossy workers skip copies the full queue would drop.
            shared
                .tap_fill
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
        // Skip grading while aborting (but keep draining so lossless
        // workers never block on a dead validator), for fenced-off shards
        // (their tapped bytes predate the quarantine and are stale), and
        // for chunks from a previous stream epoch (fenced-era bytes that
        // sat in this queue across a readmission).
        let skip = {
            let st = shared.state.lock().expect("service state poisoned");
            st.lifecycle == Lifecycle::Aborting
                || !st.health[chunk.shard].is_serving()
                || st.shard_epoch[chunk.shard] != chunk.epoch
        };
        if skip {
            validator.reset_shard(chunk.shard);
            if let Some(monitor) = monitor.as_mut() {
                monitor.reset_shard(chunk.shard);
            }
            continue;
        }
        // Cross-correlation first: a common-mode conviction fences both
        // members of the pair, and the chunk's own battery grading is then
        // skipped (its shard just stopped serving).
        if let Some(monitor) = monitor.as_mut() {
            let outcome = monitor.ingest(chunk.shard, &chunk.bytes);
            if outcome.compared > 0 || !outcome.tripped.is_empty() {
                let mut st = shared.state.lock().expect("service state poisoned");
                st.stats.validation.correlation_windows += outcome.compared;
                for &(a, b) in &outcome.tripped {
                    st.stats.validation.correlation_trips += 1;
                    // Neither stream can be presumed sound: fence both and
                    // re-place their queued work, exactly like a windowed
                    // quarantine trip.
                    for shard in [a, b] {
                        if st.health[shard].is_serving() {
                            st.health[shard].force_quarantine();
                            st.stats.validation.quarantines += 1;
                            failover_shard_queue(&mut st, &*shared.policies.placement, shard);
                        }
                    }
                    shared.work.notify_all();
                    shared.space.notify_all();
                }
                drop(st);
                for (a, b) in outcome.tripped {
                    for shard in [a, b] {
                        validator.reset_shard(shard);
                        monitor.reset_shard(shard);
                    }
                }
            }
        }
        {
            // The correlation pass may have fenced this chunk's own shard.
            let st = shared.state.lock().expect("service state poisoned");
            if !st.health[chunk.shard].is_serving() {
                continue;
            }
        }
        let mut fenced = false;
        validator.ingest(&chunk, |report| {
            let mut st = shared.state.lock().expect("service state poisoned");
            if !st.health[chunk.shard].is_serving() {
                return; // quarantined by an earlier window of this push
            }
            let pass = report.passes(vcfg.alpha);
            let quarantine = st.health[chunk.shard].record_window(pass, &vcfg.policy);
            st.stats.validation.windows_validated += 1;
            if !pass {
                st.stats.validation.windows_failed += 1;
            }
            if quarantine {
                fenced = true;
                st.stats.validation.quarantines += 1;
                // Re-place the fenced shard's queued (not-yet-generated)
                // requests onto healthy shards: accepted work is not served
                // through a suspect generator. No-op when no shard is
                // healthy — the requests then wait for readmission, their
                // deadlines, or a drain.
                failover_shard_queue(&mut st, &*shared.policies.placement, chunk.shard);
                // Wake the fenced shard's worker (to requalify), the
                // failover targets (new work), and any parked submitter
                // (which must observe the degraded state).
                shared.work.notify_all();
                shared.space.notify_all();
            }
        });
        if fenced {
            // Whatever partial window followed the quarantine decision is
            // stale stream content.
            validator.reset_shard(chunk.shard);
        }
    }
}

/// Completes every queued request of `shard` whose deadline is at or before
/// `now` with a typed [`Expired`] outcome, releasing its budget and load.
/// Returns the bytes released (the caller notifies `space` when non-zero).
pub(crate) fn sweep_shard_expired(
    st: &mut State,
    shard: usize,
    now: Instant,
    scratch: &mut Vec<RngRequest>,
) -> usize {
    scratch.clear();
    st.shards[shard].remove_expired(now, scratch);
    let mut released = 0;
    for req in scratch.drain(..) {
        st.in_flight_bytes -= req.len;
        st.shard_load[shard] -= req.len;
        released += req.len;
        st.stats.expired_requests += 1;
        if let Some(tx) = st.senders.remove(&req.seq) {
            tx.send(Outcome::Expired(Expired {
                seq: req.seq,
                deadline: req.deadline.expect("expired requests carry a deadline"),
                expired_at: now,
                stage: ExpiryStage::Sweep,
            }));
        }
    }
    released
}

/// The expiry sweep thread: completes overdue queued requests on every shard
/// — including fenced and idle shards, whose workers never reach the
/// pop-time sweep — at most once per
/// [`expiry_sweep_interval`](RngServiceConfig::expiry_sweep_interval).
///
/// The sweeper waits on the dedicated `deadlines` condvar, signalled only by
/// deadline-carrying admissions and lifecycle changes: while no queued
/// request carries a deadline it parks indefinitely, so deadline-free load
/// never wakes it (it used to share the `work` condvar, which `admit`
/// notifies on *every* submission — a wake storm scanning all shards under
/// the state lock for nothing). While deadlines are queued, it rests a full
/// interval between scans, absorbing admission notifies without extra scans,
/// so a still-queued request lingers at most one interval past its deadline.
/// Exits when the service leaves `Running` (a drain serves the remaining
/// queue; an abort cancels it).
pub(crate) fn expiry_loop(shared: &Shared) {
    let mut scratch: Vec<RngRequest> = Vec::new();
    let mut st = shared.state.lock().expect("service state poisoned");
    loop {
        if st.lifecycle != Lifecycle::Running {
            return;
        }
        if st.queued_deadline_count() == 0 {
            st = shared.deadlines.wait(st).expect("service state poisoned");
            continue;
        }
        // Rest toward a fixed due instant: spurious and admission-storm
        // wakes re-wait for the remainder instead of rescanning early.
        let due = Instant::now() + shared.cfg.expiry_sweep_interval;
        loop {
            if st.lifecycle != Lifecycle::Running {
                return;
            }
            let now = Instant::now();
            if now >= due {
                break;
            }
            let (guard, _) = shared
                .deadlines
                .wait_timeout(st, due - now)
                .expect("service state poisoned");
            st = guard;
        }
        st.stats.expiry_sweeps += 1;
        let now = Instant::now();
        let mut released = 0;
        for shard in 0..st.shards.len() {
            released += sweep_shard_expired(&mut st, shard, now, &mut scratch);
        }
        if released > 0 {
            shared.space.notify_all();
        }
    }
}

/// Re-places the queued (not-yet-generated) requests of shard `from` onto
/// healthy shards via the placement policy, preserving their dispatch order.
/// The in-flight budget stays charged (the requests are still admitted);
/// only the per-shard load moves. No-op while no shard is healthy. Returns
/// how many requests moved.
pub(crate) fn failover_shard_queue(
    st: &mut State,
    placement: &dyn PlacementPolicy,
    from: usize,
) -> u64 {
    if st.shards[from].is_empty() || !st.health.iter().any(ShardHealth::is_serving) {
        return 0;
    }
    let mut moved: Vec<RngRequest> = Vec::new();
    st.shards[from].drain_ordered(&mut moved);
    let count = moved.len() as u64;
    for req in moved {
        // Re-placement consults the policy with the request's own priority,
        // so tier-aware failover sends latency-sensitive work to the fast
        // tier and bulk work to the throughput tier, deterministically.
        let target = st.place(placement, req.priority);
        st.shard_load[from] -= req.len;
        st.shard_load[target] += req.len;
        st.shards[target].push(req);
    }
    st.stats.failed_over_requests += count;
    count
}

/// Failover sweep at readmission: re-places every still-fenced shard's queue
/// (work stranded during a total-quarantine interval, when the trip-time
/// failover had no healthy target) onto the shards now serving.
pub(crate) fn failover_fenced_queues(st: &mut State, placement: &dyn PlacementPolicy) -> u64 {
    let mut total = 0;
    for shard in 0..st.shards.len() {
        if !st.health[shard].is_serving() {
            total += failover_shard_queue(st, placement, shard);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn stock_policies_match_the_config() {
        let cfg = RngServiceConfig {
            degraded: DegradedPolicy::Park {
                max_wait: Duration::from_millis(10),
            },
            ..RngServiceConfig::default()
        };
        let policies = ServicePolicies::for_config(&cfg);
        let now = Instant::now();
        let bound = policies.admission.degraded_park_bound(now);
        assert_eq!(bound, Some(now + Duration::from_millis(10)));
        let fail_fast = ServicePolicies::for_config(&RngServiceConfig::default());
        assert_eq!(fail_fast.admission.degraded_park_bound(now), None);
    }

    #[test]
    fn recharacterize_policy_skips_probation() {
        let p = RecharacterizeOnQuarantine;
        assert!(p.needs_recharacterization(crate::health::ShardState::Quarantined));
        assert!(!p.needs_recharacterization(crate::health::ShardState::Probation));
    }

    #[test]
    fn token_bucket_charges_refills_and_isolates_clients() {
        let qos = TokenBucketQos::new(1000.0, 100);
        let t0 = Instant::now();
        // A full bucket covers the burst exactly once.
        assert_eq!(qos.try_charge(ClientId(1), 100, t0), Ok(()));
        let retry = qos.try_charge(ClientId(1), 50, t0).unwrap_err();
        assert_eq!(retry, Duration::from_millis(50), "50 B short at 1000 B/s");
        // Another tenant's bucket is untouched by client 1's spend.
        assert_eq!(qos.try_charge(ClientId(2), 100, t0), Ok(()));
        // Refill is continuous: 60 ms later, 60 tokens are back.
        let t1 = t0 + Duration::from_millis(60);
        assert_eq!(qos.try_charge(ClientId(1), 50, t1), Ok(()));
        assert!(
            qos.try_charge(ClientId(1), 50, t1).is_err(),
            "only 10 tokens left"
        );
        // Refill caps at the burst: a long sleep does not bank extra.
        let t2 = t1 + Duration::from_secs(3600);
        assert_eq!(qos.try_charge(ClientId(1), 100, t2), Ok(()));
        assert!(qos.try_charge(ClientId(1), 1, t2).is_err());
    }

    #[test]
    fn token_bucket_rejects_over_burst_requests_outright() {
        let qos = TokenBucketQos::new(1e9, 64);
        assert_eq!(
            qos.try_charge(ClientId(0), 65, Instant::now()),
            Err(Duration::ZERO),
            "a request over the burst can never be covered"
        );
    }

    #[test]
    fn no_qos_admits_everything() {
        assert_eq!(
            NoQos.try_charge(ClientId(9), usize::MAX, Instant::now()),
            Ok(())
        );
    }
}
