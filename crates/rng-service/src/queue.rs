//! Per-shard request scheduling: priority bands, per-client round-robin, and
//! a bounded anti-starvation window.
//!
//! The scheduler is deliberately synchronous and self-contained — every
//! decision is a pure function of the push/pop call sequence — so the
//! fairness and ordering guarantees the concurrent service advertises can be
//! proven here with deterministic unit and property tests, independent of
//! thread timing.

use crate::request::{Priority, RngRequest};
use std::collections::VecDeque;

/// FIFO of one client's pending requests within a band.
#[derive(Debug)]
struct ClientQueue {
    client: crate::request::ClientId,
    requests: VecDeque<RngRequest>,
}

/// One priority band: a rotation of per-client FIFOs. Popping takes the
/// front client's oldest request and rotates that client to the back, so
/// clients inside a band share the band's capacity round-robin regardless of
/// how many requests each has queued.
#[derive(Debug, Default)]
struct Band {
    clients: VecDeque<ClientQueue>,
}

impl Band {
    fn push(&mut self, req: RngRequest) {
        if let Some(q) = self.clients.iter_mut().find(|q| q.client == req.client) {
            q.requests.push_back(req);
        } else {
            self.clients.push_back(ClientQueue {
                client: req.client,
                requests: VecDeque::from([req]),
            });
        }
    }

    fn pop(&mut self) -> Option<RngRequest> {
        let mut q = self.clients.pop_front()?;
        let req = q.requests.pop_front().expect("bands never hold empty client queues");
        if !q.requests.is_empty() {
            self.clients.push_back(q);
        }
        Some(req)
    }

    fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

/// The scheduler in front of one shard (channel).
///
/// Scheduling policy:
///
/// * **Priority** — [`Priority::High`] requests are preferred over
///   [`Priority::Normal`] ones.
/// * **Round-robin** — within a band, clients are served cyclically, one
///   request at a time, so a client queueing many requests cannot crowd out
///   its peers.
/// * **Fairness window** — after `fairness_window` consecutive high-priority
///   pops while normal work is waiting, one normal request is served. While
///   any normal request is queued, at most `fairness_window` high-priority
///   requests are dispatched before a normal one (the starvation bound the
///   integration tests rely on).
#[derive(Debug)]
pub struct ShardScheduler {
    fairness_window: u32,
    high: Band,
    normal: Band,
    high_streak: u32,
    queued_requests: usize,
    queued_bytes: usize,
    /// Queued requests carrying a deadline — lets the expiry sweep skip
    /// deadline-free schedulers without scanning them.
    queued_deadlines: usize,
}

impl ShardScheduler {
    /// Creates an empty scheduler. `fairness_window` is clamped to at least 1
    /// (a window of 0 would invert the bands' priorities).
    pub fn new(fairness_window: u32) -> Self {
        ShardScheduler {
            fairness_window: fairness_window.max(1),
            high: Band::default(),
            normal: Band::default(),
            high_streak: 0,
            queued_requests: 0,
            queued_bytes: 0,
            queued_deadlines: 0,
        }
    }

    /// Enqueues a request.
    pub fn push(&mut self, req: RngRequest) {
        self.queued_requests += 1;
        self.queued_bytes += req.len;
        if req.deadline.is_some() {
            self.queued_deadlines += 1;
        }
        match req.priority {
            Priority::High => self.high.push(req),
            Priority::Normal => self.normal.push(req),
        }
    }

    /// Dispatches the next request under the scheduling policy.
    pub fn pop(&mut self) -> Option<RngRequest> {
        let high_empty = self.high.is_empty();
        let normal_empty = self.normal.is_empty();
        if high_empty && normal_empty {
            return None;
        }
        let serve_normal =
            high_empty || (!normal_empty && self.high_streak >= self.fairness_window);
        let req = if serve_normal {
            self.high_streak = 0;
            self.normal.pop()
        } else if normal_empty {
            // Nothing is starving: this pop does not count against the
            // window, which restarts when normal work next arrives.
            self.high_streak = 0;
            self.high.pop()
        } else {
            self.high_streak += 1;
            self.high.pop()
        }
        .expect("selected band is non-empty");
        self.queued_requests -= 1;
        self.queued_bytes -= req.len;
        if req.deadline.is_some() {
            self.queued_deadlines -= 1;
        }
        Some(req)
    }

    /// Dispatches a coalesced batch: keeps popping until the batch holds at
    /// least `max_bytes` of requests, `max_requests` requests, or the queue
    /// empties — always at least one request if any is queued, so an
    /// over-budget request still makes progress. Popped requests are appended
    /// to `out` (not cleared), and the batch's total byte count is returned.
    pub fn pop_batch(
        &mut self,
        max_bytes: usize,
        max_requests: usize,
        out: &mut Vec<RngRequest>,
    ) -> usize {
        let mut bytes = 0;
        let mut taken = 0;
        while taken < max_requests.max(1) {
            if taken > 0 && bytes >= max_bytes {
                break;
            }
            match self.pop() {
                Some(req) => {
                    bytes += req.len;
                    taken += 1;
                    out.push(req);
                }
                None => break,
            }
        }
        bytes
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queued_requests
    }

    /// Returns `true` if no request is queued.
    pub fn is_empty(&self) -> bool {
        self.queued_requests == 0
    }

    /// Total bytes requested by all queued requests.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Queued requests carrying a deadline. The expiry sweep parks
    /// indefinitely while this is 0 on every shard, so deadline-free load
    /// never wakes it.
    pub fn queued_deadlines(&self) -> usize {
        self.queued_deadlines
    }

    /// Removes every queued request whose deadline is at or before `now` and
    /// appends them to `out`, returning how many were removed. Queue order,
    /// round-robin rotation, and the fairness streak of the surviving
    /// requests are untouched; the sweep is O(1) when no queued request
    /// carries a deadline (the common case).
    pub fn remove_expired(&mut self, now: std::time::Instant, out: &mut Vec<RngRequest>) -> usize {
        if self.queued_deadlines == 0 {
            return 0;
        }
        let before = out.len();
        for band in [&mut self.high, &mut self.normal] {
            for q in &mut band.clients {
                if q.requests.iter().any(|r| r.deadline.is_some_and(|d| d <= now)) {
                    let mut kept = VecDeque::with_capacity(q.requests.len());
                    for req in q.requests.drain(..) {
                        if req.deadline.is_some_and(|d| d <= now) {
                            out.push(req);
                        } else {
                            kept.push_back(req);
                        }
                    }
                    q.requests = kept;
                }
            }
            band.clients.retain(|q| !q.requests.is_empty());
        }
        let removed = out.len() - before;
        for req in &out[before..] {
            self.queued_requests -= 1;
            self.queued_bytes -= req.len;
            self.queued_deadlines -= 1;
        }
        removed
    }

    /// Drains every queued request, in dispatch order, into `out` — the
    /// failover path re-places a quarantined shard's queue onto healthy
    /// shards with this, so the re-placed requests keep the relative order
    /// the scheduler would have dispatched them in.
    pub fn drain_ordered(&mut self, out: &mut Vec<RngRequest>) -> usize {
        let before = out.len();
        while let Some(req) = self.pop() {
            out.push(req);
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use proptest::prelude::*;

    fn req(client: u32, priority: Priority, len: usize, seq: u64) -> RngRequest {
        RngRequest {
            client: ClientId(client),
            priority,
            len,
            seq,
            submitted_at: std::time::Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn single_client_is_fifo() {
        let mut s = ShardScheduler::new(4);
        for seq in 0..5 {
            s.push(req(1, Priority::Normal, 10, seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.seq).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
        assert_eq!(s.queued_bytes(), 0);
    }

    #[test]
    fn clients_in_a_band_are_served_round_robin() {
        let mut s = ShardScheduler::new(4);
        // Client 1 floods, clients 2 and 3 queue one request each.
        for seq in 0..4 {
            s.push(req(1, Priority::Normal, 1, seq));
        }
        s.push(req(2, Priority::Normal, 1, 10));
        s.push(req(3, Priority::Normal, 1, 11));
        let order: Vec<u32> = std::iter::from_fn(|| s.pop()).map(|r| r.client.0).collect();
        assert_eq!(order, vec![1, 2, 3, 1, 1, 1]);
    }

    #[test]
    fn high_priority_is_preferred_but_window_bounded() {
        let mut s = ShardScheduler::new(2);
        for seq in 0..6 {
            s.push(req(1, Priority::High, 1, seq));
        }
        s.push(req(2, Priority::Normal, 1, 100));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.seq).collect();
        // Two highs, then the parked normal, then the remaining highs.
        assert_eq!(order, vec![0, 1, 100, 2, 3, 4, 5]);
    }

    #[test]
    fn streak_resets_while_no_normal_work_waits() {
        let mut s = ShardScheduler::new(2);
        s.push(req(1, Priority::High, 1, 0));
        s.push(req(1, Priority::High, 1, 1));
        assert_eq!(s.pop().unwrap().seq, 0);
        assert_eq!(s.pop().unwrap().seq, 1);
        // The high streak ran with an empty normal band; a fresh normal
        // request must not preempt newly arriving high traffic early.
        s.push(req(2, Priority::Normal, 1, 100));
        s.push(req(1, Priority::High, 1, 2));
        s.push(req(1, Priority::High, 1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.seq).collect();
        assert_eq!(order, vec![2, 3, 100]);
    }

    #[test]
    fn pop_batch_respects_byte_and_request_limits() {
        let mut s = ShardScheduler::new(4);
        for seq in 0..10 {
            s.push(req(1, Priority::Normal, 100, seq));
        }
        let mut batch = Vec::new();
        let bytes = s.pop_batch(250, 8, &mut batch);
        // 100 + 100 < 250, third request crosses the threshold.
        assert_eq!(batch.len(), 3);
        assert_eq!(bytes, 300);
        batch.clear();
        let bytes = s.pop_batch(usize::MAX, 2, &mut batch);
        assert_eq!(batch.len(), 2);
        assert_eq!(bytes, 200);
        // An oversized request still dispatches alone.
        batch.clear();
        let mut s2 = ShardScheduler::new(4);
        s2.push(req(1, Priority::Normal, 9999, 0));
        assert_eq!(s2.pop_batch(10, 4, &mut batch), 9999);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn remove_expired_takes_only_overdue_requests_and_keeps_order() {
        use std::time::{Duration, Instant};
        let now = Instant::now();
        let soon = now + Duration::from_secs(3600);
        let mut s = ShardScheduler::new(4);
        let mut push = |client: u32, seq: u64, deadline: Option<Instant>| {
            let mut r = req(client, Priority::Normal, 10, seq);
            r.deadline = deadline;
            s.push(r);
        };
        push(1, 0, None);
        push(1, 1, Some(now)); // already due
        push(2, 2, Some(soon));
        push(2, 3, Some(now));
        let mut expired = Vec::new();
        assert_eq!(s.remove_expired(now, &mut expired), 2);
        let gone: Vec<u64> = expired.iter().map(|r| r.seq).collect();
        assert_eq!(gone, vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.queued_bytes(), 20);
        // Survivors still dispatch round-robin in their original order.
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|r| r.seq).collect();
        assert_eq!(order, vec![0, 2]);
        // With every deadline gone the sweep is a no-op again.
        assert_eq!(s.remove_expired(soon, &mut expired), 0);
    }

    #[test]
    fn drain_ordered_empties_the_scheduler_in_dispatch_order() {
        let mut s = ShardScheduler::new(2);
        for seq in 0..3 {
            s.push(req(1, Priority::High, 5, seq));
        }
        s.push(req(2, Priority::Normal, 5, 100));
        let mut reference = ShardScheduler::new(2);
        for seq in 0..3 {
            reference.push(req(1, Priority::High, 5, seq));
        }
        reference.push(req(2, Priority::Normal, 5, 100));
        let expected: Vec<u64> = std::iter::from_fn(|| reference.pop()).map(|r| r.seq).collect();
        let mut drained = Vec::new();
        assert_eq!(s.drain_ordered(&mut drained), 4);
        assert!(s.is_empty());
        assert_eq!(s.queued_bytes(), 0);
        let got: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_fairness_window_is_clamped() {
        let mut s = ShardScheduler::new(0);
        s.push(req(1, Priority::High, 1, 0));
        s.push(req(2, Priority::Normal, 1, 1));
        // Window 0 must not mean "normal first".
        assert_eq!(s.pop().unwrap().seq, 0);
        assert_eq!(s.pop().unwrap().seq, 1);
    }

    proptest! {
        /// The starvation bound: in any push/pop schedule, at most
        /// `fairness_window` high-priority requests are dispatched in a row
        /// while normal work is waiting. A shadow count of queued normal
        /// requests distinguishes "high preferred" from "nothing starving".
        #[test]
        fn prop_normal_requests_never_starve(
            ops in proptest::collection::vec((0u32..5, any::<bool>(), any::<bool>()), 1..300),
            window in 1u32..6,
        ) {
            let mut s = ShardScheduler::new(window);
            let mut seq = 0u64;
            let mut queued_normal = 0usize;
            let mut starved_streak = 0u32;
            for (client, high, is_push) in ops {
                if is_push {
                    let priority = if high { Priority::High } else { Priority::Normal };
                    s.push(req(client, priority, 1, seq));
                    seq += 1;
                    if priority == Priority::Normal {
                        queued_normal += 1;
                    }
                } else if let Some(r) = s.pop() {
                    match r.priority {
                        Priority::High if queued_normal > 0 => {
                            starved_streak += 1;
                            prop_assert!(
                                starved_streak <= window,
                                "{starved_streak} consecutive high pops with normal work \
                                 waiting (window {window})"
                            );
                        }
                        Priority::High => starved_streak = 0,
                        Priority::Normal => {
                            queued_normal -= 1;
                            starved_streak = 0;
                        }
                    }
                }
            }
        }

        /// Conservation: everything pushed is popped exactly once, and byte
        /// accounting matches.
        #[test]
        fn prop_push_pop_conserves_requests_and_bytes(
            lens in proptest::collection::vec((1usize..100, any::<bool>(), 0u32..4), 0..100),
        ) {
            let mut s = ShardScheduler::new(3);
            let mut total = 0usize;
            for (seq, (len, high, client)) in lens.iter().enumerate() {
                let p = if *high { Priority::High } else { Priority::Normal };
                s.push(req(*client, p, *len, seq as u64));
                total += len;
            }
            prop_assert_eq!(s.queued_bytes(), total);
            prop_assert_eq!(s.len(), lens.len());
            let mut seen = std::collections::HashSet::new();
            let mut popped_bytes = 0usize;
            while let Some(r) = s.pop() {
                prop_assert!(seen.insert(r.seq), "request {} dispatched twice", r.seq);
                popped_bytes += r.len;
            }
            prop_assert_eq!(seen.len(), lens.len());
            prop_assert_eq!(popped_bytes, total);
            prop_assert!(s.is_empty());
        }
    }

    /// A direct, deterministic check of the starvation bound that the
    /// probabilistic test above only approximates: under a continuous flood
    /// of high-priority requests, a queued normal request is dispatched after
    /// at most `fairness_window` high pops.
    #[test]
    fn starvation_bound_under_continuous_high_flood() {
        for window in 1..6u32 {
            let mut s = ShardScheduler::new(window);
            s.push(req(9, Priority::Normal, 1, 1_000));
            let mut highs_before_normal = 0;
            let mut seq = 0;
            loop {
                // Keep the high band saturated, as an adversarial client would.
                s.push(req(1, Priority::High, 1, seq));
                s.push(req(2, Priority::High, 1, seq + 1));
                seq += 2;
                let r = s.pop().unwrap();
                if r.priority == Priority::Normal {
                    break;
                }
                highs_before_normal += 1;
                assert!(
                    highs_before_normal <= window,
                    "window {window}: {highs_before_normal} highs before the normal request"
                );
            }
            assert_eq!(highs_before_normal, window);
        }
    }
}
