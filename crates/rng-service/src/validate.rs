//! Continuous in-service validation: the per-shard tap that grades served
//! bytes with the NIST SP 800-22 battery, off the delivery path.
//!
//! ## How the loop closes
//!
//! ```text
//!  worker (per shard)                        validator thread
//!  ──────────────────                        ────────────────
//!  generate batch ──▶ deliver completions    recv (shard, bytes)
//!        │                                      │ accumulate into that
//!        └── tap: copy batch bytes ───────────▶ │ shard's 50 kb window
//!            (try_send, bounded queue;          ▼
//!             never blocks delivery)         window full → word-parallel
//!                                            battery → pass/fail →
//!                                            ShardHealth::record_window
//!                                                  │ bound crossed
//!                                                  ▼
//!                                            quarantine: shard leaves
//!                                            placement; its queued requests
//!                                            FAIL OVER to healthy shards;
//!                                            its worker recharacterises,
//!                                            probations, readmits
//!                                            (see `health`)
//! ```
//!
//! Quarantine composes with the rest of the degraded-mode machinery like
//! this (the full state machine is in [`crate::health`]):
//!
//! ```text
//!   trip, ≥1 healthy shard │ queued requests re-placed least-loaded
//!                          │ (stats.failed_over_requests)
//!   trip, 0 healthy shards │ queue waits; new admissions follow
//!                          │ DegradedPolicy (FailFast / Park)
//!   readmission            │ epoch bump + stranded fenced queues re-placed
//!   deadline passes        │ expiry sweep completes the ticket as Expired
//!   drain (shutdown)       │ fenced shards may serve their own stranded
//!                          │ queue — the documented last resort
//! ```
//!
//! The tap is a **copy**, so validation never perturbs the served streams —
//! the bit-identical-reassembly determinism contract holds with validation
//! on or off. In the default lossy mode the tap queue is bounded and a full
//! queue skips the batch (counted in
//! [`ValidationStats::bytes_dropped`](crate::stats::ValidationStats)):
//! the word-parallel battery grades ~20 Mb/s per validator thread while a
//! shard can generate several times that, and sampled coverage that never
//! stalls delivery is the right trade for a production service. On a
//! core-constrained host, [`ValidationConfig::target_coverage`] further
//! budgets the validator's CPU share by byte-quota sampling (grading costs
//! several times generation per byte). Tests set
//! [`ValidationConfig::lossless_tap`] instead, which parks the worker —
//! including that batch's completions, delivered after the tap — until the
//! validator catches up, making window composition (and therefore every
//! quarantine decision) a deterministic function of the served streams at
//! the cost of coupling delivery latency to validation rate.
//!
//! Windows are graded per shard in stream order (the tap channel preserves
//! each worker's send order), so a shard's verdict sequence is exactly what
//! a serial validator reading its stream would produce.

use crate::health::HealthPolicy;
use qt_nist_sts::{Significance, WindowReport, WindowedBattery};
use quac_trng::characterize::CharacterizationConfig;

/// Tuning of the continuous-validation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationConfig {
    /// Master switch. Off by default: the service behaves exactly as the
    /// pre-validation service (no tap copies, no validator thread).
    pub enabled: bool,
    /// Bits per validation window (must be a whole number of bytes).
    /// Default 50 kb — the battery-bench window, ~2.5 ms to grade.
    pub window_bits: usize,
    /// Significance level windows are graded at (default: the paper's
    /// α = 0.001).
    pub alpha: Significance,
    /// Quarantine/readmission thresholds.
    pub policy: HealthPolicy,
    /// `false` (default): a full tap queue skips the batch and counts the
    /// bytes as dropped. `true`: the worker parks until the validator
    /// catches up — full coverage and deterministic window composition, at
    /// the cost of coupling delivery rate to validation rate.
    pub lossless_tap: bool,
    /// Capacity of the tap queue, in batches.
    pub tap_queue_batches: usize,
    /// Fraction of served bytes the lossy tap aims to grade (clamped to
    /// `[0, 1]`; ignored in lossless mode, which always grades everything).
    /// Default 1.0: tap whatever the queue admits. Grading costs several
    /// times more CPU per byte than generation in this simulation, so a
    /// core-constrained host budgets validation by sampling — e.g. 0.005
    /// keeps the validator's CPU share in the low single digits while still
    /// grading a window every few MB per shard; a host with spare cores can
    /// leave it at 1.0.
    pub target_coverage: f64,
    /// Characterisation configuration a quarantined shard requalifies with.
    pub recharacterization: CharacterizationConfig,
    /// Cross-correlation monitoring across shards (off by default). When
    /// enabled, the validator compares same-index windows of different
    /// shards and force-quarantines both members of a pair whose streams
    /// are measurably coupled — the common-mode fault individual-stream
    /// validation cannot see. See [`crate::correlation`].
    pub correlation: crate::correlation::CorrelationConfig,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            enabled: false,
            window_bits: 50_000,
            alpha: Significance::PAPER,
            policy: HealthPolicy::default(),
            lossless_tap: false,
            tap_queue_batches: 64,
            target_coverage: 1.0,
            recharacterization: CharacterizationConfig::fast(),
            correlation: crate::correlation::CorrelationConfig::default(),
        }
    }
}

/// The lossy tap's coverage budget: may this batch be tapped, given that
/// `taken` of `served` bytes (both *excluding* this batch) were tapped so
/// far and the target is `coverage` of the stream? Pure, so the quota rule
/// is unit-testable: admitting the batch must not push tapped bytes beyond
/// the budget earned by the stream served so far (batch included).
pub(crate) fn tap_quota_allows(taken: u64, served: u64, batch: u64, coverage: f64) -> bool {
    let coverage = coverage.clamp(0.0, 1.0);
    (taken + batch) as f64 <= coverage * (served + batch) as f64
}

impl ValidationConfig {
    /// Validation on with the default window/policy.
    pub fn enabled() -> Self {
        ValidationConfig { enabled: true, ..ValidationConfig::default() }
    }
}

/// One tapped delivery: a copy of the bytes one shard just served, tagged
/// with the shard's stream epoch at serving time (epochs bump at
/// readmission, so fenced-era bytes lingering in the tap queue can never
/// grade a freshly requalified shard).
#[derive(Debug)]
pub(crate) struct TapChunk {
    pub shard: usize,
    pub epoch: u64,
    pub bytes: Vec<u8>,
}

/// The validator thread's engine: one [`WindowedBattery`] per shard,
/// windows graded in arrival (= stream) order.
#[derive(Debug)]
pub(crate) struct StreamValidator {
    batteries: Vec<WindowedBattery>,
}

impl StreamValidator {
    pub fn new(shards: usize, window_bits: usize) -> Self {
        StreamValidator {
            batteries: (0..shards).map(|_| WindowedBattery::new(window_bits)).collect(),
        }
    }

    /// Accumulates a tapped chunk; calls `on_window` for every window it
    /// completes, in stream order.
    pub fn ingest(&mut self, chunk: &TapChunk, on_window: impl FnMut(WindowReport)) {
        self.batteries[chunk.shard].push(&chunk.bytes, on_window);
    }

    /// Discards a shard's partial window (its stream is discontinuous:
    /// quarantined, about to be recharacterised).
    pub fn reset_shard(&mut self, shard: usize) {
        self.batteries[shard].reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_nist_sts::Significance;

    #[test]
    fn default_is_disabled_and_sane() {
        let cfg = ValidationConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.window_bits % 8, 0);
        assert!(cfg.policy.max_consecutive_failures >= 1);
        assert!((cfg.target_coverage - 1.0).abs() < 1e-12);
        assert!(ValidationConfig::enabled().enabled);
    }

    #[test]
    fn tap_quota_tracks_the_coverage_target() {
        // Full coverage: every batch is within budget.
        assert!(tap_quota_allows(0, 0, 100, 1.0));
        assert!(tap_quota_allows(1000, 1000, 100, 1.0));
        // Zero coverage: nothing is.
        assert!(!tap_quota_allows(0, 0, 100, 0.0));
        // Half coverage: alternating admit/skip stays near the target.
        let mut taken = 0u64;
        let mut served = 0u64;
        let mut admitted = 0u64;
        for _ in 0..1000 {
            if tap_quota_allows(taken, served, 100, 0.5) {
                taken += 100;
                admitted += 1;
            }
            served += 100;
        }
        assert_eq!(admitted, 500);
        // Out-of-range coverage clamps instead of misbehaving.
        assert!(tap_quota_allows(0, 1000, 10, 7.5));
        assert!(!tap_quota_allows(0, 1000, 10, -1.0));
    }

    #[test]
    fn stream_validator_windows_per_shard_independently() {
        let mut v = StreamValidator::new(2, 8_000);
        let mut windows = Vec::new();
        // 999 bytes to shard 0: no window yet; 1000 to shard 1: one window.
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: vec![0xA5; 999] }, |w| windows.push((0, w.index)));
        assert!(windows.is_empty());
        v.ingest(&TapChunk { shard: 1, epoch: 0, bytes: vec![0xA5; 1000] }, |w| windows.push((1, w.index)));
        assert_eq!(windows, vec![(1, 0)]);
        // One more byte completes shard 0's window.
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: vec![0xA5; 1] }, |w| windows.push((0, w.index)));
        assert_eq!(windows, vec![(1, 0), (0, 0)]);
        // Reset drops shard 0's partial accumulation.
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: vec![0xA5; 999] }, |_| panic!("no window"));
        v.reset_shard(0);
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: vec![0xA5; 999] }, |_| panic!("still partial"));
        let mut later = Vec::new();
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: vec![0xA5; 1] }, |w| later.push(w.index));
        assert_eq!(later, vec![1], "window indices keep counting across resets");
    }

    #[test]
    fn constant_windows_fail_random_windows_pass() {
        let mut v = StreamValidator::new(1, 16_000);
        let mut verdicts = Vec::new();
        v.ingest(
            &TapChunk { shard: 0, epoch: 0, bytes: vec![0u8; 2000] },
            |w| verdicts.push(w.passes(Significance::PAPER)),
        );
        // A battery-grade "good" stream from the workspace PRNG.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let good: Vec<u8> = (0..2000).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect();
        v.ingest(&TapChunk { shard: 0, epoch: 0, bytes: good }, |w| verdicts.push(w.passes(Significance::PAPER)));
        assert_eq!(verdicts, vec![false, true]);
    }
}
