//! Cross-source mixer: combine two *independent* backend streams so the
//! output stays unpredictable unless **both** sources fail together.
//!
//! The construction is the classic two-stage conditioner:
//!
//! 1. **XOR-fold** — bitwise XOR of the two equal-length source streams.
//!    XOR of an adversarially known stream with an unpredictable one is
//!    still unpredictable, so the fold inherits the entropy of whichever
//!    source is sound.
//! 2. **SHA-256 2:1 conditioning** — each 64-byte folded block hashes to a
//!    32-byte digest (the paper's post-processing ratio, batched through
//!    the word-parallel `qt_crypto::batch` lanes), concentrating the
//!    folded entropy and breaking any residual structure.
//!
//! [`mix`] is the hot path; [`mix_reference`] is the frozen scalar twin
//! (per-block `Sha256::digest`), proptest-pinned bit-identical — the same
//! fast/reference discipline every generator in the workspace follows.
//! [`RngService::submit_mixed`](crate::RngService::submit_mixed) drives the
//! mixer end-to-end: it places one request on each of two serving shards
//! with *distinct* backend kinds and mixes their completions.

use crate::request::Completion;
use crate::ticket::{Ticket, WaitError};
use qt_crypto::batch::digest_many_into;
use qt_crypto::sha256::Sha256;

/// Bytes each source must contribute so [`mix`] can emit at least
/// `out_len` conditioned bytes: `2 · out_len`, rounded up to the 64-byte
/// conditioning block.
pub fn source_len(out_len: usize) -> usize {
    (2 * out_len).div_ceil(64).max(1) * 64
}

/// Bitwise XOR of two equal-length streams.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xor_fold(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor-fold needs equal-length sources");
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// XOR-fold then SHA-256 2:1 conditioning (the batched hot path). Emits
/// `a.len() / 2` bytes.
///
/// # Panics
///
/// Panics if the sources differ in length or the length is not a positive
/// multiple of the 64-byte conditioning block.
pub fn mix(a: &[u8], b: &[u8]) -> Vec<u8> {
    let folded = xor_fold(a, b);
    assert!(
        !folded.is_empty() && folded.len() % 64 == 0,
        "mixer input must be a positive multiple of 64 bytes, got {}",
        folded.len()
    );
    let blocks: Vec<&[u8]> = folded.chunks(64).collect();
    let mut digests = Vec::new();
    digest_many_into(&blocks, &mut digests);
    let mut out = Vec::with_capacity(folded.len() / 2);
    for digest in &digests {
        out.extend_from_slice(digest);
    }
    out
}

/// The frozen scalar twin of [`mix`]: per-block fold + one-message
/// [`Sha256::digest`]. Bit-identical to the hot path (the crypto batch
/// tests pin `digest_many` ≡ scalar digesting).
pub fn mix_reference(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor-fold needs equal-length sources");
    assert!(!a.is_empty() && a.len() % 64 == 0, "mixer input must be 64-byte blocks");
    let mut out = Vec::with_capacity(a.len() / 2);
    for (block_a, block_b) in a.chunks(64).zip(b.chunks(64)) {
        let folded: Vec<u8> = block_a.iter().zip(block_b).map(|(x, y)| x ^ y).collect();
        out.extend_from_slice(&Sha256::digest(&folded));
    }
    out
}

/// The receipt for a mixed submission: one [`Ticket`] per independent
/// source. Redeem with [`MixedTicket::wait`], which joins both completions
/// and returns the conditioned mix.
#[derive(Debug)]
pub struct MixedTicket {
    first: Ticket,
    second: Ticket,
    len: usize,
}

/// A served mixed request: the conditioned bytes plus both source
/// completions, so provenance (and the reference twin) stays checkable —
/// `mix_reference(&first.bytes, &second.bytes)` truncated to the requested
/// length reproduces `bytes` bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedCompletion {
    /// Completion of the first source (earlier backend kind in the fixed
    /// QUAC → D-RaNGe → retention order).
    pub first: Completion,
    /// Completion of the second source.
    pub second: Completion,
    /// The mixed, conditioned bytes — exactly the requested length.
    pub bytes: Vec<u8>,
}

impl MixedTicket {
    pub(crate) fn new(first: Ticket, second: Ticket, len: usize) -> Self {
        MixedTicket { first, second, len }
    }

    /// The shards the two halves were placed on at admission (failover may
    /// re-place them; the completions are authoritative).
    pub fn sources(&self) -> (Option<usize>, Option<usize>) {
        (self.first.shard(), self.second.shard())
    }

    /// Blocks until both halves resolve, then mixes and truncates to the
    /// requested length.
    ///
    /// # Errors
    ///
    /// The first terminal error of either half (see [`Ticket::wait`]).
    pub fn wait(self) -> Result<MixedCompletion, WaitError> {
        let first = self.first.wait()?;
        let second = self.second.wait()?;
        let mut bytes = mix(&first.bytes, &second.bytes);
        bytes.truncate(self.len);
        Ok(MixedCompletion { first, second, bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn source_len_covers_the_request_and_rounds_to_blocks() {
        for out_len in [0usize, 1, 31, 32, 33, 64, 100, 4096] {
            let src = source_len(out_len);
            assert_eq!(src % 64, 0);
            assert!(src >= 64);
            assert!(src / 2 >= out_len, "source {src} too small for {out_len}");
            assert!(src < 2 * out_len + 128, "source {src} wastes bytes for {out_len}");
        }
    }

    #[test]
    fn xor_fold_is_an_involution() {
        let a = vec![0xA5u8; 64];
        let b: Vec<u8> = (0..64u8).collect();
        let folded = xor_fold(&a, &b);
        assert_eq!(xor_fold(&folded, &b), a);
    }

    #[test]
    fn mix_halves_the_length_and_depends_on_both_sources() {
        let a = vec![0x11u8; 128];
        let b = vec![0x22u8; 128];
        let mixed = mix(&a, &b);
        assert_eq!(mixed.len(), 64);
        assert_ne!(mix(&a, &a), mixed, "changing one source must change the mix");
        // Order independence: XOR commutes, so the conditioned mix does too.
        assert_eq!(mix(&b, &a), mixed);
    }

    proptest! {
        /// Satellite pin: the batched hot path and the scalar reference
        /// twin agree bit for bit on arbitrary block-aligned sources.
        #[test]
        fn prop_mix_matches_the_scalar_reference(
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
            blocks in 1usize..9,
        ) {
            use rand::{Rng, SeedableRng};
            let gen = |seed: u64| -> Vec<u8> {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                (0..blocks * 64).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
            };
            let (a, b) = (gen(seed_a), gen(seed_b));
            prop_assert_eq!(mix(&a, &b), mix_reference(&a, &b));
        }
    }
}
