//! Cross-source mixer: combine two *independent* backend streams so the
//! output stays unpredictable unless **both** sources fail together.
//!
//! The construction is the classic two-stage conditioner:
//!
//! 1. **XOR-fold** — bitwise XOR of the two equal-length source streams.
//!    XOR of an adversarially known stream with an unpredictable one is
//!    still unpredictable, so the fold inherits the entropy of whichever
//!    source is sound.
//! 2. **SHA-256 2:1 conditioning** — each 64-byte folded block hashes to a
//!    32-byte digest (the paper's post-processing ratio, batched through
//!    the word-parallel `qt_crypto::batch` lanes), concentrating the
//!    folded entropy and breaking any residual structure.
//!
//! [`mix`] is the hot path; [`mix_reference`] is the frozen scalar twin
//! (per-block `Sha256::digest`), proptest-pinned bit-identical — the same
//! fast/reference discipline every generator in the workspace follows.
//! [`RngService::submit_mixed`](crate::RngService::submit_mixed) drives the
//! mixer end-to-end: it places one request on each of two serving shards
//! with *distinct* backend kinds and mixes their completions.

use crate::request::Completion;
use crate::state::Shared;
use crate::ticket::{Ticket, WaitError};
use qt_crypto::batch::digest_many_into;
use qt_crypto::sha256::Sha256;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Bytes each source must contribute so [`mix`] can emit at least
/// `out_len` conditioned bytes: `2 · out_len`, rounded up to the 64-byte
/// conditioning block.
pub fn source_len(out_len: usize) -> usize {
    (2 * out_len).div_ceil(64).max(1) * 64
}

/// Bitwise XOR of two equal-length streams.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xor_fold(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor-fold needs equal-length sources");
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// XOR-fold then SHA-256 2:1 conditioning (the batched hot path). Emits
/// `a.len() / 2` bytes.
///
/// # Panics
///
/// Panics if the sources differ in length or the length is not a positive
/// multiple of the 64-byte conditioning block.
pub fn mix(a: &[u8], b: &[u8]) -> Vec<u8> {
    let folded = xor_fold(a, b);
    assert!(
        !folded.is_empty() && folded.len() % 64 == 0,
        "mixer input must be a positive multiple of 64 bytes, got {}",
        folded.len()
    );
    let blocks: Vec<&[u8]> = folded.chunks(64).collect();
    let mut digests = Vec::new();
    digest_many_into(&blocks, &mut digests);
    let mut out = Vec::with_capacity(folded.len() / 2);
    for digest in &digests {
        out.extend_from_slice(digest);
    }
    out
}

/// The frozen scalar twin of [`mix`]: per-block fold + one-message
/// [`Sha256::digest`]. Bit-identical to the hot path (the crypto batch
/// tests pin `digest_many` ≡ scalar digesting).
pub fn mix_reference(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor-fold needs equal-length sources");
    assert!(
        !a.is_empty() && a.len() % 64 == 0,
        "mixer input must be 64-byte blocks"
    );
    let mut out = Vec::with_capacity(a.len() / 2);
    for (block_a, block_b) in a.chunks(64).zip(b.chunks(64)) {
        let folded: Vec<u8> = block_a.iter().zip(block_b).map(|(x, y)| x ^ y).collect();
        out.extend_from_slice(&Sha256::digest(&folded));
    }
    out
}

/// The receipt for a mixed submission: one [`Ticket`] per independent
/// source. Redeem with [`MixedTicket::wait`], poll with
/// [`MixedTicket::try_wait`], or bound the wait with
/// [`MixedTicket::wait_deadline`] — the same surface plain tickets offer.
/// Every variant **joins both halves** before reporting: on failure the
/// first error is returned, and a half that completed while its sibling
/// failed is recorded in
/// [`ServiceStats::mixed_halves_abandoned`](crate::ServiceStats::mixed_halves_abandoned)
/// (its bytes were generated and discarded) rather than vanishing silently.
#[derive(Debug)]
pub struct MixedTicket {
    first: Ticket,
    second: Ticket,
    len: usize,
    /// Back-reference for the abandoned-half counter.
    shared: Arc<Shared>,
    /// Ensures one mixed ticket bumps the counter at most once, however
    /// many poll variants observe the mixed-outcome failure.
    abandoned: OnceLock<()>,
}

/// A served mixed request: the conditioned bytes plus both source
/// completions, so provenance (and the reference twin) stays checkable —
/// `mix_reference(&first.bytes, &second.bytes)` truncated to the requested
/// length reproduces `bytes` bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedCompletion {
    /// Completion of the first source (earlier backend kind in the fixed
    /// QUAC → D-RaNGe → retention order).
    pub first: Completion,
    /// Completion of the second source.
    pub second: Completion,
    /// The mixed, conditioned bytes — exactly the requested length.
    pub bytes: Vec<u8>,
}

impl MixedTicket {
    pub(crate) fn new(first: Ticket, second: Ticket, len: usize, shared: Arc<Shared>) -> Self {
        MixedTicket {
            first,
            second,
            len,
            shared,
            abandoned: OnceLock::new(),
        }
    }

    /// The shards the two halves were placed on at admission (failover may
    /// re-place them; the completions are authoritative).
    pub fn sources(&self) -> (Option<usize>, Option<usize>) {
        (self.first.shard(), self.second.shard())
    }

    /// The two halves, for the async facade
    /// ([`AsyncMixedTicket`](crate::facade::AsyncMixedTicket)).
    pub(crate) fn halves(&self) -> (&Ticket, &Ticket) {
        (&self.first, &self.second)
    }

    /// Combines the two halves' terminal outcomes: both served → mix and
    /// truncate; one failed → the *first* half's error wins (admission
    /// order), and a sibling that *did* deliver bytes is recorded as an
    /// abandoned half — its entropy was drawn and discarded.
    pub(crate) fn finish(
        &self,
        first: Result<Completion, WaitError>,
        second: Result<Completion, WaitError>,
    ) -> Result<MixedCompletion, WaitError> {
        match (first, second) {
            (Ok(first), Ok(second)) => {
                let mut bytes = mix(&first.bytes, &second.bytes);
                bytes.truncate(self.len);
                Ok(MixedCompletion {
                    first,
                    second,
                    bytes,
                })
            }
            (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
                self.record_abandoned_half();
                Err(e)
            }
            // Both failed: nothing was generated, nothing abandoned. The
            // first half's error is reported either way.
            (Err(e), Err(_)) => Err(e),
        }
    }

    fn record_abandoned_half(&self) {
        // Terminal outcomes are sticky, so every poll variant that reaches
        // the mixed outcome sees the same abandonment — count it once.
        if self.abandoned.set(()).is_ok() {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.stats.mixed_halves_abandoned += 1;
        }
    }

    /// Blocks until **both** halves resolve, then mixes and truncates to
    /// the requested length.
    ///
    /// # Errors
    ///
    /// The first half's error if it failed, else the second's (see
    /// [`Ticket::wait`]). Both halves are always joined first: a half that
    /// completed while its sibling failed is counted in
    /// [`ServiceStats::mixed_halves_abandoned`](crate::ServiceStats::mixed_halves_abandoned),
    /// never silently dropped.
    pub fn wait(self) -> Result<MixedCompletion, WaitError> {
        let first = self.first.wait_ref();
        let second = self.second.wait_ref();
        self.finish(first, second)
    }

    /// Non-blocking poll: `Ok(Some)` once both halves have served,
    /// `Ok(None)` while either is still pending — a mixed ticket is
    /// terminal only when *both* halves are (even after one has already
    /// failed, the sibling's outcome decides whether a half was abandoned).
    ///
    /// # Errors
    ///
    /// As [`MixedTicket::wait`], once both halves are terminal.
    pub fn try_wait(&self) -> Result<Option<MixedCompletion>, WaitError> {
        let first = match self.first.try_wait() {
            Ok(None) => return Ok(None),
            Ok(Some(c)) => Ok(c),
            Err(e) => Err(e),
        };
        let second = match self.second.try_wait() {
            Ok(None) => return Ok(None),
            Ok(Some(c)) => Ok(c),
            Err(e) => Err(e),
        };
        self.finish(first, second).map(Some)
    }

    /// Blocks until both halves resolve or `deadline` passes: `Ok(Some)`
    /// with the mix, or `Ok(None)` if either half is still pending at the
    /// deadline (the halves stay queued — this bounds the *wait*, like
    /// [`Ticket::wait_deadline`]).
    ///
    /// # Errors
    ///
    /// As [`MixedTicket::wait`], once both halves are terminal.
    pub fn wait_deadline(&self, deadline: Instant) -> Result<Option<MixedCompletion>, WaitError> {
        let first = match self.first.wait_deadline(deadline) {
            Ok(None) => return Ok(None),
            Ok(Some(c)) => Ok(c),
            Err(e) => Err(e),
        };
        let second = match self.second.wait_deadline(deadline) {
            Ok(None) => return Ok(None),
            Ok(Some(c)) => Ok(c),
            Err(e) => Err(e),
        };
        self.finish(first, second).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ServicePolicies;
    use crate::request::ClientId;
    use crate::state::{Lifecycle, RngServiceConfig, State};
    use crate::stats::ServiceStats;
    use crate::ticket::{ticket_channel, Expired, ExpiryStage, Outcome};
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Condvar, Mutex};

    #[test]
    fn source_len_covers_the_request_and_rounds_to_blocks() {
        for out_len in [0usize, 1, 31, 32, 33, 64, 100, 4096] {
            let src = source_len(out_len);
            assert_eq!(src % 64, 0);
            assert!(src >= 64);
            assert!(src / 2 >= out_len, "source {src} too small for {out_len}");
            assert!(
                src < 2 * out_len + 128,
                "source {src} wastes bytes for {out_len}"
            );
        }
    }

    #[test]
    fn xor_fold_is_an_involution() {
        let a = vec![0xA5u8; 64];
        let b: Vec<u8> = (0..64u8).collect();
        let folded = xor_fold(&a, &b);
        assert_eq!(xor_fold(&folded, &b), a);
    }

    #[test]
    fn mix_halves_the_length_and_depends_on_both_sources() {
        let a = vec![0x11u8; 128];
        let b = vec![0x22u8; 128];
        let mixed = mix(&a, &b);
        assert_eq!(mixed.len(), 64);
        assert_ne!(
            mix(&a, &a),
            mixed,
            "changing one source must change the mix"
        );
        // Order independence: XOR commutes, so the conditioned mix does too.
        assert_eq!(mix(&b, &a), mixed);
    }

    /// A minimal [`Shared`] for ticket-level tests: no shards, no threads,
    /// just the stats the abandoned-half counter lands in.
    fn bare_shared() -> Arc<Shared> {
        let cfg = RngServiceConfig::default();
        Arc::new(Shared {
            policies: ServicePolicies::for_config(&cfg),
            cfg,
            tap_fill: AtomicUsize::new(0),
            state: Mutex::new(State {
                shards: Vec::new(),
                senders: HashMap::new(),
                in_flight_bytes: 0,
                shard_load: Vec::new(),
                health: Vec::new(),
                shard_epoch: Vec::new(),
                backend_kinds: Vec::new(),
                next_shard: 0,
                next_seq: 0,
                lifecycle: Lifecycle::Running,
                stats: ServiceStats::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            deadlines: Condvar::new(),
        })
    }

    fn served(seq: u64, shard: usize, len: usize) -> Completion {
        Completion {
            client: ClientId(0),
            seq,
            shard,
            epoch: 0,
            stream_offset: 0,
            fresh_bits: 0,
            backend: quac_trng::BackendKind::Quac,
            bytes: (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seq as u8))
                .collect(),
        }
    }

    fn expired(seq: u64) -> Outcome {
        Outcome::Expired(Expired {
            seq,
            deadline: Instant::now(),
            expired_at: Instant::now(),
            stage: ExpiryStage::Sweep,
        })
    }

    fn abandoned_count(shared: &Arc<Shared>) -> u64 {
        shared.state.lock().unwrap().stats.mixed_halves_abandoned
    }

    /// Regression (the original bug): `wait` returned the first half's
    /// error without joining the second half, silently dropping its bytes.
    /// Now the surviving half is joined and recorded as abandoned.
    #[test]
    fn wait_joins_both_halves_and_records_the_abandoned_one() {
        let shared = bare_shared();
        let (tx_a, a) = ticket_channel(1, 0);
        let (tx_b, b) = ticket_channel(2, 1);
        let mixed = MixedTicket::new(a, b, 32, Arc::clone(&shared));
        tx_a.send(expired(1));
        tx_b.send(Outcome::Served(served(2, 1, 64)));
        match mixed.wait() {
            Err(WaitError::Expired(e)) => assert_eq!(e.seq, 1, "the first half's error wins"),
            other => panic!("expected the first half's expiry, got {other:?}"),
        }
        assert_eq!(
            abandoned_count(&shared),
            1,
            "the served sibling was abandoned"
        );
    }

    /// The error priority is admission order, not resolution order: a
    /// served first half with a failed second half reports the second's
    /// error — and still counts the abandoned (first) half.
    #[test]
    fn second_half_failure_reports_its_error_and_abandons_the_first() {
        let shared = bare_shared();
        let (tx_a, a) = ticket_channel(3, 0);
        let (tx_b, b) = ticket_channel(4, 1);
        let mixed = MixedTicket::new(a, b, 32, Arc::clone(&shared));
        tx_a.send(Outcome::Served(served(3, 0, 64)));
        drop(tx_b); // cancels the second half
        assert_eq!(
            mixed.wait().unwrap_err(),
            WaitError::Canceled(crate::ticket::Canceled)
        );
        assert_eq!(abandoned_count(&shared), 1);
    }

    /// Both halves failing means nothing was generated: the first error is
    /// reported and no half is counted abandoned.
    #[test]
    fn double_failure_abandons_nothing() {
        let shared = bare_shared();
        let (tx_a, a) = ticket_channel(5, 0);
        let (tx_b, b) = ticket_channel(6, 1);
        let mixed = MixedTicket::new(a, b, 32, Arc::clone(&shared));
        tx_a.send(expired(5));
        drop(tx_b);
        match mixed.wait() {
            Err(WaitError::Expired(e)) => assert_eq!(e.seq, 5),
            other => panic!("expected the first half's expiry, got {other:?}"),
        }
        assert_eq!(
            abandoned_count(&shared),
            0,
            "nothing delivered, nothing abandoned"
        );
    }

    /// The polling surface: `try_wait` stays `Ok(None)` while *either* half
    /// is pending — even after the first has already failed — and the
    /// abandoned half is counted exactly once across repeated polls.
    #[test]
    fn try_wait_and_wait_deadline_join_both_halves_and_count_once() {
        let shared = bare_shared();
        let (tx_a, a) = ticket_channel(7, 0);
        let (tx_b, b) = ticket_channel(8, 1);
        let mixed = MixedTicket::new(a, b, 32, Arc::clone(&shared));
        assert!(matches!(mixed.try_wait(), Ok(None)), "both pending");
        tx_a.send(expired(7));
        assert!(
            matches!(mixed.try_wait(), Ok(None)),
            "a failed first half is not terminal while the second is pending"
        );
        assert!(
            matches!(
                mixed.wait_deadline(Instant::now() + std::time::Duration::from_millis(1)),
                Ok(None)
            ),
            "wait_deadline times out rather than dropping the pending half"
        );
        assert_eq!(
            abandoned_count(&shared),
            0,
            "no abandonment before the sibling resolves"
        );
        tx_b.send(Outcome::Served(served(8, 1, 64)));
        for _ in 0..3 {
            assert!(matches!(mixed.try_wait(), Err(WaitError::Expired(_))));
        }
        assert!(matches!(
            mixed.wait_deadline(Instant::now() + std::time::Duration::from_millis(1)),
            Err(WaitError::Expired(_))
        ));
        assert_eq!(
            abandoned_count(&shared),
            1,
            "one abandoned half, counted once"
        );
    }

    /// Both halves served: the mixed bytes are the reference mix truncated
    /// to the requested length, whichever wait variant redeems the ticket.
    #[test]
    fn served_halves_mix_to_the_reference_and_truncate() {
        let shared = bare_shared();
        let (tx_a, a) = ticket_channel(9, 0);
        let (tx_b, b) = ticket_channel(10, 1);
        let mixed = MixedTicket::new(a, b, 20, Arc::clone(&shared));
        let (first, second) = (served(9, 0, 64), served(10, 1, 64));
        tx_a.send(Outcome::Served(first.clone()));
        tx_b.send(Outcome::Served(second.clone()));
        let out = mixed.wait().expect("both halves served");
        let mut expected = mix_reference(&first.bytes, &second.bytes);
        expected.truncate(20);
        assert_eq!(out.bytes, expected);
        assert_eq!(out.first, first);
        assert_eq!(out.second, second);
        assert_eq!(abandoned_count(&shared), 0);
    }

    proptest! {
        /// Satellite pin: the batched hot path and the scalar reference
        /// twin agree bit for bit on arbitrary block-aligned sources.
        #[test]
        fn prop_mix_matches_the_scalar_reference(
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
            blocks in 1usize..9,
        ) {
            use rand::{Rng, SeedableRng};
            let gen = |seed: u64| -> Vec<u8> {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                (0..blocks * 64).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
            };
            let (a, b) = (gen(seed_a), gen(seed_b));
            prop_assert_eq!(mix(&a, &b), mix_reference(&a, &b));
        }
    }
}
