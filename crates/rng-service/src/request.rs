//! Request, completion, and error types of the RNG service.

use std::fmt;

/// Identifies one client (application) of the RNG service. The scheduler
/// round-robins between clients of the same priority, so the id is part of
/// the fairness contract, not just a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Scheduling priority of a request (DR-STRaNGe's RNG-aware scheduler
/// distinguishes latency-critical RNG consumers from bulk ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Served first, subject to the anti-starvation fairness window.
    High,
    /// Served round-robin whenever no `High` request is eligible, and at
    /// least once per fairness window under sustained `High` load.
    #[default]
    Normal,
}

/// One queued random-byte request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngRequest {
    /// The requesting client.
    pub client: ClientId,
    /// Scheduling priority.
    pub priority: Priority,
    /// Number of random bytes requested.
    pub len: usize,
    /// Service-wide submission sequence number (assigned by the service;
    /// ties completions back to submission order).
    pub seq: u64,
    /// When the request was admitted — the start of the latency the
    /// delivery path records into
    /// [`ServiceStats::latency_us`](crate::ServiceStats::latency_us).
    pub submitted_at: std::time::Instant,
    /// Optional completion deadline. A request still *queued* (not yet
    /// popped into a generation batch) when its deadline passes is completed
    /// with a typed [`Expired`](crate::Expired) outcome by the expiry sweep instead of
    /// leaving its client parked; a request whose generation has already
    /// started is committed and delivered (possibly late — the slack
    /// histogram records 0 for it).
    pub deadline: Option<std::time::Instant>,
}

/// A served request: the random bytes plus enough provenance to reconstruct
/// exactly where they came from in the per-shard deterministic stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The client that requested the bytes.
    pub client: ClientId,
    /// Submission sequence number of the request.
    pub seq: u64,
    /// The shard (channel) that generated the bytes.
    pub shard: usize,
    /// The shard's stream epoch. Epoch 0 is the seed-determined stream; a
    /// quarantine→recharacterisation→readmission cycle restarts the shard's
    /// stream and bumps the epoch, so offsets are only comparable within
    /// one `(shard, epoch)` pair.
    pub epoch: u64,
    /// Byte offset of this chunk within the shard's deterministic output
    /// stream *for this epoch*: a shard's completions with equal `epoch`,
    /// sorted by this offset, concatenate to a contiguous prefix of that
    /// epoch's stream — for epoch 0, the stream an identically-seeded
    /// serial `QuacTrng` emits (a shard that is never quarantined stays in
    /// epoch 0 forever).
    pub stream_offset: u64,
    /// Raw fresh entropy bits this completion is backed by, attributed from
    /// the serving shard's [`EntropyLedger`](crate::EntropyLedger):
    /// the worker divides each batch's banked fresh-bit draw across the
    /// requests it served, pro-rata by length, never attributing the same
    /// bit twice. The per-shard ledger invariant — the sum of `fresh_bits`
    /// over a shard's completions never exceeds the fresh bits its ledger
    /// shows drawn — is what the typed [`contract`](crate::contract)
    /// responses enforce their MUST-consume-≥N clause against.
    pub fresh_bits: u64,
    /// The entropy-backend kind that generated the bytes — `Quac` for a
    /// homogeneous service, and the serving tier for a mesh.
    pub backend: quac_trng::BackendKind,
    /// The random bytes.
    pub bytes: Vec<u8>,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting the request would exceed the in-flight byte budget right
    /// now (backpressure). Blocking submission parks instead.
    Saturated {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently in flight (queued + being generated).
        in_flight: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The request alone exceeds the in-flight byte budget and could never
    /// be admitted; blocking submission refuses it too (it would deadlock).
    TooLarge {
        /// Bytes requested.
        requested: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The request was for zero bytes.
    Empty,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// Every shard is quarantined and the configured
    /// [`DegradedPolicy`](crate::DegradedPolicy) gave up on admission:
    /// immediately under `FailFast` (and always for `try_submit`), or after
    /// the parking bound elapsed without a readmission under `Park`.
    Degraded {
        /// Number of shards, all of which are currently out of placement.
        quarantined: usize,
    },
    /// A mixed submission
    /// ([`submit_mixed`](crate::RngService::submit_mixed)) needs two serving
    /// shards with *distinct* backend kinds, and fewer kinds are currently
    /// serving — a mesh degraded to a single tier still serves plain
    /// submissions but cannot vouch for multi-source independence.
    NoIndependentSources {
        /// Distinct backend kinds with at least one serving shard.
        serving_kinds: usize,
    },
    /// The configured [`QosPolicy`](crate::QosPolicy) rejected the
    /// submission: the client's token bucket cannot cover the request right
    /// now. A policy rejection, not backpressure — blocking submission does
    /// *not* park on it (parking would let one greedy client occupy
    /// submitter threads instead of being shed).
    RateLimited {
        /// The rate-limited client.
        client: ClientId,
        /// The policy's estimate of how long until the bucket could cover
        /// the same request ([`Duration::ZERO`](std::time::Duration::ZERO)
        /// if the request exceeds the burst and can never be covered).
        retry_after: std::time::Duration,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated { requested, in_flight, budget } => write!(
                f,
                "queue saturated: {requested} B requested with {in_flight}/{budget} B in flight"
            ),
            SubmitError::TooLarge { requested, budget } => {
                write!(f, "request of {requested} B exceeds the {budget} B in-flight budget")
            }
            SubmitError::Empty => write!(f, "zero-byte request"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Degraded { quarantined } => {
                write!(f, "service degraded: all {quarantined} shards are quarantined")
            }
            SubmitError::NoIndependentSources { serving_kinds } => write!(
                f,
                "mixed submission needs two distinct serving backend kinds, only {serving_kinds} serving"
            ),
            SubmitError::RateLimited { client, retry_after } => write!(
                f,
                "{client} rate-limited by the QoS policy; retry in {} µs",
                retry_after.as_micros()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}
