//! The DDR4 module population characterised by the paper (Appendix A,
//! Table 3), and device-profile construction.
//!
//! Each entry records the module's organisation and the paper's measured
//! average / maximum segment entropy. A [`ModuleProfile`] can be turned into
//! a [`ModuleVariation`] whose entropy scale is calibrated so the simulated
//! module reproduces the reported averages.

use crate::params::AnalogParams;
use crate::variation::ModuleVariation;
use qt_dram_core::{DramGeometry, SpeedGrade};
use serde::{Deserialize, Serialize};

/// The average segment entropy (bits) produced by the analog model at unit
/// entropy scale with the calibrated parameters, used as the anchor when
/// deriving per-module scales from Table 3's averages.
pub const NOMINAL_AVG_SEGMENT_ENTROPY: f64 = 1400.0;

/// Direction of the temperature response of a chip (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemperatureTrend {
    /// Trend 1: bitline entropy increases with temperature.
    Increasing,
    /// Trend 2: bitline entropy decreases with temperature.
    Decreasing,
}

impl TemperatureTrend {
    /// Degrees Celsius of *entropy-adverse* excursion when a module of this
    /// trend sits at `temp_c` after being characterised at `base_c`. Trend 1
    /// modules (entropy rises with temperature) degrade when cooled below
    /// base; Trend 2 modules degrade when heated above it. Movement in the
    /// entropy-favourable direction returns 0 — the characterised thresholds
    /// stay conservative there (Section 8 recharacterises only when quality
    /// drops).
    pub fn adverse_excursion(self, base_c: f64, temp_c: f64) -> f64 {
        match self {
            TemperatureTrend::Increasing => (base_c - temp_c).max(0.0),
            TemperatureTrend::Decreasing => (temp_c - base_c).max(0.0),
        }
    }
}

/// One DDR4 module of the characterised population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleProfile {
    /// Short name used throughout the paper ("M1" … "M17").
    pub name: &'static str,
    /// Module part number, where known.
    pub module_identifier: &'static str,
    /// DRAM chip part number, where known.
    pub chip_identifier: &'static str,
    /// Data transfer rate in MT/s.
    pub freq_mts: u32,
    /// Module capacity in GB.
    pub size_gb: u32,
    /// Number of DRAM chips on the module.
    pub chips: u32,
    /// Chip I/O width (pins).
    pub pins: u32,
    /// Average segment entropy reported by Table 3, in bits.
    pub table3_avg_segment_entropy: f64,
    /// Maximum segment entropy reported by Table 3, in bits.
    pub table3_max_segment_entropy: f64,
    /// Average segment entropy measured again after 30 days, where reported.
    pub table3_avg_after_30_days: Option<f64>,
}

impl ModuleProfile {
    /// The deterministic seed assigned to this module (derived from its
    /// position in the population).
    pub fn seed(&self) -> u64 {
        // "QUACTRNG" in ASCII, mixed with the module index.
        0x5155_4143_5452_4E47 ^ ((self.index() as u64 + 1) * 0x9E37_79B9)
    }

    /// The module's index in the population (0-based: M1 → 0).
    pub fn index(&self) -> usize {
        self.name[1..].parse::<usize>().expect("module names are M<number>") - 1
    }

    /// The geometry of this module. All characterised modules use x8 chips
    /// with 8 KiB module-level rows; larger-capacity modules have more rows
    /// per bank.
    pub fn geometry(&self) -> DramGeometry {
        let base = DramGeometry::ddr4_4gb_x8_module();
        match self.size_gb {
            0..=4 => base,
            5..=8 => DramGeometry { subarrays_per_bank: base.subarrays_per_bank * 2, ..base },
            _ => DramGeometry { subarrays_per_bank: base.subarrays_per_bank * 4, ..base },
        }
    }

    /// The speed grade corresponding to the module's transfer rate.
    pub fn speed_grade(&self) -> SpeedGrade {
        match self.freq_mts {
            2133 => SpeedGrade::Ddr4_2133,
            2400 => SpeedGrade::Ddr4_2400,
            2666 => SpeedGrade::Ddr4_2666,
            3200 => SpeedGrade::Ddr4_3200,
            other => SpeedGrade::Projected(other),
        }
    }

    /// The per-module entropy scale that calibrates the analog model to this
    /// module's Table 3 average segment entropy.
    pub fn entropy_scale(&self) -> f64 {
        self.table3_avg_segment_entropy / NOMINAL_AVG_SEGMENT_ENTROPY
    }

    /// Builds the module's process-variation profile, calibrated to its
    /// Table 3 statistics.
    pub fn variation(&self) -> ModuleVariation {
        ModuleVariation::generate_with(
            &self.geometry(),
            self.seed(),
            AnalogParams::calibrated(),
            self.entropy_scale(),
        )
    }

    /// Builds the full analog model for this module.
    pub fn analog_model(&self) -> crate::model::QuacAnalogModel {
        crate::model::QuacAnalogModel::new(self.geometry(), self.variation())
    }
}

/// All 17 modules of Appendix A, Table 3.
pub static PAPER_MODULES: &[ModuleProfile] = &[
    ModuleProfile { name: "M1", module_identifier: "Unknown", chip_identifier: "H5AN4G8NAFR-TFC", freq_mts: 2133, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1688.1, table3_max_segment_entropy: 2247.4, table3_avg_after_30_days: None },
    ModuleProfile { name: "M2", module_identifier: "Unknown", chip_identifier: "Unknown", freq_mts: 2133, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1180.4, table3_max_segment_entropy: 1406.1, table3_avg_after_30_days: None },
    ModuleProfile { name: "M3", module_identifier: "Unknown", chip_identifier: "H5AN4G8NAFR-TFC", freq_mts: 2133, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1205.0, table3_max_segment_entropy: 1858.3, table3_avg_after_30_days: Some(1192.9) },
    ModuleProfile { name: "M4", module_identifier: "76TT21NUS1R8-4G", chip_identifier: "H5AN4G8NAFR-TFC", freq_mts: 2133, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1608.1, table3_max_segment_entropy: 2406.5, table3_avg_after_30_days: Some(1588.0) },
    ModuleProfile { name: "M5", module_identifier: "Unknown", chip_identifier: "T4D5128HT-21", freq_mts: 2133, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1618.2, table3_max_segment_entropy: 2121.6, table3_avg_after_30_days: None },
    ModuleProfile { name: "M6", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1211.5, table3_max_segment_entropy: 1444.6, table3_avg_after_30_days: None },
    ModuleProfile { name: "M7", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1177.7, table3_max_segment_entropy: 1404.4, table3_avg_after_30_days: None },
    ModuleProfile { name: "M8", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1332.9, table3_max_segment_entropy: 1600.9, table3_avg_after_30_days: Some(1407.0) },
    ModuleProfile { name: "M9", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1137.1, table3_max_segment_entropy: 1370.9, table3_avg_after_30_days: None },
    ModuleProfile { name: "M10", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1208.5, table3_max_segment_entropy: 1473.2, table3_avg_after_30_days: Some(1251.8) },
    ModuleProfile { name: "M11", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1176.0, table3_max_segment_entropy: 1382.9, table3_avg_after_30_days: Some(1165.1) },
    ModuleProfile { name: "M12", module_identifier: "TLRD44G2666HC18F-SBK", chip_identifier: "H5AN4G8NMFR-VKC", freq_mts: 2666, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1485.0, table3_max_segment_entropy: 1740.6, table3_avg_after_30_days: None },
    ModuleProfile { name: "M13", module_identifier: "KSM32RD8/16HDR", chip_identifier: "H5AN4G8NAFA-UHC", freq_mts: 2400, size_gb: 4, chips: 8, pins: 8, table3_avg_segment_entropy: 1853.5, table3_max_segment_entropy: 2849.6, table3_avg_after_30_days: None },
    ModuleProfile { name: "M14", module_identifier: "F4-2400C17S-8GNT", chip_identifier: "H5AN4G8NMFR-UHC", freq_mts: 2400, size_gb: 8, chips: 8, pins: 8, table3_avg_segment_entropy: 1369.3, table3_max_segment_entropy: 1942.2, table3_avg_after_30_days: None },
    ModuleProfile { name: "M15", module_identifier: "F4-2400C17S-8GNT", chip_identifier: "H5AN4G8NMFR-UHC", freq_mts: 3200, size_gb: 8, chips: 8, pins: 8, table3_avg_segment_entropy: 1545.8, table3_max_segment_entropy: 2147.2, table3_avg_after_30_days: None },
    ModuleProfile { name: "M16", module_identifier: "KSM32RD8/16HDR", chip_identifier: "H5AN8G8NDJR-XNC", freq_mts: 3200, size_gb: 16, chips: 8, pins: 8, table3_avg_segment_entropy: 1634.4, table3_max_segment_entropy: 1944.6, table3_avg_after_30_days: None },
    ModuleProfile { name: "M17", module_identifier: "KSM32RD8/16HDR", chip_identifier: "H5AN8G8NDJR-XNC", freq_mts: 3200, size_gb: 16, chips: 8, pins: 8, table3_avg_segment_entropy: 1664.7, table3_max_segment_entropy: 2016.6, table3_avg_after_30_days: None },
];

/// The five-module subset used for the temperature and 30-day studies
/// (Section 8 uses 40 chips from five modules); this reproduction uses the
/// five modules for which Table 3 reports 30-day data.
pub fn section8_modules() -> Vec<&'static ModuleProfile> {
    PAPER_MODULES
        .iter()
        .filter(|m| m.table3_avg_after_30_days.is_some())
        .collect()
}

/// Population-level statistics used by the throughput models: the average,
/// across modules, of the maximum segment entropy (determines the average
/// SHA-input-block count per iteration, Section 7.2).
pub fn average_of_max_segment_entropy() -> f64 {
    let sum: f64 = PAPER_MODULES.iter().map(|m| m.table3_max_segment_entropy).sum();
    sum / PAPER_MODULES.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adverse_excursion_is_one_sided_per_trend() {
        // Trend 2 (Decreasing): heat hurts, cold is benign.
        assert_eq!(TemperatureTrend::Decreasing.adverse_excursion(50.0, 85.0), 35.0);
        assert_eq!(TemperatureTrend::Decreasing.adverse_excursion(50.0, 30.0), 0.0);
        // Trend 1 (Increasing): cold hurts, heat is benign.
        assert_eq!(TemperatureTrend::Increasing.adverse_excursion(50.0, 30.0), 20.0);
        assert_eq!(TemperatureTrend::Increasing.adverse_excursion(50.0, 85.0), 0.0);
        // At base, neither trend sees an excursion.
        assert_eq!(TemperatureTrend::Increasing.adverse_excursion(50.0, 50.0), 0.0);
        assert_eq!(TemperatureTrend::Decreasing.adverse_excursion(50.0, 50.0), 0.0);
    }

    #[test]
    fn population_has_17_modules_with_unique_names_and_seeds() {
        assert_eq!(PAPER_MODULES.len(), 17);
        let names: std::collections::HashSet<_> = PAPER_MODULES.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 17);
        let seeds: std::collections::HashSet<_> = PAPER_MODULES.iter().map(|m| m.seed()).collect();
        assert_eq!(seeds.len(), 17);
    }

    #[test]
    fn indices_match_names() {
        for (i, m) in PAPER_MODULES.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn geometries_scale_with_capacity() {
        let m1 = &PAPER_MODULES[0];
        assert_eq!(m1.geometry().segments_per_bank(), 8192);
        let m14 = &PAPER_MODULES[13];
        assert_eq!(m14.size_gb, 8);
        assert_eq!(m14.geometry().segments_per_bank(), 16384);
        let m16 = &PAPER_MODULES[15];
        assert_eq!(m16.size_gb, 16);
        assert_eq!(m16.geometry().segments_per_bank(), 32768);
    }

    #[test]
    fn entropy_scales_track_table3_averages() {
        for m in PAPER_MODULES {
            let scale = m.entropy_scale();
            assert!(scale > 0.5 && scale < 1.6, "{}: scale {scale}", m.name);
        }
        // M13 has the largest average, M9 the smallest.
        let scales: Vec<f64> = PAPER_MODULES.iter().map(|m| m.entropy_scale()).collect();
        let max_idx = scales.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let min_idx = scales.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(PAPER_MODULES[max_idx].name, "M13");
        assert_eq!(PAPER_MODULES[min_idx].name, "M9");
    }

    #[test]
    fn table3_max_exceeds_avg_for_every_module() {
        for m in PAPER_MODULES {
            assert!(m.table3_max_segment_entropy > m.table3_avg_segment_entropy, "{}", m.name);
        }
    }

    #[test]
    fn average_of_max_is_in_paper_range() {
        let avg = average_of_max_segment_entropy();
        // 256 * floor(avg/256) should be close to the paper's ~7664/4 bits
        // per bank per iteration.
        assert!(avg > 1700.0 && avg < 2000.0, "avg of max {avg}");
    }

    #[test]
    fn section8_population_is_the_30_day_subset() {
        let mods = section8_modules();
        assert!(mods.len() >= 5);
        assert!(mods.iter().all(|m| m.table3_avg_after_30_days.is_some()));
    }

    #[test]
    fn speed_grades_map_correctly() {
        assert_eq!(PAPER_MODULES[0].speed_grade(), SpeedGrade::Ddr4_2133);
        assert_eq!(PAPER_MODULES[12].speed_grade(), SpeedGrade::Ddr4_2400);
        assert_eq!(PAPER_MODULES[16].speed_grade(), SpeedGrade::Ddr4_3200);
    }

    #[test]
    fn variation_profiles_build_for_every_module() {
        for m in PAPER_MODULES.iter().take(3) {
            let v = m.variation();
            assert_eq!(v.entropy_scale(), m.entropy_scale());
            assert_eq!(v.row_bits(), m.geometry().row_bits);
        }
    }
}
