//! Failure mechanisms exploited by prior DRAM-based TRNGs, modelled on the
//! same process-variation substrate as QUAC.
//!
//! * **Reduced-tRCD read failures** (D-RaNGe, Kim et al., HPCA 2019): reading
//!   a cache block before the activation latency elapses makes a small number
//!   of cells per block resolve randomly.
//! * **Reduced-tRP activation failures** (Talukder et al., ICCE 2019):
//!   activating a row before the bitlines finish precharging flips a small
//!   fraction of cells per row randomly.
//! * **Retention failures** (D-PUF, Keller+): pausing refresh lets the
//!   leakiest cells lose their charge over tens of seconds.
//!
//! These models feed the "Enhanced" baselines of Section 7.4, which the paper
//! builds by characterising the same 136 chips used for QUAC.

use crate::math::{binary_entropy_bits, normal_at, std_normal_cdf, uniform_at};
use crate::variation::ModuleVariation;
use qt_dram_core::{RowAddr, CACHE_BLOCK_BITS};
use serde::{Deserialize, Serialize};

/// Calibration of the reduced-timing failure mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureParams {
    /// Spread (in noise-sigma units) of the per-cell tRCD margin. Larger
    /// spread means fewer cells land in the metastable window when tRCD is
    /// violated. Calibrated so the average maximum cache-block entropy is
    /// ≈ 46.5 bits (D-RaNGe-Enhanced, Section 7.4.1).
    pub trcd_margin_spread: f64,
    /// Fraction of the nominal tRCD below which reads become unreliable.
    pub trcd_critical_fraction: f64,
    /// Spread of the per-cell tRP margin. Calibrated so the average maximum
    /// row entropy is ≈ 1024 bits out of 64 K (Talukder+-Enhanced,
    /// Section 7.4.2).
    pub trp_margin_spread: f64,
    /// Fraction of the nominal tRP below which activations become unreliable.
    pub trp_critical_fraction: f64,
    /// Median cell retention time at 50 °C, in seconds.
    pub retention_median_s: f64,
    /// Log-space standard deviation of cell retention times.
    pub retention_log_sigma: f64,
    /// Retention times halve roughly every this many °C.
    pub retention_halving_c: f64,
}

impl FailureParams {
    /// Parameters calibrated to the entropy statistics quoted in Section 7.4.
    pub fn calibrated() -> Self {
        FailureParams {
            trcd_margin_spread: 7.5,
            trcd_critical_fraction: 0.55,
            trp_margin_spread: 43.0,
            trp_critical_fraction: 0.45,
            retention_median_s: 20_000.0,
            retention_log_sigma: 2.4,
            retention_halving_c: 10.0,
        }
    }
}

impl Default for FailureParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Reduced-timing failure model bound to one module's variation profile.
#[derive(Debug, Clone)]
pub struct FailureModel {
    variation: ModuleVariation,
    params: FailureParams,
}

/// Domain-separation tags.
mod tag {
    pub const TRCD: u64 = 0x41;
    pub const TRP: u64 = 0x42;
    pub const RETENTION: u64 = 0x43;
}

impl FailureModel {
    /// Creates a failure model for a module using calibrated parameters.
    pub fn new(variation: ModuleVariation) -> Self {
        Self::with_params(variation, FailureParams::calibrated())
    }

    /// Creates a failure model with explicit parameters.
    pub fn with_params(variation: ModuleVariation, params: FailureParams) -> Self {
        FailureModel { variation, params }
    }

    /// The failure parameters.
    pub fn params(&self) -> &FailureParams {
        &self.params
    }

    /// Probability that a cell reads as logic-1 when its cache block is read
    /// with tRCD reduced to `trcd_fraction` of nominal after the row was
    /// initialised with all-zeros (the data pattern D-RaNGe found most
    /// effective). At nominal timing the cell reads back its stored zero
    /// deterministically.
    pub fn trcd_read_one_probability(
        &self,
        row: RowAddr,
        bitline: usize,
        trcd_fraction: f64,
    ) -> f64 {
        if trcd_fraction >= 1.0 {
            return 0.0;
        }
        // Per-cell access speed margin: most cells are far from the critical
        // window; the metastable ones sit near zero margin.
        let margin = self.params.trcd_margin_spread
            * normal_at(self.variation.seed() ^ tag::TRCD, row.index() as u64, bitline as u64, 0);
        // How deep into the unreliable region this reduction goes.
        let depth = (self.params.trcd_critical_fraction - trcd_fraction)
            / self.params.trcd_critical_fraction;
        if depth <= 0.0 {
            // Not reduced enough to matter: the read is reliable.
            return 0.0;
        }
        std_normal_cdf(margin / depth.max(1e-3))
    }

    /// Shannon entropy harvested from one cell under a reduced-tRCD read.
    pub fn trcd_cell_entropy(&self, row: RowAddr, bitline: usize, trcd_fraction: f64) -> f64 {
        binary_entropy_bits(self.trcd_read_one_probability(row, bitline, trcd_fraction))
    }

    /// Entropy of one cache block under reduced-tRCD reads (sum over its 512
    /// cells), the quantity characterised for D-RaNGe-Enhanced.
    pub fn trcd_cache_block_entropy(
        &self,
        row: RowAddr,
        cache_block: usize,
        trcd_fraction: f64,
    ) -> f64 {
        let start = cache_block * CACHE_BLOCK_BITS;
        (start..start + CACHE_BLOCK_BITS)
            .map(|b| self.trcd_cell_entropy(row, b, trcd_fraction))
            .sum()
    }

    /// Number of high-entropy "TRNG cells" (entropy above 0.9 bits) in a
    /// cache block under reduced-tRCD reads — D-RaNGe-Basic observes up to
    /// four such cells per block.
    pub fn trcd_rng_cells_in_block(
        &self,
        row: RowAddr,
        cache_block: usize,
        trcd_fraction: f64,
    ) -> usize {
        let start = cache_block * CACHE_BLOCK_BITS;
        (start..start + CACHE_BLOCK_BITS)
            .filter(|&b| self.trcd_cell_entropy(row, b, trcd_fraction) > 0.9)
            .count()
    }

    /// Probability that a cell flips when its row is activated with tRP
    /// reduced to `trp_fraction` of nominal (Talukder+'s mechanism).
    pub fn trp_flip_probability(&self, row: RowAddr, bitline: usize, trp_fraction: f64) -> f64 {
        if trp_fraction >= 1.0 {
            return 0.0;
        }
        let margin = self.params.trp_margin_spread
            * normal_at(self.variation.seed() ^ tag::TRP, row.index() as u64, bitline as u64, 0);
        let depth =
            (self.params.trp_critical_fraction - trp_fraction) / self.params.trp_critical_fraction;
        if depth <= 0.0 {
            return 0.0;
        }
        std_normal_cdf(margin / depth.max(1e-3))
    }

    /// Entropy of a whole row under reduced-tRP activation, with optional
    /// bitline striding for fast sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `bitline_stride` is zero.
    pub fn trp_row_entropy(&self, row: RowAddr, trp_fraction: f64, bitline_stride: usize) -> f64 {
        assert!(bitline_stride > 0, "bitline_stride must be non-zero");
        let row_bits = self.variation.row_bits();
        let mut sum = 0.0;
        let mut count = 0;
        let mut b = 0;
        while b < row_bits {
            sum += binary_entropy_bits(self.trp_flip_probability(row, b, trp_fraction));
            count += 1;
            b += bitline_stride;
        }
        sum * row_bits as f64 / count as f64
    }
}

/// Retention-failure model (D-PUF and Keller+ baselines).
#[derive(Debug, Clone)]
pub struct RetentionModel {
    variation: ModuleVariation,
    params: FailureParams,
}

impl RetentionModel {
    /// Creates a retention model for a module.
    pub fn new(variation: ModuleVariation) -> Self {
        RetentionModel { variation, params: FailureParams::calibrated() }
    }

    /// The retention time of a cell at the given temperature, in seconds.
    /// Retention times are log-normally distributed and halve every
    /// ~10 °C, consistent with the DRAM retention literature the paper cites.
    pub fn retention_time_s(&self, row: RowAddr, bitline: usize, temperature_c: f64) -> f64 {
        let n = normal_at(
            self.variation.seed() ^ tag::RETENTION,
            row.index() as u64,
            bitline as u64,
            0,
        );
        let base = self.params.retention_median_s * (self.params.retention_log_sigma * n).exp();
        base * 0.5f64.powf((temperature_c - 50.0) / self.params.retention_halving_c)
    }

    /// Probability that a cell has failed after refresh is paused for
    /// `pause_s` seconds (1 if its retention time is exceeded, with a small
    /// probabilistic transition band).
    pub fn failure_probability(
        &self,
        row: RowAddr,
        bitline: usize,
        pause_s: f64,
        temperature_c: f64,
    ) -> f64 {
        let t_ret = self.retention_time_s(row, bitline, temperature_c);
        if pause_s <= 0.0 {
            return 0.0;
        }
        // Smooth transition around the retention threshold.
        std_normal_cdf((pause_s / t_ret).ln() / 0.25)
    }

    /// Expected number of failed cells in a region of `region_bits` cells
    /// after a `pause_s`-second refresh pause, using a sampled estimate over
    /// `sample` cells of the first row of the region.
    pub fn expected_failures(
        &self,
        base_row: RowAddr,
        region_bits: usize,
        pause_s: f64,
        temperature_c: f64,
        sample: usize,
    ) -> f64 {
        let sample = sample.max(1).min(region_bits.max(1));
        let mut sum = 0.0;
        for i in 0..sample {
            let bitline = i * self.variation.row_bits().max(1) / sample % self.variation.row_bits().max(1);
            sum += self.failure_probability(base_row, bitline, pause_s, temperature_c);
        }
        sum / sample as f64 * region_bits as f64
    }

    /// Fraction of uniformly random variation cells that fail within the
    /// pause window; the entropy source rate of retention-based TRNGs.
    pub fn failure_fraction(&self, pause_s: f64, temperature_c: f64, sample: usize) -> f64 {
        let sample = sample.max(1);
        let mut sum = 0.0;
        for i in 0..sample {
            let row = RowAddr::new(i * 37 % 4096);
            let bitline = uniform_at(self.variation.seed() ^ 0x99, i as u64, 1, 2);
            let bitline = (bitline * self.variation.row_bits() as f64) as usize;
            sum += self.failure_probability(row, bitline, pause_s, temperature_c);
        }
        sum / sample as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_core::DramGeometry;

    fn variation() -> ModuleVariation {
        ModuleVariation::generate(&DramGeometry::ddr4_4gb_x8_module(), 77)
    }

    #[test]
    fn nominal_timing_produces_no_trcd_failures() {
        let m = FailureModel::new(variation());
        for b in 0..256 {
            let e = m.trcd_cell_entropy(RowAddr::new(10), b, 1.0);
            assert!(e < 1e-6, "bitline {b}: entropy {e}");
        }
    }

    #[test]
    fn reduced_trcd_produces_a_few_rng_cells_per_block() {
        let m = FailureModel::new(variation());
        let mut total_cells = 0usize;
        let mut total_entropy = 0.0;
        let blocks = 32;
        for cb in 0..blocks {
            total_cells += m.trcd_rng_cells_in_block(RowAddr::new(100), cb, 0.3);
            total_entropy += m.trcd_cache_block_entropy(RowAddr::new(100), cb, 0.3);
        }
        let avg_cells = total_cells as f64 / blocks as f64;
        let avg_entropy = total_entropy / blocks as f64;
        // D-RaNGe: a handful of TRNG cells per block; tens of bits of entropy
        // per block when post-processed.
        assert!(avg_cells > 0.5 && avg_cells < 40.0, "avg RNG cells {avg_cells}");
        assert!(avg_entropy > 10.0 && avg_entropy < 120.0, "avg block entropy {avg_entropy}");
    }

    #[test]
    fn trcd_entropy_grows_as_timing_shrinks() {
        let m = FailureModel::new(variation());
        let e_mild = m.trcd_cache_block_entropy(RowAddr::new(5), 3, 0.5);
        let e_severe = m.trcd_cache_block_entropy(RowAddr::new(5), 3, 0.2);
        assert!(e_severe >= e_mild);
    }

    #[test]
    fn trp_row_entropy_is_around_a_thousand_bits() {
        let m = FailureModel::new(variation());
        let e = m.trp_row_entropy(RowAddr::new(1000), 0.2, 16);
        // Talukder+-Enhanced harnesses ≈ 1024 bits from a high-entropy row.
        assert!(e > 300.0 && e < 3000.0, "row entropy {e}");
    }

    #[test]
    fn trp_nominal_timing_is_safe() {
        let m = FailureModel::new(variation());
        assert!(m.trp_row_entropy(RowAddr::new(0), 1.0, 64) < 1.0);
    }

    #[test]
    fn retention_failures_accumulate_slowly() {
        let m = RetentionModel::new(variation());
        let frac_1s = m.failure_fraction(1.0, 50.0, 2000);
        let frac_40s = m.failure_fraction(40.0, 50.0, 2000);
        let frac_320s = m.failure_fraction(320.0, 50.0, 2000);
        assert!(frac_1s < frac_40s);
        assert!(frac_40s < frac_320s);
        // Retention failures are rare at these pause times (the reason these
        // TRNGs are slow): well below 1% at 40 s.
        assert!(frac_40s < 0.01, "40 s failure fraction {frac_40s}");
        assert!(frac_40s > 0.0);
    }

    #[test]
    fn retention_time_shrinks_with_temperature() {
        let m = RetentionModel::new(variation());
        let cold = m.retention_time_s(RowAddr::new(3), 17, 50.0);
        let hot = m.retention_time_s(RowAddr::new(3), 17, 85.0);
        assert!(hot < cold);
        assert!((cold / hot - 2f64.powf(35.0 / 10.0)).abs() / (cold / hot) < 0.01);
    }

    #[test]
    fn expected_failures_scales_with_region_size() {
        let m = RetentionModel::new(variation());
        let small = m.expected_failures(RowAddr::new(0), 1 << 20, 40.0, 50.0, 500);
        let large = m.expected_failures(RowAddr::new(0), 1 << 22, 40.0, 50.0, 500);
        assert!((large / small - 4.0).abs() < 0.5);
    }
}
