//! Shannon-entropy utilities (Equation 1 of the paper).

use crate::math::binary_entropy_bits;
use qt_dram_core::BitVec;

/// Binary Shannon entropy of a Bernoulli(p) source, in bits.
pub fn binary_entropy(p: f64) -> f64 {
    binary_entropy_bits(p)
}

/// Entropy of a bitstream estimated from its empirical one-fraction — the
/// estimator the paper applies to the 1000-trial bitstreams collected per
/// sense amplifier (Section 6.1.2).
pub fn bitstream_entropy(bits: &BitVec) -> f64 {
    if bits.is_empty() {
        return 0.0;
    }
    binary_entropy_bits(bits.ones_fraction())
}

/// Entropy from explicit zero/one counts.
pub fn entropy_from_counts(zeros: u64, ones: u64) -> f64 {
    let total = zeros + ones;
    if total == 0 {
        return 0.0;
    }
    binary_entropy_bits(ones as f64 / total as f64)
}

/// Sum of per-bitline entropies for a slice of probabilities (the paper's
/// definition of cache-block and segment entropy: the sum of all constituent
/// bitline entropies, Sections 6.1.3–6.1.4).
pub fn total_entropy(probabilities: &[f64]) -> f64 {
    probabilities.iter().map(|&p| binary_entropy_bits(p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstream_entropy_of_balanced_stream_is_one() {
        let bits = BitVec::from_bits((0..1000).map(|i| i % 2 == 0));
        assert!((bitstream_entropy(&bits) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bitstream_entropy_of_constant_stream_is_zero() {
        assert_eq!(bitstream_entropy(&BitVec::ones(1000)), 0.0);
        assert_eq!(bitstream_entropy(&BitVec::zeros(1000)), 0.0);
        assert_eq!(bitstream_entropy(&BitVec::zeros(0)), 0.0);
    }

    #[test]
    fn counts_and_fraction_agree() {
        let bits = BitVec::from_bits((0..1000).map(|i| i % 4 == 0));
        let from_counts = entropy_from_counts(750, 250);
        assert!((bitstream_entropy(&bits) - from_counts).abs() < 1e-9);
        assert_eq!(entropy_from_counts(0, 0), 0.0);
    }

    #[test]
    fn total_entropy_sums_bitlines() {
        let probs = [0.5, 0.5, 1.0, 0.0];
        assert!((total_entropy(&probs) - 2.0).abs() < 1e-12);
    }
}
