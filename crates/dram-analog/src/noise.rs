//! The bulk thermal-noise source for steady-state sampling.
//!
//! The sampling hot path consumes one 64-bit noise word per *bit-plane* of a
//! 64-lane comparison block (see [`crate::sampler::BitSlicedSampler`]), which
//! makes the noise generator itself a first-order cost. A counter-based
//! generator fits this shape far better than a stateful one: every output
//! word is an independent function `mix(seed + i·γ)` of its stream index, so
//! a bulk fill has no loop-carried dependency and the compiler vectorises the
//! whole fill (one multiply-xor-shift pipeline per SIMD lane), where a
//! xoshiro-style generator is stuck serialising its state update.
//!
//! The mix function is the SplitMix64 finaliser (Steele, Lea & Flood 2014) —
//! the same one this workspace already trusts for shard-seed derivation — and
//! γ is the golden-ratio increment from the same paper, so successive counter
//! values differ in many bits before mixing. SplitMix64 passes BigCrush;
//! as simulated *analog* noise feeding a SHA-256 conditioner it has comfort-
//! able margin.

use rand::RngCore;

/// SplitMix64 golden-ratio increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finaliser: a bijective avalanche mix of one 64-bit word.
#[inline(always)]
fn mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-mode SplitMix64: the simulated thermal-noise source of the
/// steady-state sampling loop.
///
/// Word `i` of the stream is `mix(seed + i·γ)` — a pure function of
/// `(seed, i)`, so replaying a stream needs only the seed and the number of
/// words already drawn, and bulk fills vectorise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoiseRng {
    seed: u64,
    counter: u64,
}

impl NoiseRng {
    /// Creates a noise stream from a seed.
    pub fn new(seed: u64) -> Self {
        NoiseRng { seed, counter: 0 }
    }

    /// Number of noise words drawn so far.
    pub fn words_drawn(&self) -> u64 {
        self.counter
    }

    /// Draws the next noise word.
    #[inline(always)]
    pub fn next_word(&mut self) -> u64 {
        let w = mix(self.seed.wrapping_add(self.counter.wrapping_mul(GAMMA)));
        self.counter = self.counter.wrapping_add(1);
        w
    }

    /// Fills `out` with consecutive noise words. Equivalent to calling
    /// [`NoiseRng::next_word`] once per element, but written as an
    /// index-based loop with no cross-iteration dependency so the compiler
    /// vectorises it.
    pub fn fill_words(&mut self, out: &mut [u64]) {
        let base = self.counter;
        let seed = self.seed;
        for (i, w) in out.iter_mut().enumerate() {
            *w = mix(seed.wrapping_add(base.wrapping_add(i as u64).wrapping_mul(GAMMA)));
        }
        self.counter = base.wrapping_add(out.len() as u64);
    }
}

impl RngCore for NoiseRng {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_matches_word_at_a_time() {
        let mut bulk = NoiseRng::new(123);
        let mut serial = NoiseRng::new(123);
        let mut words = vec![0u64; 257];
        bulk.fill_words(&mut words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(w, serial.next_word(), "word {i}");
        }
        assert_eq!(bulk, serial);
        // Continuing after a bulk fill stays on the same stream.
        assert_eq!(bulk.next_word(), serial.next_word());
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = NoiseRng::new(1);
        let mut b = NoiseRng::new(2);
        let distinct = (0..64).filter(|_| a.next_word() != b.next_word()).count();
        assert_eq!(distinct, 64);
    }

    #[test]
    fn stream_is_roughly_balanced() {
        let mut rng = NoiseRng::new(99);
        let mut ones = 0u64;
        const WORDS: u64 = 10_000;
        for _ in 0..WORDS {
            ones += rng.next_word().count_ones() as u64;
        }
        let frac = ones as f64 / (WORDS * 64) as f64;
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
        assert_eq!(rng.words_drawn(), WORDS);
    }
}
