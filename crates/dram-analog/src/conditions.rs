//! Operating conditions under which DRAM is exercised.

use serde::{Deserialize, Serialize};

/// Environmental conditions for a characterisation run or TRNG operation.
///
/// The paper controls temperature with a closed-loop PID setup (±0.1 °C,
/// default 50 °C, Section 6.1.1) and studies aging over a 30-day window
/// (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingConditions {
    /// DRAM temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Time since the initial characterisation, in days (models aging drift).
    pub age_days: f64,
}

impl OperatingConditions {
    /// The paper's default characterisation temperature (50 °C), zero aging.
    pub fn nominal() -> Self {
        OperatingConditions { temperature_c: 50.0, age_days: 0.0 }
    }

    /// Conditions at a given temperature, zero aging.
    pub fn at_temperature(temperature_c: f64) -> Self {
        OperatingConditions { temperature_c, age_days: 0.0 }
    }

    /// Returns a copy aged by the given number of days.
    pub fn aged(mut self, days: f64) -> Self {
        self.age_days = days;
        self
    }

    /// The three temperatures studied in Figure 14.
    pub fn figure14_temperatures() -> [f64; 3] {
        [50.0, 65.0, 85.0]
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_50c_day_zero() {
        let c = OperatingConditions::nominal();
        assert_eq!(c.temperature_c, 50.0);
        assert_eq!(c.age_days, 0.0);
        assert_eq!(OperatingConditions::default(), c);
    }

    #[test]
    fn builders_compose() {
        let c = OperatingConditions::at_temperature(85.0).aged(30.0);
        assert_eq!(c.temperature_c, 85.0);
        assert_eq!(c.age_days, 30.0);
    }

    #[test]
    fn figure14_sweep_matches_paper() {
        assert_eq!(OperatingConditions::figure14_temperatures(), [50.0, 65.0, 85.0]);
    }
}
