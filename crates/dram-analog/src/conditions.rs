//! Operating conditions under which DRAM is exercised.

use serde::{Deserialize, Serialize};

/// Environmental conditions for a characterisation run or TRNG operation.
///
/// The paper controls temperature with a closed-loop PID setup (±0.1 °C,
/// default 50 °C, Section 6.1.1) and studies aging over a 30-day window
/// (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingConditions {
    /// DRAM temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Time since the initial characterisation, in days (models aging drift).
    pub age_days: f64,
}

impl OperatingConditions {
    /// The paper's default characterisation temperature (50 °C), zero aging.
    pub fn nominal() -> Self {
        OperatingConditions { temperature_c: 50.0, age_days: 0.0 }
    }

    /// Conditions at a given temperature, zero aging.
    pub fn at_temperature(temperature_c: f64) -> Self {
        OperatingConditions { temperature_c, age_days: 0.0 }
    }

    /// Returns a copy aged by the given number of days.
    pub fn aged(mut self, days: f64) -> Self {
        self.age_days = days;
        self
    }

    /// The three temperatures studied in Figure 14.
    pub fn figure14_temperatures() -> [f64; 3] {
        [50.0, 65.0, 85.0]
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        Self::nominal()
    }
}

/// A single deterministic temperature excursion: linear from `base_c` to
/// `peak_c` and back over a normalised phase in `[0, 1]` (0 → base, 0.5 →
/// peak, 1 → back at base). Outside that range the module sits at `base_c` —
/// the ramp is a one-shot environmental event (an HVAC failure, a hot
/// neighbour spinning up and down), not a periodic wave, so a stream that
/// outlives the pulse deterministically returns to nominal conditions.
///
/// `peak_c` may be below `base_c`: the same shape then models a cooling
/// excursion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureRamp {
    /// Resting temperature before, after, and outside the excursion.
    pub base_c: f64,
    /// Temperature at the midpoint of the excursion.
    pub peak_c: f64,
}

impl TemperatureRamp {
    /// An excursion from the paper's nominal 50 °C to `peak_c` and back.
    pub fn nominal_to(peak_c: f64) -> Self {
        TemperatureRamp { base_c: OperatingConditions::nominal().temperature_c, peak_c }
    }

    /// Temperature at the given phase of the excursion (triangular: rises
    /// over `[0, 0.5]`, falls over `[0.5, 1]`, `base_c` outside `[0, 1]`).
    pub fn at(&self, phase: f64) -> f64 {
        if !(0.0..=1.0).contains(&phase) {
            return self.base_c;
        }
        let weight = 1.0 - (2.0 * phase - 1.0).abs();
        self.base_c + (self.peak_c - self.base_c) * weight
    }

    /// Full [`OperatingConditions`] at the given phase, zero aging.
    pub fn conditions_at(&self, phase: f64) -> OperatingConditions {
        OperatingConditions::at_temperature(self.at(phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_50c_day_zero() {
        let c = OperatingConditions::nominal();
        assert_eq!(c.temperature_c, 50.0);
        assert_eq!(c.age_days, 0.0);
        assert_eq!(OperatingConditions::default(), c);
    }

    #[test]
    fn builders_compose() {
        let c = OperatingConditions::at_temperature(85.0).aged(30.0);
        assert_eq!(c.temperature_c, 85.0);
        assert_eq!(c.age_days, 30.0);
    }

    #[test]
    fn figure14_sweep_matches_paper() {
        assert_eq!(OperatingConditions::figure14_temperatures(), [50.0, 65.0, 85.0]);
    }

    #[test]
    fn ramp_is_triangular_and_one_shot() {
        let ramp = TemperatureRamp::nominal_to(85.0);
        assert_eq!(ramp.at(0.0), 50.0);
        assert_eq!(ramp.at(0.5), 85.0, "peak at the midpoint");
        assert_eq!(ramp.at(1.0), 50.0, "back at base when the pulse ends");
        assert!((ramp.at(0.25) - 67.5).abs() < 1e-12, "linear rise");
        assert!((ramp.at(0.75) - 67.5).abs() < 1e-12, "symmetric fall");
        // One-shot: beyond the pulse (and before it) the module is at base.
        assert_eq!(ramp.at(1.5), 50.0);
        assert_eq!(ramp.at(-0.1), 50.0);
        assert_eq!(ramp.conditions_at(0.5), OperatingConditions::at_temperature(85.0));
    }

    #[test]
    fn ramp_models_cooling_excursions_too() {
        let ramp = TemperatureRamp { base_c: 50.0, peak_c: 20.0 };
        assert_eq!(ramp.at(0.5), 20.0);
        assert!(ramp.at(0.25) < 50.0 && ramp.at(0.25) > 20.0);
    }
}
