//! The QUAC metastability model: per-bitline probabilities, entropies, and
//! sampled QUAC outcomes for one DRAM module.

use crate::conditions::OperatingConditions;
use crate::math::{entropy_of_normal_bias, std_normal_cdf};
use crate::sampler::{BitSlicedSampler, BitThreshold, PackedSampler};
use crate::variation::ModuleVariation;
use qt_dram_core::{BitVec, DataPattern, DramGeometry, Segment, SubarrayAddr, CACHE_BLOCK_BITS};
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Bumped whenever the physics changes — the bias/noise formulas, the
/// entropy evaluation path, or the meaning of any [`crate::AnalogParams`]
/// field — so persistent characterisation stores keyed on
/// [`QuacAnalogModel::physics_fingerprint`] invalidate stale entries.
pub const ANALOG_MODEL_VERSION: u32 = 2;

/// Cache key for per-bitline static offsets: `(segment, stride, age bits)`.
/// Temperature and data pattern do not enter — they shift the noise scale and
/// the bias respectively, not the per-device offsets.
type OffsetKey = (usize, usize, u64);

/// Bounded store of per-bitline static-offset grids. Characterisation sweeps
/// revisit the same `(segment, stride)` grid once per data pattern (Figure 8
/// evaluates 8 patterns) and once per temperature point (Figure 14 evaluates
/// 3), so caching the offsets — the only per-bitline random quantities —
/// removes the dominant hashing + inverse-CDF cost from every revisit.
#[derive(Debug, Default)]
struct OffsetCacheInner {
    map: HashMap<OffsetKey, Arc<Vec<f64>>>,
    order: VecDeque<OffsetKey>,
}

/// Number of offset grids kept alive. Scales with the machine's parallelism
/// so thread-sharded sweeps (one segment in flight per worker) don't evict
/// each other's grids mid-walk; a full-row stride-1 grid of the paper's
/// 65 536-bit rows is 512 KiB, so even 2× a large core count stays modest.
fn offset_cache_cap() -> usize {
    std::thread::available_parallelism().map(|n| n.get() * 2).unwrap_or(8).max(8)
}

/// Electrical model of QUAC operations on one DRAM module.
///
/// The model answers one question: *given that all four rows of `segment`
/// were initialised with `pattern` and a QUAC operation was performed under
/// `conditions`, what is the probability that the sense amplifier on
/// `bitline` resolves to logic-1?* Everything else (entropies, sampled
/// bitstreams, characterisation maps) derives from that probability.
///
/// All probability and entropy queries funnel through [`SegmentProber`], the
/// single canonical computation, so word-packed sampling, strided entropy
/// sweeps, and one-off queries can never disagree on the physics.
#[derive(Debug, Clone)]
pub struct QuacAnalogModel {
    geom: DramGeometry,
    variation: ModuleVariation,
    offsets: Arc<Mutex<OffsetCacheInner>>,
}

impl QuacAnalogModel {
    /// Creates a model for a module with the given geometry and variation
    /// profile.
    pub fn new(geom: DramGeometry, variation: ModuleVariation) -> Self {
        QuacAnalogModel { geom, variation, offsets: Arc::default() }
    }

    /// The module geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geom
    }

    /// The module's process-variation profile.
    pub fn variation(&self) -> &ModuleVariation {
        &self.variation
    }

    /// A fingerprint of everything that determines this model's *physics*
    /// beyond the module identity: the calibration parameters, the module
    /// entropy scale, and [`ANALOG_MODEL_VERSION`]. Two models with equal
    /// fingerprints (and equal variation seed + geometry) produce identical
    /// probabilities and entropies, so persistent characterisation stores
    /// fold this into their keys to never serve results computed under a
    /// different calibration or model revision.
    pub fn physics_fingerprint(&self) -> u64 {
        let repr = format!(
            "v{ANALOG_MODEL_VERSION}|{:?}|scale={:?}",
            self.variation.params(),
            self.variation.entropy_scale(),
        );
        // FNV-1a over the debug representation: stable, dependency-free.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in repr.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The signed charge-sharing imbalance of a pattern on a segment, in
    /// units of one "late row" charge contribution: the first-activated row
    /// contributes `first_row_weight(segment)`, the other three contribute
    /// 1.0 each, with the sign given by the stored data (Section 5.1).
    pub fn pattern_imbalance(&self, segment: Segment, pattern: DataPattern) -> f64 {
        let w0 = self.variation.first_row_weight(segment);
        let fills = pattern.fills();
        let mut d = w0 * fills[0].charge_sign();
        for fill in &fills[1..] {
            d += fill.charge_sign();
        }
        // Design-induced variation: some segments keep the bitline metastable
        // even under imbalanced patterns (Section 6.1.3).
        if let Some(attenuation) = self.variation.favored_attenuation(segment, pattern) {
            d *= attenuation;
        }
        d
    }

    /// The deterministic bias of a bitline (pattern imbalance converted to a
    /// voltage plus sense-amplifier offset, cell offset and aging drift), in
    /// noise-sigma units at nominal conditions.
    pub fn bitline_bias(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let params = self.variation.params();
        let subarray = self.variation.subarray_of_segment(segment);
        let pattern_term = self.pattern_imbalance(segment, pattern) * params.share_voltage;
        pattern_term
            + self.variation.sa_offset(subarray, bitline)
            + self.variation.cell_offset(segment, bitline)
            + self.variation.aging_drift(segment, bitline, conditions.age_days)
    }

    /// The effective thermal-noise scale for a bitline of a segment under the
    /// given conditions (favored segments get an additional boost).
    pub fn noise_scale(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let mut scale = self.variation.noise_scale(segment, bitline, conditions.temperature_c);
        if self.variation.favored_attenuation(segment, pattern).is_some() {
            scale *= self.variation.params().favored_noise_boost;
        }
        scale
    }

    /// Builds the hoisted per-segment probe for `(segment, pattern,
    /// conditions)`: every segment-level quantity (pattern imbalance, spatial
    /// noise factor, favored-pattern attenuation) is computed once, and
    /// per-bitline queries touch only the per-device offsets and the
    /// entropy/CDF evaluation. All probability and entropy APIs of this model
    /// delegate here.
    pub fn prober(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> SegmentProber<'_> {
        let params = self.variation.params();
        let pattern_term = self.pattern_imbalance(segment, pattern) * params.share_voltage;
        let boost = if self.variation.favored_attenuation(segment, pattern).is_some() {
            params.favored_noise_boost
        } else {
            1.0
        };
        SegmentProber {
            model: self,
            segment,
            conditions,
            subarray: self.variation.subarray_of_segment(segment),
            pattern_term,
            noise_seg: self.variation.entropy_scale()
                * self.variation.segment_noise_factor(segment),
            boost,
            blocks: self.geom.cache_blocks_per_row(),
        }
    }

    /// The per-device static offset of one bitline (sense-amplifier offset +
    /// cell offset + aging drift) — everything in the bias that does not
    /// depend on the stored data pattern or the temperature.
    fn static_offset(
        &self,
        segment: Segment,
        subarray: SubarrayAddr,
        bitline: usize,
        age_days: f64,
    ) -> f64 {
        self.variation.sa_offset(subarray, bitline)
            + self.variation.cell_offset(segment, bitline)
            + self.variation.aging_drift(segment, bitline, age_days)
    }

    /// Cached static offsets of a segment on the grid `0, stride, 2·stride…`
    /// (up to `row_bits`). The grid is the only per-bitline randomness, so
    /// pattern and temperature sweeps over the same segment reuse it.
    fn static_offsets(&self, segment: Segment, stride: usize, age_days: f64) -> Arc<Vec<f64>> {
        let key: OffsetKey = (segment.index(), stride, age_days.to_bits());
        if let Some(grid) = self.offsets.lock().expect("offset cache poisoned").map.get(&key) {
            return Arc::clone(grid);
        }
        // Compute outside the lock so concurrent workers filling *different*
        // segments never serialise; a rare double-compute of the same grid
        // yields bit-identical values, and the first insertion wins.
        let grid: Arc<Vec<f64>> = Arc::new(self.static_offset_grid(segment, stride, age_days));
        let mut cache = self.offsets.lock().expect("offset cache poisoned");
        if let Some(existing) = cache.map.get(&key) {
            return Arc::clone(existing);
        }
        cache.map.insert(key, Arc::clone(&grid));
        cache.order.push_back(key);
        let cap = offset_cache_cap();
        while cache.order.len() > cap {
            if let Some(old) = cache.order.pop_front() {
                cache.map.remove(&old);
            }
        }
        grid
    }

    /// The per-device static offsets of a segment on the grid `0, stride,
    /// 2·stride…` (up to `row_bits`), computed directly — no shared-cache
    /// lock or `Arc` bookkeeping. Sweeps that visit one segment under
    /// several data patterns (the offsets depend on neither pattern nor
    /// temperature) compute this once and pass it to
    /// [`SegmentProber::cache_block_entropy_sums_with_grid`], which is what
    /// makes the Figure 8 pattern sweep one grid derivation per segment
    /// instead of one per `(pattern, segment)` probe.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn static_offset_grid(&self, segment: Segment, stride: usize, age_days: f64) -> Vec<f64> {
        assert!(stride > 0, "bitline stride must be non-zero");
        let subarray = self.variation.subarray_of_segment(segment);
        let prober = self.variation.offset_prober(segment, subarray, age_days);
        (0..self.geom.row_bits).step_by(stride).map(|b| prober.static_offset(b)).collect()
    }

    /// Probability that the sense amplifier on `bitline` resolves to logic-1
    /// after a QUAC operation on `segment` initialised with `pattern`.
    pub fn one_probability(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        self.prober(segment, pattern, conditions).one_probability(bitline)
    }

    /// Shannon entropy of one bitline (Equation 1).
    pub fn bitline_entropy(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        self.prober(segment, pattern, conditions).bitline_entropy(bitline)
    }

    /// Probabilities of logic-1 for every bitline of a segment row, in
    /// bitline order.
    pub fn bitline_probabilities(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> Vec<f64> {
        self.prober(segment, pattern, conditions).probabilities()
    }

    /// Entropy of one cache block: the sum of its 512 bitline entropies
    /// (Section 6.1.3).
    pub fn cache_block_entropy(
        &self,
        segment: Segment,
        cache_block: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let start = cache_block * CACHE_BLOCK_BITS;
        self.prober(segment, pattern, conditions)
            .entropy_sum_strided(start, start + CACHE_BLOCK_BITS, 1)
            .0
    }

    /// Entropy of every cache block of a segment, in cache-block order.
    pub fn cache_block_entropies(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> Vec<f64> {
        self.prober(segment, pattern, conditions)
            .cache_block_entropy_sums(1)
            .into_iter()
            .map(|(sum, _)| sum)
            .collect()
    }

    /// Entropy of a whole segment: the sum of all bitline entropies
    /// (Section 6.1.4). `bitline_stride` samples every n-th bitline and
    /// scales the result, trading accuracy for speed during large
    /// characterisation sweeps; use 1 for the exact value.
    ///
    /// # Panics
    ///
    /// Panics if `bitline_stride` is zero.
    pub fn segment_entropy(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
        bitline_stride: usize,
    ) -> f64 {
        assert!(bitline_stride > 0, "bitline_stride must be non-zero");
        let (sum, count) = self
            .prober(segment, pattern, conditions)
            .entropy_sum_strided(0, self.geom.row_bits, bitline_stride);
        sum * self.geom.row_bits as f64 / count as f64
    }

    /// Entropy contributed by the bitlines owned by one chip of the module
    /// (used by the per-chip temperature study of Figure 14).
    pub fn chip_segment_entropy(
        &self,
        segment: Segment,
        chip: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
        bitline_stride: usize,
    ) -> f64 {
        assert!(bitline_stride > 0, "bitline_stride must be non-zero");
        let per_chip = self.geom.row_bits / self.variation.chip_count();
        let start = chip * per_chip;
        let (sum, count) = self
            .prober(segment, pattern, conditions)
            .entropy_sum_strided(start, start + per_chip, bitline_stride);
        sum * per_chip as f64 / count as f64
    }

    /// Builds a word-packed sampler for the whole row of a segment: the
    /// steady-state generation path of [`PackedSampler`] with this model's
    /// probabilities baked in.
    pub fn packed_sampler(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> PackedSampler {
        PackedSampler::new(&self.bitline_probabilities(segment, pattern, conditions))
    }

    /// Samples the outcome of one QUAC operation across the whole row: each
    /// bitline independently resolves to 1 with its modelled probability
    /// (thermal noise is the only per-trial randomness, footnote 2).
    pub fn sample_quac<R: Rng + ?Sized>(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
        rng: &mut R,
    ) -> BitVec {
        self.packed_sampler(segment, pattern, conditions).sample(rng)
    }

    /// Samples a QUAC outcome from precomputed per-bitline probabilities —
    /// the scalar reference path, bit-identical to [`PackedSampler`] for the
    /// same seed (each metastable bitline consumes one `u64` noise word in
    /// bitline order; near-deterministic bitlines draw nothing).
    pub fn sample_from_probabilities<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> BitVec {
        crate::sampler::sample_reference(probs, rng)
    }

    /// Builds a bit-sliced bulk-drawn sampler for the whole row of a
    /// segment: the steady-state hot path of [`BitSlicedSampler`] with this
    /// model's probabilities baked in.
    pub fn bitsliced_sampler(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> BitSlicedSampler {
        BitSlicedSampler::new(&self.bitline_probabilities(segment, pattern, conditions))
    }

    /// Samples a QUAC outcome from precomputed per-bitline probabilities
    /// under the bulk-drawn bit-sliced scheme — the scalar reference path,
    /// bit-identical to [`BitSlicedSampler`] for the same noise stream (see
    /// [`crate::sampler::sample_bitsliced_reference`] for the noise-word
    /// consumption contract).
    pub fn sample_from_probabilities_bitsliced<R: Rng + ?Sized>(
        probs: &[f64],
        rng: &mut R,
    ) -> BitVec {
        crate::sampler::sample_bitsliced_reference(probs, rng)
    }

    /// Estimates a bitline's entropy the way the paper does (Section 6.1.2):
    /// repeat the QUAC operation `trials` times, record the sense-amplifier
    /// value each time, and compute the entropy of the resulting bitstream.
    pub fn estimate_bitline_entropy_sampled<R: Rng + ?Sized>(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let threshold =
            BitThreshold::quantize(self.one_probability(segment, bitline, pattern, conditions));
        let ones = (0..trials).filter(|_| threshold.sample(rng)).count();
        crate::entropy::entropy_from_counts((trials - ones) as u64, ones as u64)
    }
}

/// A per-segment probe with every segment-level quantity hoisted out of the
/// per-bitline loop — the canonical (and only) evaluation path for QUAC
/// probabilities and entropies. Create one per `(segment, pattern,
/// conditions)` and query it for as many bitlines as needed.
#[derive(Debug, Clone)]
pub struct SegmentProber<'a> {
    model: &'a QuacAnalogModel,
    segment: Segment,
    conditions: OperatingConditions,
    subarray: SubarrayAddr,
    /// Pattern imbalance converted to a voltage (shared by all bitlines).
    pattern_term: f64,
    /// Module entropy scale × spatial segment noise factor.
    noise_seg: f64,
    /// Favored-pattern noise boost (1.0 when the segment is not favored).
    boost: f64,
    /// Cache blocks per row, for the per-block position factor.
    blocks: usize,
}

impl SegmentProber<'_> {
    /// The segment this probe is bound to.
    pub fn segment(&self) -> Segment {
        self.segment
    }

    /// Normalised bias `z = bias / noise` of one bitline given its
    /// precomputed static offset.
    #[inline]
    fn z(&self, bitline: usize, static_offset: f64) -> f64 {
        (self.pattern_term + static_offset) / self.noise_at(bitline)
    }

    /// The effective noise scale of one bitline.
    #[inline]
    fn noise_at(&self, bitline: usize) -> f64 {
        let v = self.model.variation();
        let cb_factor = v.cb_position_factor(bitline / CACHE_BLOCK_BITS, self.blocks);
        let temp_factor =
            v.temperature_factor(v.chip_of_bitline(bitline), self.conditions.temperature_c);
        ((self.noise_seg * cb_factor) * temp_factor) * self.boost
    }

    /// Probability that `bitline` resolves to logic-1.
    pub fn one_probability(&self, bitline: usize) -> f64 {
        let offset = self.model.static_offset(
            self.segment,
            self.subarray,
            bitline,
            self.conditions.age_days,
        );
        std_normal_cdf(self.z(bitline, offset))
    }

    /// Shannon entropy of `bitline` in bits (Equation 1), through the fast
    /// interpolated entropy-of-bias path.
    pub fn bitline_entropy(&self, bitline: usize) -> f64 {
        let offset = self.model.static_offset(
            self.segment,
            self.subarray,
            bitline,
            self.conditions.age_days,
        );
        entropy_of_normal_bias(self.z(bitline, offset))
    }

    /// Sums the entropy of bitlines `start, start+stride, …` below `end`,
    /// returning `(sum, evaluated count)`. This is the characterisation hot
    /// loop: per-block and per-chip noise factors are recomputed only at
    /// block/chip boundaries, and static offsets come from the shared grid
    /// cache whenever the walk is aligned to it.
    pub fn entropy_sum_strided(&self, start: usize, end: usize, stride: usize) -> (f64, usize) {
        assert!(stride > 0, "bitline stride must be non-zero");
        let grid = (start % stride == 0).then(|| {
            self.model.static_offsets(self.segment, stride, self.conditions.age_days)
        });
        self.entropy_sum_with(grid.as_ref().map(|g| g.as_slice()), start, end, stride)
    }

    /// Sums the entropy of bitlines `start, start+stride, …` below `end`
    /// with the static offsets computed inline — no shared-cache lock, no
    /// grid allocation, one fused pass. Bit-identical to
    /// [`SegmentProber::entropy_sum_strided`] (same offset function, same
    /// fold order); this is the fastest path when the segment is visited
    /// exactly once, which is what the `characterize_module` sweep does.
    pub fn entropy_sum_fused(&self, start: usize, end: usize, stride: usize) -> (f64, usize) {
        assert!(stride > 0, "bitline stride must be non-zero");
        self.entropy_sum_with(None, start, end, stride)
    }

    /// The entropy of every cache block of the segment at the given bitline
    /// stride, as `(sum over sampled bitlines, sampled count)` per block —
    /// one grid fetch for the whole row, so sweeping all blocks (the
    /// pattern-sweep hot path) touches the shared offset cache once instead
    /// of once per block.
    pub fn cache_block_entropy_sums(&self, stride: usize) -> Vec<(f64, usize)> {
        assert!(stride > 0, "bitline stride must be non-zero");
        let grid = self.model.static_offsets(self.segment, stride, self.conditions.age_days);
        self.cache_block_entropy_sums_with_grid(grid.as_slice(), stride)
    }

    /// [`SegmentProber::cache_block_entropy_sums`] with a caller-provided
    /// offsets grid (from [`QuacAnalogModel::static_offset_grid`] for this
    /// probe's segment, `stride`, and age). Pattern sweeps that revisit one
    /// segment under several patterns share one grid across all of them —
    /// the offsets depend on neither pattern nor temperature.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the grid does not cover the row at this
    /// stride.
    pub fn cache_block_entropy_sums_with_grid(
        &self,
        grid: &[f64],
        stride: usize,
    ) -> Vec<(f64, usize)> {
        assert!(stride > 0, "bitline stride must be non-zero");
        let row_bits = self.model.geometry().row_bits;
        assert!(
            grid.len() == row_bits.div_ceil(stride),
            "grid of {} offsets does not cover {row_bits} bitlines at stride {stride}",
            grid.len()
        );
        (0..self.blocks)
            .map(|cb| {
                let start = cb * CACHE_BLOCK_BITS;
                // The grid holds offsets at multiples of `stride`; a block
                // whose start is off-grid walks its own phase directly.
                let aligned = (start % stride == 0).then_some(grid);
                self.entropy_sum_with(aligned, start, start + CACHE_BLOCK_BITS, stride)
            })
            .collect()
    }

    /// The strided entropy walk with an optional pre-fetched offset grid.
    /// The walk advances in spans of constant noise (between cache-block and
    /// chip boundaries), so the inner loop is only the per-bitline offset
    /// (hoisted [`crate::variation::OffsetProber`] when no grid was given)
    /// and the entropy interpolation — bit-identical to the per-bitline
    /// recomputation it replaced (same values, same fold order).
    fn entropy_sum_with(
        &self,
        grid: Option<&[f64]>,
        start: usize,
        end: usize,
        stride: usize,
    ) -> (f64, usize) {
        let v = self.model.variation();
        let prober = match grid {
            Some(_) => None,
            None => {
                Some(v.offset_prober(self.segment, self.subarray, self.conditions.age_days))
            }
        };
        // chip_of_bitline's mapping, hoisted to span boundaries.
        let per_chip = (v.row_bits() / v.chip_count()).max(1);
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut b = start;
        while b < end {
            let block = b / CACHE_BLOCK_BITS;
            let chip = v.chip_of_bitline(b);
            let cb_factor = v.cb_position_factor(block, self.blocks);
            let temp_factor = v.temperature_factor(chip, self.conditions.temperature_c);
            let noise = ((self.noise_seg * cb_factor) * temp_factor) * self.boost;
            let chip_end =
                if chip + 1 < v.chip_count() { (chip + 1) * per_chip } else { usize::MAX };
            let span_end = end.min((block + 1) * CACHE_BLOCK_BITS).min(chip_end);
            while b < span_end {
                let offset = match (&prober, grid) {
                    (Some(p), _) => p.static_offset(b),
                    (None, Some(g)) => g[b / stride],
                    (None, None) => unreachable!("either a grid or a prober exists"),
                };
                sum += entropy_of_normal_bias((self.pattern_term + offset) / noise);
                count += 1;
                b += stride;
            }
        }
        (sum, count)
    }

    /// Writes the one-probability of every bitline of the row into `out`
    /// (cleared first), reusing its allocation.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        let row_bits = self.model.geometry().row_bits;
        let grid = self.model.static_offsets(self.segment, 1, self.conditions.age_days);
        out.clear();
        out.reserve(row_bits);
        out.extend((0..row_bits).map(|b| std_normal_cdf(self.z(b, grid[b]))));
    }

    /// The one-probability of every bitline of the row, in bitline order.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::binary_entropy_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        let variation = ModuleVariation::generate(&geom, 2024);
        QuacAnalogModel::new(geom, variation)
    }

    fn nominal() -> OperatingConditions {
        OperatingConditions::nominal()
    }

    #[test]
    fn conflicting_pattern_beats_imbalanced_pattern() {
        let m = model();
        let best = DataPattern::best_average();
        let worst: DataPattern = "1011".parse().unwrap();
        let seg = Segment::new(3);
        let e_best = m.segment_entropy(seg, best, nominal(), 1);
        let e_worst = m.segment_entropy(seg, worst, nominal(), 1);
        assert!(
            e_best > 4.0 * e_worst,
            "best {e_best} should dominate worst {e_worst}"
        );
    }

    #[test]
    fn uniform_patterns_have_negligible_entropy() {
        let m = model();
        let seg = Segment::new(1);
        for p in ["0000", "1111"] {
            let pattern: DataPattern = p.parse().unwrap();
            let e = m.segment_entropy(seg, pattern, nominal(), 1);
            assert!(e < 1.0, "pattern {p} entropy {e}");
        }
    }

    #[test]
    fn pattern_imbalance_is_near_zero_for_best_patterns() {
        let m = model();
        let seg = Segment::new(0);
        let d_best = m.pattern_imbalance(seg, DataPattern::best_average()).abs();
        let d_comp = m.pattern_imbalance(seg, "1000".parse().unwrap()).abs();
        let d_bad = m.pattern_imbalance(seg, "1011".parse().unwrap()).abs();
        assert!(d_best < 1.0);
        assert!(d_comp < 1.0);
        assert!(d_bad > 3.0);
    }

    #[test]
    fn probabilities_are_valid_and_deterministic() {
        let m = model();
        let seg = Segment::new(2);
        let probs = m.bitline_probabilities(seg, DataPattern::best_average(), nominal());
        assert_eq!(probs.len(), m.geometry().row_bits);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let probs2 = m.bitline_probabilities(seg, DataPattern::best_average(), nominal());
        assert_eq!(probs, probs2);
    }

    #[test]
    fn segment_entropy_equals_sum_of_cache_blocks() {
        let m = model();
        let seg = Segment::new(5);
        let pattern = DataPattern::best_average();
        let total = m.segment_entropy(seg, pattern, nominal(), 1);
        let by_blocks: f64 = m.cache_block_entropies(seg, pattern, nominal()).iter().sum();
        assert!((total - by_blocks).abs() < 1e-6);
    }

    #[test]
    fn strided_segment_entropy_approximates_exact() {
        let m = model();
        let seg = Segment::new(4);
        let pattern = DataPattern::best_average();
        let exact = m.segment_entropy(seg, pattern, nominal(), 1);
        let approx = m.segment_entropy(seg, pattern, nominal(), 4);
        // The strided estimate should be within ~40% of the exact value for
        // the tiny geometry (it converges much tighter for full-size rows).
        assert!((approx - exact).abs() / exact.max(1e-9) < 0.4, "exact {exact} approx {approx}");
    }

    #[test]
    fn sampled_estimate_matches_analytic_entropy_for_metastable_bitline() {
        let m = model();
        let seg = Segment::new(3);
        let pattern = DataPattern::best_average();
        // Find the most metastable bitline of this segment.
        let probs = m.bitline_probabilities(seg, pattern, nominal());
        let (best_bitline, p) = probs
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .unwrap();
        let analytic = binary_entropy_bits(p);
        let mut rng = StdRng::seed_from_u64(9);
        let sampled =
            m.estimate_bitline_entropy_sampled(seg, best_bitline, pattern, nominal(), 1000, &mut rng);
        assert!((analytic - sampled).abs() < 0.15, "analytic {analytic} sampled {sampled}");
    }

    #[test]
    fn sampling_respects_probabilities() {
        let probs = vec![0.0, 1.0, 0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = [0u32; 4];
        for _ in 0..2000 {
            let s = QuacAnalogModel::sample_from_probabilities(&probs, &mut rng);
            for (i, one) in ones.iter_mut().enumerate() {
                *one += s.get(i) as u32;
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 2000);
        assert!((ones[2] as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn prober_agrees_with_single_bitline_queries() {
        // The prober is the canonical path; the convenience APIs and the
        // cached-grid sweep must agree with it exactly, bit for bit.
        let m = model();
        let seg = Segment::new(3);
        let pattern = DataPattern::best_average();
        let cond = OperatingConditions::at_temperature(63.0).aged(12.0);
        let prober = m.prober(seg, pattern, cond);
        let probs = m.bitline_probabilities(seg, pattern, cond);
        for b in (0..m.geometry().row_bits).step_by(17) {
            assert_eq!(prober.one_probability(b), probs[b], "bitline {b}");
            assert_eq!(
                prober.one_probability(b),
                m.one_probability(seg, b, pattern, cond),
                "bitline {b}"
            );
            assert_eq!(
                prober.bitline_entropy(b),
                m.bitline_entropy(seg, b, pattern, cond),
                "bitline {b}"
            );
        }
        // A strided walk equals the per-bitline sum exactly (same fold order,
        // cached offsets and fresh offsets agree bit for bit).
        let (sum, count) = prober.entropy_sum_strided(0, m.geometry().row_bits, 5);
        let by_hand: f64 =
            (0..m.geometry().row_bits).step_by(5).map(|b| prober.bitline_entropy(b)).sum();
        assert_eq!(sum, by_hand);
        assert_eq!(count, m.geometry().row_bits.div_ceil(5));
    }

    #[test]
    fn fused_and_grid_paths_are_bit_identical_to_the_cached_walk() {
        let m = model();
        let pattern = DataPattern::best_average();
        let cond = OperatingConditions::at_temperature(57.0).aged(3.0);
        for seg in [Segment::new(1), Segment::new(9)] {
            for stride in [1usize, 3, 16] {
                let prober = m.prober(seg, pattern, cond);
                let cached = prober.entropy_sum_strided(0, m.geometry().row_bits, stride);
                let fused = prober.entropy_sum_fused(0, m.geometry().row_bits, stride);
                assert_eq!(cached, fused, "segment {seg:?} stride {stride}");
                let grid = m.static_offset_grid(seg, stride, cond.age_days);
                assert_eq!(
                    prober.cache_block_entropy_sums(stride),
                    prober.cache_block_entropy_sums_with_grid(&grid, stride),
                    "segment {seg:?} stride {stride}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn short_grid_is_rejected() {
        let m = model();
        let prober = m.prober(Segment::new(0), DataPattern::best_average(), nominal());
        let _ = prober.cache_block_entropy_sums_with_grid(&[0.0; 3], 1);
    }

    #[test]
    fn offset_cache_is_transparent_across_clones() {
        let m = model();
        let seg = Segment::new(2);
        let pattern = DataPattern::best_average();
        // Clones share the cache; a fresh model recomputes — all identical.
        let warm = m.segment_entropy(seg, pattern, nominal(), 4);
        let via_clone = m.clone().segment_entropy(seg, pattern, nominal(), 4);
        let cold = model().segment_entropy(seg, pattern, nominal(), 4);
        assert_eq!(warm, via_clone);
        assert_eq!(warm, cold);
    }

    #[test]
    fn temperature_changes_entropy() {
        let m = model();
        let seg = Segment::new(7);
        let pattern = DataPattern::best_average();
        let e50 = m.segment_entropy(seg, pattern, OperatingConditions::at_temperature(50.0), 1);
        let e85 = m.segment_entropy(seg, pattern, OperatingConditions::at_temperature(85.0), 1);
        assert!((e50 - e85).abs() > 1e-6, "temperature should shift entropy");
    }

    #[test]
    fn aging_changes_entropy_slightly() {
        let m = model();
        let seg = Segment::new(6);
        let pattern = DataPattern::best_average();
        let fresh = m.segment_entropy(seg, pattern, nominal(), 1);
        let aged = m.segment_entropy(seg, pattern, nominal().aged(30.0), 1);
        let rel = (fresh - aged).abs() / fresh.max(1e-9);
        assert!(rel < 0.25, "aging drift should be small, got {rel}");
    }

    #[test]
    #[should_panic(expected = "bitline_stride")]
    fn zero_stride_panics() {
        let m = model();
        let _ = m.segment_entropy(Segment::new(0), DataPattern::best_average(), nominal(), 0);
    }
}
