//! The QUAC metastability model: per-bitline probabilities, entropies, and
//! sampled QUAC outcomes for one DRAM module.

use crate::conditions::OperatingConditions;
use crate::math::{binary_entropy_bits, std_normal_cdf};
use crate::variation::ModuleVariation;
use qt_dram_core::{BitVec, DataPattern, DramGeometry, Segment, CACHE_BLOCK_BITS};
use rand::Rng;

/// Electrical model of QUAC operations on one DRAM module.
///
/// The model answers one question: *given that all four rows of `segment`
/// were initialised with `pattern` and a QUAC operation was performed under
/// `conditions`, what is the probability that the sense amplifier on
/// `bitline` resolves to logic-1?* Everything else (entropies, sampled
/// bitstreams, characterisation maps) derives from that probability.
#[derive(Debug, Clone)]
pub struct QuacAnalogModel {
    geom: DramGeometry,
    variation: ModuleVariation,
}

impl QuacAnalogModel {
    /// Creates a model for a module with the given geometry and variation
    /// profile.
    pub fn new(geom: DramGeometry, variation: ModuleVariation) -> Self {
        QuacAnalogModel { geom, variation }
    }

    /// The module geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geom
    }

    /// The module's process-variation profile.
    pub fn variation(&self) -> &ModuleVariation {
        &self.variation
    }

    /// The signed charge-sharing imbalance of a pattern on a segment, in
    /// units of one "late row" charge contribution: the first-activated row
    /// contributes `first_row_weight(segment)`, the other three contribute
    /// 1.0 each, with the sign given by the stored data (Section 5.1).
    pub fn pattern_imbalance(&self, segment: Segment, pattern: DataPattern) -> f64 {
        let w0 = self.variation.first_row_weight(segment);
        let fills = pattern.fills();
        let mut d = w0 * fills[0].charge_sign();
        for fill in &fills[1..] {
            d += fill.charge_sign();
        }
        // Design-induced variation: some segments keep the bitline metastable
        // even under imbalanced patterns (Section 6.1.3).
        if let Some(attenuation) = self.variation.favored_attenuation(segment, pattern) {
            d *= attenuation;
        }
        d
    }

    /// The deterministic bias of a bitline (pattern imbalance converted to a
    /// voltage plus sense-amplifier offset, cell offset and aging drift), in
    /// noise-sigma units at nominal conditions.
    pub fn bitline_bias(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let params = self.variation.params();
        let subarray = self.variation.subarray_of_segment(segment);
        let pattern_term = self.pattern_imbalance(segment, pattern) * params.share_voltage;
        pattern_term
            + self.variation.sa_offset(subarray, bitline)
            + self.variation.cell_offset(segment, bitline)
            + self.variation.aging_drift(segment, bitline, conditions.age_days)
    }

    /// The effective thermal-noise scale for a bitline of a segment under the
    /// given conditions (favored segments get an additional boost).
    pub fn noise_scale(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let mut scale = self.variation.noise_scale(segment, bitline, conditions.temperature_c);
        if self.variation.favored_attenuation(segment, pattern).is_some() {
            scale *= self.variation.params().favored_noise_boost;
        }
        scale
    }

    /// Probability that the sense amplifier on `bitline` resolves to logic-1
    /// after a QUAC operation on `segment` initialised with `pattern`.
    pub fn one_probability(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let bias = self.bitline_bias(segment, bitline, pattern, conditions);
        let noise = self.noise_scale(segment, bitline, pattern, conditions);
        std_normal_cdf(bias / noise)
    }

    /// Shannon entropy of one bitline (Equation 1).
    pub fn bitline_entropy(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        binary_entropy_bits(self.one_probability(segment, bitline, pattern, conditions))
    }

    /// Probabilities of logic-1 for every bitline of a segment row, in
    /// bitline order.
    pub fn bitline_probabilities(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> Vec<f64> {
        (0..self.geom.row_bits)
            .map(|b| self.one_probability(segment, b, pattern, conditions))
            .collect()
    }

    /// Entropy of one cache block: the sum of its 512 bitline entropies
    /// (Section 6.1.3).
    pub fn cache_block_entropy(
        &self,
        segment: Segment,
        cache_block: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> f64 {
        let start = cache_block * CACHE_BLOCK_BITS;
        (start..start + CACHE_BLOCK_BITS)
            .map(|b| self.bitline_entropy(segment, b, pattern, conditions))
            .sum()
    }

    /// Entropy of every cache block of a segment, in cache-block order.
    pub fn cache_block_entropies(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
    ) -> Vec<f64> {
        (0..self.geom.cache_blocks_per_row())
            .map(|cb| self.cache_block_entropy(segment, cb, pattern, conditions))
            .collect()
    }

    /// Entropy of a whole segment: the sum of all bitline entropies
    /// (Section 6.1.4). `bitline_stride` samples every n-th bitline and
    /// scales the result, trading accuracy for speed during large
    /// characterisation sweeps; use 1 for the exact value.
    ///
    /// # Panics
    ///
    /// Panics if `bitline_stride` is zero.
    pub fn segment_entropy(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
        bitline_stride: usize,
    ) -> f64 {
        assert!(bitline_stride > 0, "bitline_stride must be non-zero");
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut b = 0;
        while b < self.geom.row_bits {
            sum += self.bitline_entropy(segment, b, pattern, conditions);
            count += 1;
            b += bitline_stride;
        }
        sum * self.geom.row_bits as f64 / count as f64
    }

    /// Entropy contributed by the bitlines owned by one chip of the module
    /// (used by the per-chip temperature study of Figure 14).
    pub fn chip_segment_entropy(
        &self,
        segment: Segment,
        chip: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
        bitline_stride: usize,
    ) -> f64 {
        assert!(bitline_stride > 0, "bitline_stride must be non-zero");
        let per_chip = self.geom.row_bits / self.variation.chip_count();
        let start = chip * per_chip;
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut b = start;
        while b < start + per_chip {
            sum += self.bitline_entropy(segment, b, pattern, conditions);
            count += 1;
            b += bitline_stride;
        }
        sum * per_chip as f64 / count as f64
    }

    /// Samples the outcome of one QUAC operation across the whole row: each
    /// bitline independently resolves to 1 with its modelled probability
    /// (thermal noise is the only per-trial randomness, footnote 2).
    pub fn sample_quac<R: Rng + ?Sized>(
        &self,
        segment: Segment,
        pattern: DataPattern,
        conditions: OperatingConditions,
        rng: &mut R,
    ) -> BitVec {
        let probs = self.bitline_probabilities(segment, pattern, conditions);
        Self::sample_from_probabilities(&probs, rng)
    }

    /// Samples a QUAC outcome from precomputed per-bitline probabilities.
    /// Streaming random-number generation caches the probabilities of its
    /// chosen segment once and calls this per iteration.
    pub fn sample_from_probabilities<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> BitVec {
        BitVec::from_bits(probs.iter().map(|&p| rng.gen::<f64>() < p))
    }

    /// Estimates a bitline's entropy the way the paper does (Section 6.1.2):
    /// repeat the QUAC operation `trials` times, record the sense-amplifier
    /// value each time, and compute the entropy of the resulting bitstream.
    pub fn estimate_bitline_entropy_sampled<R: Rng + ?Sized>(
        &self,
        segment: Segment,
        bitline: usize,
        pattern: DataPattern,
        conditions: OperatingConditions,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let p = self.one_probability(segment, bitline, pattern, conditions);
        let ones = (0..trials).filter(|_| rng.gen::<f64>() < p).count();
        crate::entropy::entropy_from_counts((trials - ones) as u64, ones as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        let variation = ModuleVariation::generate(&geom, 2024);
        QuacAnalogModel::new(geom, variation)
    }

    fn nominal() -> OperatingConditions {
        OperatingConditions::nominal()
    }

    #[test]
    fn conflicting_pattern_beats_imbalanced_pattern() {
        let m = model();
        let best = DataPattern::best_average();
        let worst: DataPattern = "1011".parse().unwrap();
        let seg = Segment::new(3);
        let e_best = m.segment_entropy(seg, best, nominal(), 1);
        let e_worst = m.segment_entropy(seg, worst, nominal(), 1);
        assert!(
            e_best > 4.0 * e_worst,
            "best {e_best} should dominate worst {e_worst}"
        );
    }

    #[test]
    fn uniform_patterns_have_negligible_entropy() {
        let m = model();
        let seg = Segment::new(1);
        for p in ["0000", "1111"] {
            let pattern: DataPattern = p.parse().unwrap();
            let e = m.segment_entropy(seg, pattern, nominal(), 1);
            assert!(e < 1.0, "pattern {p} entropy {e}");
        }
    }

    #[test]
    fn pattern_imbalance_is_near_zero_for_best_patterns() {
        let m = model();
        let seg = Segment::new(0);
        let d_best = m.pattern_imbalance(seg, DataPattern::best_average()).abs();
        let d_comp = m.pattern_imbalance(seg, "1000".parse().unwrap()).abs();
        let d_bad = m.pattern_imbalance(seg, "1011".parse().unwrap()).abs();
        assert!(d_best < 1.0);
        assert!(d_comp < 1.0);
        assert!(d_bad > 3.0);
    }

    #[test]
    fn probabilities_are_valid_and_deterministic() {
        let m = model();
        let seg = Segment::new(2);
        let probs = m.bitline_probabilities(seg, DataPattern::best_average(), nominal());
        assert_eq!(probs.len(), m.geometry().row_bits);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let probs2 = m.bitline_probabilities(seg, DataPattern::best_average(), nominal());
        assert_eq!(probs, probs2);
    }

    #[test]
    fn segment_entropy_equals_sum_of_cache_blocks() {
        let m = model();
        let seg = Segment::new(5);
        let pattern = DataPattern::best_average();
        let total = m.segment_entropy(seg, pattern, nominal(), 1);
        let by_blocks: f64 = m.cache_block_entropies(seg, pattern, nominal()).iter().sum();
        assert!((total - by_blocks).abs() < 1e-6);
    }

    #[test]
    fn strided_segment_entropy_approximates_exact() {
        let m = model();
        let seg = Segment::new(4);
        let pattern = DataPattern::best_average();
        let exact = m.segment_entropy(seg, pattern, nominal(), 1);
        let approx = m.segment_entropy(seg, pattern, nominal(), 4);
        // The strided estimate should be within ~40% of the exact value for
        // the tiny geometry (it converges much tighter for full-size rows).
        assert!((approx - exact).abs() / exact.max(1e-9) < 0.4, "exact {exact} approx {approx}");
    }

    #[test]
    fn sampled_estimate_matches_analytic_entropy_for_metastable_bitline() {
        let m = model();
        let seg = Segment::new(3);
        let pattern = DataPattern::best_average();
        // Find the most metastable bitline of this segment.
        let probs = m.bitline_probabilities(seg, pattern, nominal());
        let (best_bitline, p) = probs
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .unwrap();
        let analytic = binary_entropy_bits(p);
        let mut rng = StdRng::seed_from_u64(9);
        let sampled =
            m.estimate_bitline_entropy_sampled(seg, best_bitline, pattern, nominal(), 1000, &mut rng);
        assert!((analytic - sampled).abs() < 0.15, "analytic {analytic} sampled {sampled}");
    }

    #[test]
    fn sampling_respects_probabilities() {
        let probs = vec![0.0, 1.0, 0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = [0u32; 4];
        for _ in 0..2000 {
            let s = QuacAnalogModel::sample_from_probabilities(&probs, &mut rng);
            for (i, one) in ones.iter_mut().enumerate() {
                *one += s.get(i) as u32;
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 2000);
        assert!((ones[2] as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn temperature_changes_entropy() {
        let m = model();
        let seg = Segment::new(7);
        let pattern = DataPattern::best_average();
        let e50 = m.segment_entropy(seg, pattern, OperatingConditions::at_temperature(50.0), 1);
        let e85 = m.segment_entropy(seg, pattern, OperatingConditions::at_temperature(85.0), 1);
        assert!((e50 - e85).abs() > 1e-6, "temperature should shift entropy");
    }

    #[test]
    fn aging_changes_entropy_slightly() {
        let m = model();
        let seg = Segment::new(6);
        let pattern = DataPattern::best_average();
        let fresh = m.segment_entropy(seg, pattern, nominal(), 1);
        let aged = m.segment_entropy(seg, pattern, nominal().aged(30.0), 1);
        let rel = (fresh - aged).abs() / fresh.max(1e-9);
        assert!(rel < 0.25, "aging drift should be small, got {rel}");
    }

    #[test]
    #[should_panic(expected = "bitline_stride")]
    fn zero_stride_panics() {
        let m = model();
        let _ = m.segment_entropy(Segment::new(0), DataPattern::best_average(), nominal(), 0);
    }
}
