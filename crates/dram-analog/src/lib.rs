//! # qt-dram-analog
//!
//! Electrical and process-variation model of DRAM cells, bitlines, and sense
//! amplifiers, built to reproduce the QUAC phenomenon (quadruple row
//! activation, Section 4 of the paper) and the failure mechanisms used by
//! prior DRAM-based TRNGs (reduced-tRCD reads, reduced-tRP activations,
//! retention failures).
//!
//! ## Physical story
//!
//! A QUAC operation opens all four rows of a segment while the bitline is
//! mid-precharge. Every cell on the bitline shares charge with it, so the net
//! deviation from VDD/2 is the *signed sum* of the four cells' contributions,
//! with the first-activated row contributing more because its cell has more
//! time to share charge (Section 6.1.3). When the rows store conflicting
//! data, the net deviation lands inside the sense amplifier's unreliable
//! sensing margin and the amplifier resolves non-deterministically, seeded by
//! thermal noise but biased by its per-device offset (manufacturing process
//! variation, footnote 2).
//!
//! The model in this crate expresses exactly that: a deterministic,
//! per-device *bias* (charge-sharing imbalance + sense-amplifier offset +
//! systematic spatial variation) divided by a *thermal-noise scale* yields the
//! per-bitline probability of sampling logic-1, from which Shannon entropy
//! and sampled bitstreams follow.
//!
//! ## Example
//!
//! ```
//! use qt_dram_analog::{ModuleVariation, QuacAnalogModel, OperatingConditions};
//! use qt_dram_core::{DramGeometry, DataPattern, Segment};
//!
//! let geom = DramGeometry::tiny_test();
//! let variation = ModuleVariation::generate(&geom, 7);
//! let model = QuacAnalogModel::new(geom, variation);
//! let env = OperatingConditions::default();
//!
//! // The paper's best pattern produces far more entropy than a
//! // heavily-imbalanced one.
//! let best = model.segment_entropy(qt_dram_core::Segment::new(0), DataPattern::best_average(), env, 1);
//! let worst = model.segment_entropy(Segment::new(0), "1011".parse().unwrap(), env, 1);
//! assert!(best > worst);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod entropy;
pub mod failures;
pub mod math;
pub mod model;
pub mod noise;
pub mod params;
pub mod profiles;
pub mod sampler;
pub mod variation;

pub use conditions::{OperatingConditions, TemperatureRamp};
pub use entropy::{binary_entropy, bitstream_entropy, entropy_from_counts};
pub use failures::{FailureModel, RetentionModel};
pub use model::{QuacAnalogModel, SegmentProber};
pub use noise::NoiseRng;
pub use params::AnalogParams;
pub use profiles::{ModuleProfile, TemperatureTrend, PAPER_MODULES};
pub use sampler::{BitSlicedSampler, BitThreshold, PackedSampler};
pub use variation::{ModuleVariation, OffsetProber};
