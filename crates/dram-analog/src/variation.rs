//! Deterministic process-variation model of one DRAM module.
//!
//! Every per-component quantity (sense-amplifier offset, cell offset,
//! per-segment cell-capacitance variation, spatial systematic variation,
//! per-chip temperature response) is derived by counter-mode hashing of a
//! module seed, so it is stable across runs and across crates — the same
//! property real silicon has, and the property QUAC-TRNG's one-time
//! characterisation step relies on (Section 6.1.2).

use crate::math::{hash_coords, hash_to_unit, normal_at, uniform_at, CoordHasher};
use crate::params::AnalogParams;
use qt_dram_core::{DataPattern, DramGeometry, Segment, SubarrayAddr};
use serde::{Deserialize, Serialize};

/// Domain-separation tags for the different variation components.
mod tag {
    pub const SA_OFFSET: u64 = 0x01;
    pub const CELL_OFFSET: u64 = 0x02;
    pub const FIRST_ROW_WEIGHT: u64 = 0x03;
    pub const FAVORED: u64 = 0x04;
    pub const FAVORED_ATTEN: u64 = 0x05;
    pub const SEGMENT_NOISE: u64 = 0x06;
    pub const AGING: u64 = 0x07;
    pub const CHIP_TREND: u64 = 0x08;
    pub const PHASE: u64 = 0x09;
}

/// The frozen process-variation state of one DRAM module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleVariation {
    seed: u64,
    params: AnalogParams,
    chip_count: usize,
    row_bits: usize,
    segments_per_bank: usize,
    rows_per_subarray: usize,
    /// Per-chip temperature coefficient (positive: trend 1, entropy rises
    /// with temperature; negative: trend 2).
    chip_temp_coeff: Vec<f64>,
    phase_long: f64,
    phase_short: f64,
    /// Module-level scale on the thermal-noise/entropy budget, used to match
    /// the per-module averages of Table 3.
    entropy_scale: f64,
}

impl ModuleVariation {
    /// Generates the variation profile of a module from a seed, using the
    /// calibrated default parameters.
    pub fn generate(geom: &DramGeometry, seed: u64) -> Self {
        Self::generate_with(geom, seed, AnalogParams::calibrated(), 1.0)
    }

    /// Generates the variation profile with explicit parameters and a
    /// module-level entropy scale.
    pub fn generate_with(
        geom: &DramGeometry,
        seed: u64,
        params: AnalogParams,
        entropy_scale: f64,
    ) -> Self {
        let chip_count = geom.chips_per_rank.max(1);
        let chip_temp_coeff = (0..chip_count)
            .map(|c| {
                let u = uniform_at(seed, tag::CHIP_TREND, c as u64, 0);
                if u < params.trend1_fraction {
                    // Trend 1: entropy increases with temperature.
                    params.temp_coeff_trend1 * (0.7 + 0.6 * uniform_at(seed, tag::CHIP_TREND, c as u64, 1))
                } else {
                    // Trend 2: entropy decreases with temperature.
                    -params.temp_coeff_trend2
                        * (0.7 + 0.6 * uniform_at(seed, tag::CHIP_TREND, c as u64, 2))
                }
            })
            .collect();
        let phase_long = uniform_at(seed, tag::PHASE, 0, 0) * std::f64::consts::TAU;
        let phase_short = uniform_at(seed, tag::PHASE, 1, 0) * std::f64::consts::TAU;
        ModuleVariation {
            seed,
            params,
            chip_count,
            row_bits: geom.row_bits,
            segments_per_bank: geom.segments_per_bank(),
            rows_per_subarray: geom.rows_per_subarray,
            chip_temp_coeff,
            phase_long,
            phase_short,
            entropy_scale,
        }
    }

    /// The module seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The analog parameters backing this profile.
    pub fn params(&self) -> &AnalogParams {
        &self.params
    }

    /// The module-level entropy scale.
    pub fn entropy_scale(&self) -> f64 {
        self.entropy_scale
    }

    /// Number of chips in the rank (bitlines are striped across chips).
    pub fn chip_count(&self) -> usize {
        self.chip_count
    }

    /// The chip that owns a given module-level bitline.
    pub fn chip_of_bitline(&self, bitline: usize) -> usize {
        let per_chip = (self.row_bits / self.chip_count).max(1);
        (bitline / per_chip).min(self.chip_count - 1)
    }

    /// The per-chip temperature coefficient (positive for trend-1 chips).
    pub fn chip_temp_coeff(&self, chip: usize) -> f64 {
        self.chip_temp_coeff[chip.min(self.chip_count - 1)]
    }

    /// Returns `true` if the chip follows trend 1 (entropy rises with
    /// temperature, Section 8).
    pub fn chip_follows_trend1(&self, chip: usize) -> bool {
        self.chip_temp_coeff(chip) >= 0.0
    }

    /// Sense-amplifier offset for a bitline of a subarray, in noise-sigma
    /// units. The offset is a property of the physical sense amplifier, so
    /// all segments of a subarray share it.
    pub fn sa_offset(&self, subarray: SubarrayAddr, bitline: usize) -> f64 {
        self.params.sa_offset_sigma
            * normal_at(self.seed ^ tag::SA_OFFSET, subarray.index() as u64, bitline as u64, 0)
    }

    /// Cell-side offset component for a bitline in a given segment (cell
    /// capacitance / access-transistor variation), in noise-sigma units.
    pub fn cell_offset(&self, segment: Segment, bitline: usize) -> f64 {
        self.params.cell_offset_sigma
            * normal_at(self.seed ^ tag::CELL_OFFSET, segment.index() as u64, bitline as u64, 0)
    }

    /// Slow drift of the per-bitline offset with device age, in noise-sigma
    /// units. Calibrated so 30 days of aging changes segment entropy by a few
    /// percent (Section 8).
    pub fn aging_drift(&self, segment: Segment, bitline: usize, age_days: f64) -> f64 {
        if age_days <= 0.0 {
            return 0.0;
        }
        let scale = self.params.aging_drift_30day * (age_days / 30.0).sqrt();
        self.params.sa_offset_sigma
            * scale
            * normal_at(self.seed ^ tag::AGING, segment.index() as u64, bitline as u64, 0)
    }

    /// Builds the hoisted per-bitline static-offset sampler for one segment:
    /// the per-segment hash prefixes of the sense-amplifier, cell, and aging
    /// components are folded once ([`CoordHasher`]), so each bitline pays
    /// two SplitMix rounds per component instead of four. Bit-identical to
    /// `sa_offset + cell_offset + aging_drift` (tested), and the hot path of
    /// every characterisation sweep.
    pub fn offset_prober(
        &self,
        segment: Segment,
        subarray: SubarrayAddr,
        age_days: f64,
    ) -> OffsetProber {
        let aging = if age_days <= 0.0 {
            None
        } else {
            let scale = self.params.aging_drift_30day * (age_days / 30.0).sqrt();
            Some((
                self.params.sa_offset_sigma * scale,
                CoordHasher::new(self.seed ^ tag::AGING, segment.index() as u64),
            ))
        };
        OffsetProber {
            sa: CoordHasher::new(self.seed ^ tag::SA_OFFSET, subarray.index() as u64),
            cell: CoordHasher::new(self.seed ^ tag::CELL_OFFSET, segment.index() as u64),
            sa_sigma: self.params.sa_offset_sigma,
            cell_sigma: self.params.cell_offset_sigma,
            aging,
        }
    }

    /// The charge-sharing weight of the first-activated row for a segment.
    pub fn first_row_weight(&self, segment: Segment) -> f64 {
        let n = normal_at(self.seed ^ tag::FIRST_ROW_WEIGHT, segment.index() as u64, 0, 0);
        self.params.first_row_weight * (1.0 + self.params.first_row_weight_sigma * n)
    }

    /// Whether design-induced variation makes this segment "favor" the given
    /// data pattern (Section 6.1.3's explanation for the 53-bit cache-block
    /// entropy outlier), and if so the attenuation applied to the pattern
    /// imbalance.
    pub fn favored_attenuation(&self, segment: Segment, pattern: DataPattern) -> Option<f64> {
        let h = hash_coords(
            self.seed ^ tag::FAVORED,
            segment.index() as u64,
            pattern.index() as u64,
            0,
        );
        if hash_to_unit(h) < self.params.favored_segment_prob {
            let a = uniform_at(
                self.seed ^ tag::FAVORED_ATTEN,
                segment.index() as u64,
                pattern.index() as u64,
                0,
            );
            Some(a * self.params.favored_attenuation_max)
        } else {
            None
        }
    }

    /// Systematic spatial noise-scale factor for a segment: a long- and a
    /// short-period wave, a per-segment lognormal factor, the rise towards
    /// the end of the bank, and the drop over the final segments (Figure 9).
    pub fn segment_noise_factor(&self, segment: Segment) -> f64 {
        let p = &self.params;
        let s = segment.index() as f64;
        let total = self.segments_per_bank.max(1) as f64;

        let wave = 1.0
            + p.wave_amplitude_long * (std::f64::consts::TAU * s / p.wave_period_long + self.phase_long).sin()
            + p.wave_amplitude_short
                * (std::f64::consts::TAU * s / p.wave_period_short + self.phase_short).sin();

        // Per-segment lognormal factor (random but deterministic).
        let n = normal_at(self.seed ^ tag::SEGMENT_NOISE, segment.index() as u64, 0, 0);
        let random = (p.segment_noise_sigma * n).exp();

        // Rise towards the end of the bank, then a sharp drop at the very end.
        let frac = s / total;
        let mut edge = 1.0;
        if frac > 1.0 - p.end_rise_fraction {
            let x = (frac - (1.0 - p.end_rise_fraction)) / p.end_rise_fraction;
            edge += p.end_rise_amplitude * x;
        }
        if frac > 1.0 - p.end_drop_fraction {
            let x = (frac - (1.0 - p.end_drop_fraction)) / p.end_drop_fraction;
            edge -= (p.end_rise_amplitude + p.end_drop_amplitude) * x;
        }

        (wave * random * edge).max(0.05)
    }

    /// Cache-block position factor within a segment: entropy peaks around the
    /// middle of the segment and deteriorates towards the highest-numbered
    /// cache blocks (Figure 10).
    pub fn cb_position_factor(&self, cache_block: usize, blocks_per_row: usize) -> f64 {
        let p = &self.params;
        let n = blocks_per_row.max(1) as f64;
        let x = (cache_block as f64 + 0.5) / n;
        let bump = p.cb_profile_amplitude * (std::f64::consts::PI * x).sin();
        let decline = p.cb_profile_decline * x;
        (1.0 - p.cb_profile_amplitude / 2.0 + bump - decline).max(0.05)
    }

    /// Temperature factor for a chip relative to the 50 °C characterisation
    /// point. Multiplies the thermal-noise scale; > 1 means more metastable
    /// bitlines (more entropy).
    pub fn temperature_factor(&self, chip: usize, temperature_c: f64) -> f64 {
        let coeff = self.chip_temp_coeff(chip);
        (1.0 + coeff * (temperature_c - 50.0)).max(0.05)
    }

    /// The combined noise scale for a bitline of a segment under the given
    /// temperature: module scale × spatial factor × cache-block factor ×
    /// chip temperature factor.
    pub fn noise_scale(
        &self,
        segment: Segment,
        bitline: usize,
        temperature_c: f64,
    ) -> f64 {
        let cb = bitline / qt_dram_core::CACHE_BLOCK_BITS;
        let blocks = self.row_bits / qt_dram_core::CACHE_BLOCK_BITS;
        let chip = self.chip_of_bitline(bitline);
        self.entropy_scale
            * self.segment_noise_factor(segment)
            * self.cb_position_factor(cb, blocks)
            * self.temperature_factor(chip, temperature_c)
    }

    /// The subarray a segment belongs to (needed to look up its shared sense
    /// amplifiers).
    pub fn subarray_of_segment(&self, segment: Segment) -> SubarrayAddr {
        SubarrayAddr::new(segment.index() * qt_dram_core::ROWS_PER_SEGMENT / self.rows_per_subarray)
    }

    /// Number of segments in one bank of this module.
    pub fn segments_per_bank(&self) -> usize {
        self.segments_per_bank
    }

    /// Module-level row width in bits.
    pub fn row_bits(&self) -> usize {
        self.row_bits
    }
}

/// Per-segment static-offset sampler with the hash prefixes hoisted (see
/// [`ModuleVariation::offset_prober`]). One instance serves every bitline of
/// one `(segment, age)` visit.
#[derive(Debug, Clone, Copy)]
pub struct OffsetProber {
    sa: CoordHasher,
    cell: CoordHasher,
    sa_sigma: f64,
    cell_sigma: f64,
    /// `(sa_offset_sigma · aging scale, hasher)`; `None` at age 0.
    aging: Option<(f64, CoordHasher)>,
}

impl OffsetProber {
    /// The per-device static offset of one bitline: sense-amplifier offset +
    /// cell offset + aging drift, summed in the same order as the unhoisted
    /// path so the result is bit-identical.
    #[inline]
    pub fn static_offset(&self, bitline: usize) -> f64 {
        let b = bitline as u64;
        let sa = self.sa_sigma * self.sa.normal(b, 0);
        let cell = self.cell_sigma * self.cell.normal(b, 0);
        let aging = match self.aging {
            Some((scaled_sigma, hasher)) => scaled_sigma * hasher.normal(b, 0),
            None => 0.0,
        };
        sa + cell + aging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_core::DramGeometry;

    fn variation() -> ModuleVariation {
        ModuleVariation::generate(&DramGeometry::ddr4_4gb_x8_module(), 0xC0FFEE)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        let a = ModuleVariation::generate(&g, 1);
        let b = ModuleVariation::generate(&g, 1);
        let c = ModuleVariation::generate(&g, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.sa_offset(SubarrayAddr::new(3), 100), b.sa_offset(SubarrayAddr::new(3), 100));
        assert_ne!(a.sa_offset(SubarrayAddr::new(3), 100), c.sa_offset(SubarrayAddr::new(3), 100));
    }

    #[test]
    fn sa_offsets_have_calibrated_spread() {
        let v = variation();
        let n = 5000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for b in 0..n {
            let x = v.sa_offset(SubarrayAddr::new(0), b);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        let expected = v.params().sa_offset_sigma;
        assert!(mean.abs() < expected * 0.1, "mean {mean}");
        assert!((std - expected).abs() < expected * 0.1, "std {std} vs {expected}");
    }

    #[test]
    fn chip_mapping_covers_all_chips() {
        let v = variation();
        let mut seen = std::collections::HashSet::new();
        for b in (0..v.row_bits()).step_by(1024) {
            seen.insert(v.chip_of_bitline(b));
        }
        assert_eq!(seen.len(), v.chip_count());
        assert_eq!(v.chip_of_bitline(0), 0);
        assert_eq!(v.chip_of_bitline(v.row_bits() - 1), v.chip_count() - 1);
    }

    #[test]
    fn both_temperature_trends_exist_across_modules() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        let mut trend1 = 0usize;
        let mut trend2 = 0usize;
        for seed in 0..40 {
            let v = ModuleVariation::generate(&g, seed);
            for chip in 0..v.chip_count() {
                if v.chip_follows_trend1(chip) {
                    trend1 += 1;
                } else {
                    trend2 += 1;
                }
            }
        }
        // Roughly 60/40 split per the calibrated parameters.
        assert!(trend1 > trend2, "trend1={trend1} trend2={trend2}");
        assert!(trend2 > 0);
    }

    #[test]
    fn temperature_factor_moves_in_trend_direction() {
        let v = variation();
        for chip in 0..v.chip_count() {
            let at50 = v.temperature_factor(chip, 50.0);
            let at85 = v.temperature_factor(chip, 85.0);
            assert!((at50 - 1.0).abs() < 1e-12);
            if v.chip_follows_trend1(chip) {
                assert!(at85 > at50);
            } else {
                assert!(at85 < at50);
            }
        }
    }

    #[test]
    fn segment_noise_factor_is_positive_and_varies() {
        let v = variation();
        let mut min: f64 = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in 0..v.segments_per_bank() {
            let f = v.segment_noise_factor(Segment::new(s));
            assert!(f > 0.0);
            min = min.min(f);
            max = max.max(f);
        }
        // The spatial profile should create meaningful variation (Figure 9).
        assert!(max / min > 1.5, "max {max} min {min}");
    }

    #[test]
    fn cb_profile_peaks_in_the_middle_and_declines_at_the_end() {
        let v = variation();
        let blocks = 128;
        let first = v.cb_position_factor(0, blocks);
        let mid = v.cb_position_factor(blocks / 2, blocks);
        let last = v.cb_position_factor(blocks - 1, blocks);
        assert!(mid > first, "mid {mid} first {first}");
        assert!(mid > last, "mid {mid} last {last}");
        assert!(last < first, "last {last} first {first}");
    }

    #[test]
    fn favored_segments_are_rare() {
        let v = variation();
        let pattern: DataPattern = "0100".parse().unwrap();
        let favored = (0..v.segments_per_bank())
            .filter(|&s| v.favored_attenuation(Segment::new(s), pattern).is_some())
            .count();
        let frac = favored as f64 / v.segments_per_bank() as f64;
        assert!(frac < 0.02, "favored fraction {frac}");
        // Attenuation, when present, is within the configured bound.
        for s in 0..v.segments_per_bank() {
            if let Some(a) = v.favored_attenuation(Segment::new(s), pattern) {
                assert!(a >= 0.0 && a <= v.params().favored_attenuation_max);
            }
        }
    }

    #[test]
    fn offset_prober_is_bit_identical_to_the_component_sum() {
        let v = variation();
        let seg = Segment::new(37);
        let sub = v.subarray_of_segment(seg);
        for age in [0.0, 12.5] {
            let prober = v.offset_prober(seg, sub, age);
            for b in (0..v.row_bits()).step_by(911) {
                let expected =
                    v.sa_offset(sub, b) + v.cell_offset(seg, b) + v.aging_drift(seg, b, age);
                assert_eq!(
                    prober.static_offset(b).to_bits(),
                    expected.to_bits(),
                    "bitline {b} age {age}"
                );
            }
        }
    }

    #[test]
    fn aging_drift_grows_with_age_and_is_zero_at_day_zero() {
        let v = variation();
        assert_eq!(v.aging_drift(Segment::new(1), 5, 0.0), 0.0);
        let d30 = v.aging_drift(Segment::new(1), 5, 30.0).abs();
        let d120 = v.aging_drift(Segment::new(1), 5, 120.0).abs();
        assert!(d120 > d30);
    }

    #[test]
    fn first_row_weight_is_near_three() {
        let v = variation();
        for s in 0..100 {
            let w = v.first_row_weight(Segment::new(s));
            assert!((w - 3.0).abs() < 0.5, "weight {w}");
        }
    }

    #[test]
    fn noise_scale_combines_factors() {
        let v = variation();
        let ns = v.noise_scale(Segment::new(100), 1000, 50.0);
        assert!(ns > 0.0);
        // Entropy scale multiplies through.
        let g = DramGeometry::ddr4_4gb_x8_module();
        let v2 = ModuleVariation::generate_with(&g, 0xC0FFEE, AnalogParams::calibrated(), 2.0);
        let ns2 = v2.noise_scale(Segment::new(100), 1000, 50.0);
        assert!((ns2 / ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn subarray_of_segment_matches_row_mapping() {
        let g = DramGeometry::tiny_test();
        let v = ModuleVariation::generate(&g, 9);
        // tiny geometry: 64 rows per subarray -> 16 segments per subarray.
        assert_eq!(v.subarray_of_segment(Segment::new(0)).index(), 0);
        assert_eq!(v.subarray_of_segment(Segment::new(15)).index(), 0);
        assert_eq!(v.subarray_of_segment(Segment::new(16)).index(), 1);
    }
}
