//! Numerical helpers: error function, normal CDF, deterministic hashing to
//! uniform and normal variates, and the binary entropy function.
//!
//! Process variation must be *deterministic per device*: the same module seed
//! must always yield the same per-bitline offsets, otherwise characterisation
//! (Section 6.1.2) and later random-number generation (Section 5.2) would not
//! agree on which segments are high-entropy. All per-component variation is
//! therefore derived from counter-mode hashing (SplitMix64) rather than a
//! streaming RNG.

/// Abramowitz–Stegun style rational approximation of the error function
/// (maximum absolute error ≈ 1.5e-7), sufficient for probability modelling.
pub fn erf(x: f64) -> f64 {
    // Constants for the A&S 7.1.26 approximation.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (Acklam's algorithm, relative error
/// below 1.15e-9 over the open unit interval).
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inverse normal CDF requires 0 < p < 1, got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Binary (Shannon) entropy of a Bernoulli(p) source in bits (Equation 1 of
/// the paper). Returns 0 for p outside (0, 1).
pub fn binary_entropy_bits(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 || !p.is_finite() {
        return 0.0;
    }
    let q = 1.0 - p;
    -(p * p.log2() + q * q.log2())
}

/// Normalised bias magnitude beyond which `std_normal_cdf` saturates to
/// exactly 0.0/1.0 in `f64` arithmetic, making the bitline entropy exactly
/// zero. Verified by `cdf_saturates_beyond_the_entropy_cutoff`.
pub const ENTROPY_SATURATION_Z: f64 = 8.6;

/// Resolution of the [`entropy_of_normal_bias`] interpolation table.
const ENTROPY_TABLE_SIZE: usize = 1 << 16;

fn entropy_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let step = ENTROPY_SATURATION_Z / ENTROPY_TABLE_SIZE as f64;
        (0..=ENTROPY_TABLE_SIZE)
            .map(|i| binary_entropy_bits(std_normal_cdf(i as f64 * step)))
            .collect()
    })
}

/// Shannon entropy (bits) of a sense amplifier whose normalised bias is `z`:
/// `H(Φ(z))`, evaluated through a 64 Ki-entry linear interpolation table.
///
/// This is the characterisation hot path — per-bitline entropy sweeps call it
/// millions of times — so the table trades a bounded approximation error
/// (absolute error below 1e-6, verified by `entropy_of_normal_bias_is_accurate`)
/// for an order-of-magnitude speedup over `erf` + two `log2` calls. `H` is
/// symmetric in `z` and exactly zero beyond [`ENTROPY_SATURATION_Z`], where
/// the CDF saturates in `f64`.
pub fn entropy_of_normal_bias(z: f64) -> f64 {
    let az = z.abs();
    if az >= ENTROPY_SATURATION_Z {
        return 0.0;
    }
    let table = entropy_table();
    let x = az * (ENTROPY_TABLE_SIZE as f64 / ENTROPY_SATURATION_Z);
    let i = x as usize; // < ENTROPY_TABLE_SIZE because az < ENTROPY_SATURATION_Z
    let frac = x - i as f64;
    table[i] + (table[i + 1] - table[i]) * frac
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash used as a
/// counter-mode PRF for deterministic per-component variation.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to three coordinates into a single hash.
pub fn hash_coords(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    CoordHasher::new(seed, a).hash(b, c)
}

/// The `(seed, a)` prefix of [`hash_coords`], hoisted: the first two of the
/// four SplitMix rounds depend only on the seed and the first coordinate
/// (the segment or subarray in every per-bitline use), so loops that hash
/// thousands of bitlines of one segment pay two rounds per call instead of
/// four. `CoordHasher::new(seed, a).hash(b, c)` is the same function
/// composition as [`hash_coords`]`(seed, a, b, c)` — bit-identical, which
/// the tests pin.
#[derive(Debug, Clone, Copy)]
pub struct CoordHasher {
    prefix: u64,
}

impl CoordHasher {
    /// Folds the seed and first coordinate into the hash prefix.
    pub fn new(seed: u64, a: u64) -> Self {
        let h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
        CoordHasher { prefix: splitmix64(h ^ a.wrapping_mul(0xE703_7ED1_A0B4_28DB)) }
    }

    /// Finishes the hash with the remaining two coordinates.
    #[inline]
    pub fn hash(&self, b: u64, c: u64) -> u64 {
        let h = splitmix64(self.prefix ^ b.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        splitmix64(h ^ c.wrapping_mul(0x5897_89E6_C6B1_DC97))
    }

    /// A standard normal variate for the remaining coordinates, through the
    /// same unit-interval mapping as [`normal_at`].
    #[inline]
    pub fn normal(&self, b: u64, c: u64) -> f64 {
        hash_to_std_normal(self.hash(b, c))
    }
}

/// Maps a 64-bit hash to the open unit interval (0, 1), excluding endpoints.
pub fn hash_to_unit(h: u64) -> f64 {
    // 53 significant bits, shifted into (0, 1).
    let mantissa = (h >> 11) as f64;
    (mantissa + 0.5) / (1u64 << 53) as f64
}

/// Maps a 64-bit hash to a standard normal variate via the inverse CDF.
pub fn hash_to_std_normal(h: u64) -> f64 {
    std_normal_inv_cdf(hash_to_unit(h))
}

/// Deterministic uniform variate in `(0, 1)` for the given seed/coordinates.
pub fn uniform_at(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    hash_to_unit(hash_coords(seed, a, b, c))
}

/// Deterministic standard normal variate for the given seed/coordinates.
pub fn normal_at(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    hash_to_std_normal(hash_coords(seed, a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-5);
        assert!(erf(6.0) > 0.999999);
    }

    #[test]
    fn normal_cdf_is_symmetric_and_monotonic() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 2e-4);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 2e-4);
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = std_normal_cdf(i as f64 / 10.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = std_normal_inv_cdf(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn inverse_cdf_rejects_endpoints() {
        let _ = std_normal_inv_cdf(0.0);
    }

    #[test]
    fn binary_entropy_extremes() {
        assert_eq!(binary_entropy_bits(0.0), 0.0);
        assert_eq!(binary_entropy_bits(1.0), 0.0);
        assert!((binary_entropy_bits(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy_bits(0.11) - binary_entropy_bits(0.89)).abs() < 1e-12);
    }

    #[test]
    fn cdf_saturates_beyond_the_entropy_cutoff() {
        // Beyond the cutoff the CDF must be *exactly* 0.0/1.0 so that the
        // fast entropy path's early exit matches the exact computation.
        let mut z = ENTROPY_SATURATION_Z;
        while z < 60.0 {
            assert_eq!(std_normal_cdf(z), 1.0, "z = {z}");
            assert_eq!(std_normal_cdf(-z), 0.0, "z = {z}");
            assert_eq!(binary_entropy_bits(std_normal_cdf(z)), 0.0);
            z += 0.0371;
        }
    }

    #[test]
    fn entropy_of_normal_bias_is_accurate() {
        let mut z = -12.0;
        let mut max_err = 0.0f64;
        while z < 12.0 {
            let fast = entropy_of_normal_bias(z);
            let exact = binary_entropy_bits(std_normal_cdf(z));
            max_err = max_err.max((fast - exact).abs());
            z += 0.000_873;
        }
        assert!(max_err < 1e-6, "interpolation error {max_err}");
        assert_eq!(entropy_of_normal_bias(0.0), 1.0);
        assert_eq!(entropy_of_normal_bias(100.0), 0.0);
        assert_eq!(entropy_of_normal_bias(f64::INFINITY), 0.0);
    }

    #[test]
    fn coord_hasher_is_bit_identical_to_hash_coords() {
        for seed in [0u64, 7, u64::MAX] {
            for a in [0u64, 3, 1 << 40] {
                let hasher = CoordHasher::new(seed, a);
                for b in [0u64, 1, 511, 65_535] {
                    for c in [0u64, 2] {
                        assert_eq!(hasher.hash(b, c), hash_coords(seed, a, b, c));
                        assert_eq!(
                            hasher.normal(b, c).to_bits(),
                            normal_at(seed, a, b, c).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_diffuse() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Flipping one input bit flips roughly half the output bits.
        let d = (splitmix64(1234) ^ splitmix64(1235)).count_ones();
        assert!(d > 16 && d < 48, "poor diffusion: {d} bits");
    }

    #[test]
    fn hashed_normals_have_reasonable_moments() {
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let x = normal_at(99, i, 0, 0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn hashed_uniforms_cover_the_unit_interval() {
        let n = 10_000;
        let mut min: f64 = 1.0;
        let mut max: f64 = 0.0;
        let mut mean = 0.0;
        for i in 0..n {
            let u = uniform_at(5, i, 7, 3);
            assert!(u > 0.0 && u < 1.0);
            min = min.min(u);
            max = max.max(u);
            mean += u;
        }
        mean /= n as f64;
        assert!(min < 0.01 && max > 0.99);
        assert!((mean - 0.5).abs() < 0.02);
    }

    proptest! {
        #[test]
        fn prop_entropy_bounded(p in 0.0f64..=1.0) {
            let h = binary_entropy_bits(p);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        }

        #[test]
        fn prop_cdf_bounded(x in -50.0f64..50.0) {
            let c = std_normal_cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_uniform_in_open_interval(seed in any::<u64>(), a in any::<u64>()) {
            let u = uniform_at(seed, a, 1, 2);
            prop_assert!(u > 0.0 && u < 1.0);
        }
    }
}
