//! Calibration parameters of the analog model.
//!
//! All voltages are expressed in units of the sense amplifier's thermal-noise
//! standard deviation at the nominal temperature (50 °C), so a bias of 1.0
//! means "one noise sigma away from perfectly metastable". The defaults are
//! calibrated so that the model reproduces the paper's headline statistics:
//! average cache-block entropy ≈ 11 bits for pattern "0111", ≈ 0.2–0.5 bits
//! for "1011", average segment entropy in the 1100–1900 bit range of
//! Table 3, and the Figure 9/10 spatial profiles.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the QUAC charge-sharing / sense-amplifier model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalogParams {
    /// Mean charge-sharing weight of the first-activated row relative to the
    /// three later-activated rows (whose weight is 1.0). The first row's cell
    /// has more time to share charge (Section 6.1.3), and a value of ≈ 3
    /// makes it balance the other three rows when it stores their inverse.
    pub first_row_weight: f64,
    /// Relative standard deviation of the per-segment first-row weight
    /// (cell-capacitance variation across segments).
    pub first_row_weight_sigma: f64,
    /// Voltage developed on the bitline per unit of charge-sharing imbalance,
    /// in noise-sigma units.
    pub share_voltage: f64,
    /// Standard deviation of the per-bitline sense-amplifier offset
    /// (process variation), in noise-sigma units.
    pub sa_offset_sigma: f64,
    /// Standard deviation of the per-(segment, bitline) cell-side offset
    /// component, in noise-sigma units.
    pub cell_offset_sigma: f64,
    /// Probability that a given (segment, data pattern) pair is "favored":
    /// design-induced variation lets that segment keep the bitline voltage
    /// metastable even for an imbalanced pattern (explains the 53-bit
    /// maximum cache-block entropy for pattern "0100" in Figure 8).
    pub favored_segment_prob: f64,
    /// Maximum attenuation of the pattern imbalance in a favored segment
    /// (the imbalance is multiplied by a uniform value in `[0, this]`).
    pub favored_attenuation_max: f64,
    /// Extra thermal-noise multiplier applied in favored segments.
    pub favored_noise_boost: f64,
    /// Amplitude of the long-period spatial entropy wave across segments
    /// (Figure 9), as a fraction of the nominal noise scale.
    pub wave_amplitude_long: f64,
    /// Amplitude of the short-period spatial wave.
    pub wave_amplitude_short: f64,
    /// Period of the long spatial wave, in segments.
    pub wave_period_long: f64,
    /// Period of the short spatial wave, in segments.
    pub wave_period_short: f64,
    /// Relative standard deviation of the per-segment lognormal noise factor.
    pub segment_noise_sigma: f64,
    /// Size of the end-of-bank entropy rise (most modules rise towards the
    /// 8000th segment, Figure 9), as a fraction of nominal noise.
    pub end_rise_amplitude: f64,
    /// Fraction of the bank (from the end) over which the end rise develops.
    pub end_rise_fraction: f64,
    /// Size of the drop at the very last segments of the bank.
    pub end_drop_amplitude: f64,
    /// Fraction of the bank (from the end) affected by the final drop.
    pub end_drop_fraction: f64,
    /// Peak-to-trough amplitude of the cache-block position profile within a
    /// segment (Figure 10: entropy peaks mid-segment).
    pub cb_profile_amplitude: f64,
    /// Linear decline towards the highest-numbered cache blocks (Figure 10).
    pub cb_profile_decline: f64,
    /// Magnitude of the |temperature coefficient| for trend-1 chips (entropy
    /// increases with temperature), per °C relative to 50 °C.
    pub temp_coeff_trend1: f64,
    /// Magnitude of the |temperature coefficient| for trend-2 chips (entropy
    /// decreases with temperature), per °C relative to 50 °C.
    pub temp_coeff_trend2: f64,
    /// Fraction of chips following trend 1 (24 of 40 in Section 8).
    pub trend1_fraction: f64,
    /// Standard deviation of the per-bitline offset drift accumulated over
    /// 30 days, as a fraction of the SA offset sigma (Section 8 reports an
    /// average segment-entropy change of 2.4 %).
    pub aging_drift_30day: f64,
}

impl AnalogParams {
    /// Parameters calibrated against the paper's reported statistics.
    pub fn calibrated() -> Self {
        AnalogParams {
            first_row_weight: 3.0,
            first_row_weight_sigma: 0.03,
            share_voltage: 42.0,
            sa_offset_sigma: 58.0,
            cell_offset_sigma: 18.0,
            favored_segment_prob: 0.004,
            favored_attenuation_max: 0.25,
            favored_noise_boost: 1.6,
            wave_amplitude_long: 0.22,
            wave_amplitude_short: 0.12,
            wave_period_long: 2800.0,
            wave_period_short: 610.0,
            segment_noise_sigma: 0.18,
            end_rise_amplitude: 0.35,
            end_rise_fraction: 0.12,
            end_drop_amplitude: 0.45,
            end_drop_fraction: 0.015,
            cb_profile_amplitude: 0.25,
            cb_profile_decline: 0.30,
            temp_coeff_trend1: 0.0070,
            temp_coeff_trend2: 0.0130,
            trend1_fraction: 0.6,
            aging_drift_30day: 0.035,
        }
    }

    /// Effective sense-amplifier bias spread (combined SA and cell offsets).
    pub fn total_offset_sigma(&self) -> f64 {
        (self.sa_offset_sigma.powi(2) + self.cell_offset_sigma.powi(2)).sqrt()
    }

    /// Basic sanity checks on parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.first_row_weight <= 0.0 {
            return Err("first_row_weight must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.favored_segment_prob) {
            return Err("favored_segment_prob must be a probability".to_string());
        }
        if !(0.0..=1.0).contains(&self.trend1_fraction) {
            return Err("trend1_fraction must be a probability".to_string());
        }
        if self.sa_offset_sigma <= 0.0 || self.share_voltage <= 0.0 {
            return Err("voltage scales must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for AnalogParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_parameters_are_valid() {
        AnalogParams::calibrated().validate().unwrap();
    }

    #[test]
    fn total_offset_combines_quadratically() {
        let p = AnalogParams::calibrated();
        let t = p.total_offset_sigma();
        assert!(t > p.sa_offset_sigma);
        assert!(t < p.sa_offset_sigma + p.cell_offset_sigma);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = AnalogParams::calibrated();
        p.first_row_weight = 0.0;
        assert!(p.validate().is_err());
        let mut p = AnalogParams::calibrated();
        p.favored_segment_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = AnalogParams::calibrated();
        p.trend1_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = AnalogParams::calibrated();
        p.share_voltage = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn first_row_weight_balances_three_rows() {
        // The calibration relies on the first row opposing three others.
        let p = AnalogParams::calibrated();
        assert!((p.first_row_weight - 3.0).abs() < 0.5);
    }
}
