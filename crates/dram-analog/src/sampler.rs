//! Word-packed sampling of QUAC outcomes.
//!
//! The steady-state TRNG loop samples every sense amplifier of the chosen
//! segment once per QUAC operation. Doing that with one `f64` RNG draw and a
//! `Vec<bool>` round-trip per bitline (the obvious implementation) costs far
//! more than the modelled hardware does, so this module precomputes a
//! *quantised threshold* per bitline:
//!
//! * each probability `p` is quantised to `t = round(p · 2⁶⁴)`, and a bit
//!   resolves to 1 iff a fresh uniform `u64` noise word is below `t`;
//! * bitlines whose probability quantises to exactly 0 or 1 are
//!   *deterministic* — they draw no noise at all and are prefilled into the
//!   packed base words;
//! * the remaining *metastable* bitlines are stored as `(word, shift,
//!   threshold)` triples and OR-ed into the output's `u64` storage words
//!   directly — no intermediate `Vec<bool>` anywhere.
//!
//! [`sample_reference`] is the scalar reference implementation: it walks
//! bitlines one by one with the *same* quantisation and the same RNG
//! consumption order, so the packed path is bit-identical to it for any seed
//! (property-tested below).

use qt_dram_core::BitVec;
use rand::RngCore;

/// The quantised resolve-to-1 behaviour of one sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitThreshold {
    /// The bitline always resolves to 0 (probability quantised to 0).
    AlwaysZero,
    /// The bitline always resolves to 1 (probability quantised to 1).
    AlwaysOne,
    /// The bitline resolves to 1 iff a fresh uniform `u64` noise word is
    /// strictly below the threshold.
    Metastable(u64),
}

impl BitThreshold {
    /// Quantises a probability to a 64-bit threshold. Probabilities below
    /// 2⁻⁶⁴ (including NaN and negatives) become [`BitThreshold::AlwaysZero`];
    /// probabilities that round to 1 become [`BitThreshold::AlwaysOne`].
    pub fn quantize(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            return BitThreshold::AlwaysZero;
        }
        if p >= 1.0 {
            return BitThreshold::AlwaysOne;
        }
        // 2^64 as f64 is exact; the product is in [0, 2^64] and the cast to
        // u128 is therefore lossless in range.
        let t = (p * 18_446_744_073_709_551_616.0) as u128;
        if t == 0 {
            BitThreshold::AlwaysZero
        } else if t >= 1u128 << 64 {
            BitThreshold::AlwaysOne
        } else {
            BitThreshold::Metastable(t as u64)
        }
    }

    /// Samples one outcome, drawing one RNG word iff the bit is metastable.
    pub fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> bool {
        match self {
            BitThreshold::AlwaysZero => false,
            BitThreshold::AlwaysOne => true,
            BitThreshold::Metastable(t) => rng.next_u64() < t,
        }
    }

    /// `true` if the bit never draws noise.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, BitThreshold::Metastable(_))
    }
}

/// One metastable bitline in packed form.
#[derive(Debug, Clone, Copy)]
struct ActiveBit {
    /// Index of the storage word holding the bit.
    word: u32,
    /// Bit position within the word.
    shift: u32,
    /// Resolve-to-1 threshold against a uniform `u64`.
    threshold: u64,
}

/// Precomputed word-packed sampler for one row of sense amplifiers.
#[derive(Debug, Clone)]
pub struct PackedSampler {
    len: usize,
    /// Prefilled storage words holding every deterministic logic-1 bitline.
    base: Vec<u64>,
    /// Metastable bitlines in ascending bitline order (the RNG consumption
    /// order shared with [`sample_reference`]).
    active: Vec<ActiveBit>,
}

impl PackedSampler {
    /// Builds a sampler from per-bitline one-probabilities.
    pub fn new(probs: &[f64]) -> Self {
        let len = probs.len();
        let mut base = vec![0u64; len.div_ceil(64)];
        let mut active = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            match BitThreshold::quantize(p) {
                BitThreshold::AlwaysZero => {}
                BitThreshold::AlwaysOne => base[i / 64] |= 1u64 << (i % 64),
                BitThreshold::Metastable(threshold) => active.push(ActiveBit {
                    word: (i / 64) as u32,
                    shift: (i % 64) as u32,
                    threshold,
                }),
            }
        }
        PackedSampler { len, base, active }
    }

    /// Number of bitlines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sampler covers zero bitlines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of metastable bitlines (one RNG word is drawn per metastable
    /// bitline per sample).
    pub fn metastable_bits(&self) -> usize {
        self.active.len()
    }

    /// Samples one QUAC outcome into `out`, reusing its storage words
    /// (resizing it only if the length differs).
    pub fn sample_into<R: RngCore + ?Sized>(&self, out: &mut BitVec, rng: &mut R) {
        if out.len() != self.len {
            *out = BitVec::zeros(self.len);
        }
        let words = out.words_mut();
        words.copy_from_slice(&self.base);
        for bit in &self.active {
            // Branchless resolve: OR the comparison result into place.
            words[bit.word as usize] |= u64::from(rng.next_u64() < bit.threshold) << bit.shift;
        }
        // `base` is built from `len` bits, so the tail is already clear.
    }

    /// Samples one QUAC outcome into a fresh bit vector.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        self.sample_into(&mut out, rng);
        out
    }
}

/// Scalar reference sampler: quantises and samples one bitline at a time in
/// ascending order. Bit-identical to [`PackedSampler`] for the same RNG seed;
/// kept as the readable specification and the property-test oracle.
pub fn sample_reference<R: RngCore + ?Sized>(probs: &[f64], rng: &mut R) -> BitVec {
    let mut out = BitVec::zeros(probs.len());
    for (i, &p) in probs.iter().enumerate() {
        if BitThreshold::quantize(p).sample(rng) {
            out.set(i, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantize_endpoints_and_midpoint() {
        assert_eq!(BitThreshold::quantize(0.0), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(-1.0), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(f64::NAN), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(1.0), BitThreshold::AlwaysOne);
        assert_eq!(BitThreshold::quantize(2.0), BitThreshold::AlwaysOne);
        assert_eq!(BitThreshold::quantize(0.5), BitThreshold::Metastable(1u64 << 63));
        // Probabilities below the 64-bit resolution are deterministic zeros.
        assert_eq!(BitThreshold::quantize(1e-30), BitThreshold::AlwaysZero);
        assert!(!BitThreshold::quantize(1e-9).is_deterministic());
    }

    #[test]
    fn deterministic_bits_draw_no_rng_words() {
        let probs = [0.0, 1.0, 0.0, 1.0];
        let sampler = PackedSampler::new(&probs);
        assert_eq!(sampler.metastable_bits(), 0);
        let mut rng_a = StdRng::seed_from_u64(1);
        let a = sampler.sample(&mut rng_a);
        assert!(!a.get(0) && a.get(1) && !a.get(2) && a.get(3));
        // The RNG was never touched: its next draw matches a fresh one.
        let mut rng_b = StdRng::seed_from_u64(1);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn sample_into_reuses_storage_and_matches_sample() {
        let probs: Vec<f64> = (0..200).map(|i| (i as f64) / 199.0).collect();
        let sampler = PackedSampler::new(&probs);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let fresh = sampler.sample(&mut rng_a);
        let mut reused = BitVec::zeros(7); // wrong length: must be re-shaped
        sampler.sample_into(&mut reused, &mut rng_b);
        assert_eq!(fresh, reused);
        // Second use keeps the same allocation and stays consistent.
        sampler.sample_into(&mut reused, &mut rng_b);
        assert_eq!(reused.len(), 200);
    }

    #[test]
    fn frequencies_respect_probabilities() {
        let probs = [0.0, 1.0, 0.5, 0.1];
        let sampler = PackedSampler::new(&probs);
        let mut rng = StdRng::seed_from_u64(4);
        let mut ones = [0u32; 4];
        for _ in 0..4000 {
            let s = sampler.sample(&mut rng);
            for (i, one) in ones.iter_mut().enumerate() {
                *one += s.get(i) as u32;
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 4000);
        assert!((ones[2] as f64 / 4000.0 - 0.5).abs() < 0.03);
        assert!((ones[3] as f64 / 4000.0 - 0.1).abs() < 0.03);
    }

    proptest! {
        #[test]
        fn prop_packed_is_bit_identical_to_scalar_reference(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..300),
            seed in any::<u64>(),
        ) {
            let sampler = PackedSampler::new(&probs);
            let mut packed_rng = StdRng::seed_from_u64(seed);
            let mut scalar_rng = StdRng::seed_from_u64(seed);
            let packed = sampler.sample(&mut packed_rng);
            let scalar = sample_reference(&probs, &mut scalar_rng);
            prop_assert_eq!(packed, scalar);
            // Both consumed the same number of RNG words.
            prop_assert_eq!(packed_rng.next_u64(), scalar_rng.next_u64());
        }

        #[test]
        fn prop_extreme_probabilities_are_deterministic(
            bits in proptest::collection::vec(any::<bool>(), 1..200),
            seed in any::<u64>(),
        ) {
            let probs: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let sampler = PackedSampler::new(&probs);
            prop_assert_eq!(sampler.metastable_bits(), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sampler.sample(&mut rng);
            prop_assert_eq!(out, BitVec::from_bits(bits));
        }
    }
}
