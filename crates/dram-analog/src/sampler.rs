//! Word-packed and bit-sliced sampling of QUAC outcomes.
//!
//! The steady-state TRNG loop samples every sense amplifier of the chosen
//! segment once per QUAC operation. Doing that with one `f64` RNG draw and a
//! `Vec<bool>` round-trip per bitline (the obvious implementation) costs far
//! more than the modelled hardware does, so this module precomputes a
//! *quantised threshold* per bitline:
//!
//! * each probability `p` is quantised to `t = round(p · 2⁶⁴)`, and a bit
//!   resolves to 1 iff a fresh uniform 64-bit noise value is below `t`;
//! * bitlines whose probability quantises to exactly 0 or 1 are
//!   *deterministic* — they draw no noise at all and are prefilled into
//!   packed base words;
//! * only the remaining *metastable* bitlines cost anything per iteration.
//!
//! Two samplers share that quantisation:
//!
//! * [`PackedSampler`] draws one full noise word per metastable bitline and
//!   compares it against the 64-bit threshold directly. It is the original
//!   scheme, kept frozen together with its scalar twin
//!   [`sample_reference`] — the readable specification and property-test
//!   oracle it is pinned bit-identical to.
//! * [`BitSlicedSampler`] is the bulk-drawn hot path: metastable bitlines
//!   become *lanes* of 64-wide comparison blocks, and each block consumes
//!   just eight noise words (one per bit-plane of the threshold's top byte)
//!   for all 64 lanes. A lane whose noise byte *equals* its threshold byte
//!   (probability 2⁻⁸) escalates to one full-resolution draw, so the
//!   resolve-to-1 probability stays exactly `t / 2⁶⁴` — the same
//!   distribution as [`PackedSampler`] at an eighth of the noise and with
//!   word-parallel comparisons. Its scalar twin is
//!   [`sample_bitsliced_reference`], pinned bit-identical by proptest.
//!
//! The two schemes draw different noise-word sequences, so their streams
//! differ for the same seed; both resolve every bitline to 1 with exactly
//! the quantised probability.

use qt_dram_core::BitVec;
use rand::RngCore;

/// Mask selecting the low 56 bits of a threshold (the part compared only
/// when the top-byte comparison ties).
const LO56_MASK: u64 = (1u64 << 56) - 1;

/// The quantised resolve-to-1 behaviour of one sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitThreshold {
    /// The bitline always resolves to 0 (probability quantised to 0).
    AlwaysZero,
    /// The bitline always resolves to 1 (probability quantised to 1).
    AlwaysOne,
    /// The bitline resolves to 1 iff a fresh uniform `u64` noise word is
    /// strictly below the threshold.
    Metastable(u64),
}

impl BitThreshold {
    /// Quantises a probability to a 64-bit threshold. Probabilities below
    /// 2⁻⁶⁴ (including NaN and negatives) become [`BitThreshold::AlwaysZero`];
    /// probabilities that round to 1 become [`BitThreshold::AlwaysOne`].
    pub fn quantize(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            return BitThreshold::AlwaysZero;
        }
        if p >= 1.0 {
            return BitThreshold::AlwaysOne;
        }
        // 2^64 as f64 is exact; the product is in [0, 2^64] and the cast to
        // u128 is therefore lossless in range.
        let t = (p * 18_446_744_073_709_551_616.0) as u128;
        if t == 0 {
            BitThreshold::AlwaysZero
        } else if t >= 1u128 << 64 {
            BitThreshold::AlwaysOne
        } else {
            BitThreshold::Metastable(t as u64)
        }
    }

    /// Samples one outcome, drawing one RNG word iff the bit is metastable.
    pub fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> bool {
        match self {
            BitThreshold::AlwaysZero => false,
            BitThreshold::AlwaysOne => true,
            BitThreshold::Metastable(t) => rng.next_u64() < t,
        }
    }

    /// `true` if the bit never draws noise.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, BitThreshold::Metastable(_))
    }
}

/// One metastable bitline in packed form.
#[derive(Debug, Clone, Copy)]
struct ActiveBit {
    /// Index of the storage word holding the bit.
    word: u32,
    /// Bit position within the word.
    shift: u32,
    /// Resolve-to-1 threshold against a uniform `u64`.
    threshold: u64,
}

/// Precomputed word-packed sampler for one row of sense amplifiers.
#[derive(Debug, Clone)]
pub struct PackedSampler {
    len: usize,
    /// Prefilled storage words holding every deterministic logic-1 bitline.
    base: Vec<u64>,
    /// Metastable bitlines in ascending bitline order (the RNG consumption
    /// order shared with [`sample_reference`]).
    active: Vec<ActiveBit>,
}

impl PackedSampler {
    /// Builds a sampler from per-bitline one-probabilities.
    pub fn new(probs: &[f64]) -> Self {
        let len = probs.len();
        let mut base = vec![0u64; len.div_ceil(64)];
        let mut active = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            match BitThreshold::quantize(p) {
                BitThreshold::AlwaysZero => {}
                BitThreshold::AlwaysOne => base[i / 64] |= 1u64 << (i % 64),
                BitThreshold::Metastable(threshold) => active.push(ActiveBit {
                    word: (i / 64) as u32,
                    shift: (i % 64) as u32,
                    threshold,
                }),
            }
        }
        PackedSampler { len, base, active }
    }

    /// Number of bitlines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sampler covers zero bitlines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of metastable bitlines (one RNG word is drawn per metastable
    /// bitline per sample).
    pub fn metastable_bits(&self) -> usize {
        self.active.len()
    }

    /// Samples one QUAC outcome into `out`, reusing its storage words
    /// (resizing it only if the length differs).
    pub fn sample_into<R: RngCore + ?Sized>(&self, out: &mut BitVec, rng: &mut R) {
        if out.len() != self.len {
            *out = BitVec::zeros(self.len);
        }
        let words = out.words_mut();
        words.copy_from_slice(&self.base);
        for bit in &self.active {
            // Branchless resolve: OR the comparison result into place.
            words[bit.word as usize] |= u64::from(rng.next_u64() < bit.threshold) << bit.shift;
        }
        // `base` is built from `len` bits, so the tail is already clear.
    }

    /// Samples one QUAC outcome into a fresh bit vector.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        self.sample_into(&mut out, rng);
        out
    }
}

/// Scalar reference sampler: quantises and samples one bitline at a time in
/// ascending order. Bit-identical to [`PackedSampler`] for the same RNG seed;
/// kept as the readable specification and the property-test oracle.
pub fn sample_reference<R: RngCore + ?Sized>(probs: &[f64], rng: &mut R) -> BitVec {
    let mut out = BitVec::zeros(probs.len());
    for (i, &p) in probs.iter().enumerate() {
        if BitThreshold::quantize(p).sample(rng) {
            out.set(i, true);
        }
    }
    out
}

/// Bulk-drawn bit-sliced sampler: the steady-state hot path.
///
/// Metastable bitlines are compacted into *lanes*, 64 per comparison block.
/// Per iteration each block draws eight noise words — noise word `j` holds
/// bit `7−j` of every lane's fresh 8-bit noise byte — and resolves all 64
/// lanes with ~4 word ops per plane:
///
/// * a lane whose noise byte differs from the top byte of its threshold is
///   decided at the first differing bit (MSB-first comparison);
/// * a lane whose noise byte *equals* its threshold byte (probability 2⁻⁸)
///   escalates: one full noise word `v` is drawn and the lane resolves to
///   `v >> 8 < t & LO56`, restoring full 64-bit threshold resolution.
///
/// The resolve-to-1 probability is exactly `t / 2⁶⁴`: the top byte decides
/// with probability `1 − 2⁻⁸` and the escalation path supplies the remaining
/// 56 bits of resolution. Expected noise cost is one word per eight
/// metastable bitlines plus one word per ~256 lanes for escalations.
///
/// Noise-word consumption order (the stream contract shared with
/// [`sample_bitsliced_reference`]): blocks in ascending lane order; per
/// block, the eight plane words MSB-first, then one escalation word per
/// tied lane in ascending lane order.
#[derive(Debug, Clone)]
pub struct BitSlicedSampler {
    len: usize,
    /// Prefilled row storage holding every deterministic logic-1 bitline.
    base: Vec<u64>,
    /// Number of metastable lanes.
    lanes: usize,
    /// Per block: bit-planes of the thresholds' top bytes, MSB first
    /// (`planes[b][j]` bit `l` = bit `7−j` of lane `b·64+l`'s top byte).
    planes: Vec<[u64; 8]>,
    /// Per block: mask of populated lanes (all-ones except the last block).
    active: Vec<u64>,
    /// Per lane: low 56 bits of the threshold (escalation comparand).
    lo56: Vec<u64>,
    /// Per lane: the bitline (row bit position) it samples, ascending.
    positions: Vec<u32>,
}

impl BitSlicedSampler {
    /// Builds a sampler from per-bitline one-probabilities.
    pub fn new(probs: &[f64]) -> Self {
        let len = probs.len();
        let mut base = vec![0u64; len.div_ceil(64)];
        let mut lo56 = Vec::new();
        let mut positions = Vec::new();
        let mut planes: Vec<[u64; 8]> = Vec::new();
        let mut active = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            match BitThreshold::quantize(p) {
                BitThreshold::AlwaysZero => {}
                BitThreshold::AlwaysOne => base[i / 64] |= 1u64 << (i % 64),
                BitThreshold::Metastable(t) => {
                    let lane = positions.len();
                    let (block, slot) = (lane / 64, lane % 64);
                    if block == planes.len() {
                        planes.push([0u64; 8]);
                        active.push(0u64);
                    }
                    active[block] |= 1u64 << slot;
                    let hi = (t >> 56) as u8;
                    for (j, plane) in planes[block].iter_mut().enumerate() {
                        *plane |= u64::from((hi >> (7 - j)) & 1) << slot;
                    }
                    lo56.push(t & LO56_MASK);
                    positions.push(i as u32);
                }
            }
        }
        let lanes = positions.len();
        BitSlicedSampler { len, base, lanes, planes, active, lo56, positions }
    }

    /// Number of bitlines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sampler covers zero bitlines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of metastable bitlines (= compact lanes).
    pub fn metastable_bits(&self) -> usize {
        self.lanes
    }

    /// The row bit positions of the metastable lanes, ascending.
    pub fn lane_positions(&self) -> &[u32] {
        &self.positions
    }

    /// The half-open lane interval whose bitlines fall inside the row bit
    /// range `[start_bit, end_bit)`.
    pub fn lane_range(&self, start_bit: usize, end_bit: usize) -> (usize, usize) {
        let lo = self.positions.partition_point(|&p| (p as usize) < start_bit);
        let hi = self.positions.partition_point(|&p| (p as usize) < end_bit);
        (lo, hi)
    }

    /// Samples the metastable lanes only, into a compact bit vector of
    /// [`BitSlicedSampler::metastable_bits`] bits (lane `l` = outcome of the
    /// `l`-th metastable bitline). This is the hot-path entry: deterministic
    /// bitlines cost nothing and the output feeds the conditioner directly.
    pub fn sample_compact_into<R: RngCore + ?Sized>(&self, out: &mut BitVec, rng: &mut R) {
        if out.len() != self.lanes {
            *out = BitVec::zeros(self.lanes);
        }
        let words = out.words_mut();
        for (block, (planes, &active)) in self.planes.iter().zip(&self.active).enumerate() {
            // MSB-first bit-serial comparison of all 64 lanes' noise bytes
            // against their threshold top bytes.
            let mut undecided = active;
            let mut result = 0u64;
            for plane in planes {
                let noise = rng.next_u64();
                let diff = (noise ^ plane) & undecided;
                result |= diff & plane;
                undecided &= !diff;
            }
            // Tied lanes escalate to one full-resolution draw each.
            let mut ties = undecided;
            while ties != 0 {
                let slot = ties.trailing_zeros() as usize;
                ties &= ties - 1;
                let v = rng.next_u64() >> 8;
                result |= u64::from(v < self.lo56[block * 64 + slot]) << slot;
            }
            words[block] = result;
        }
    }

    /// Expands a compact lane sample into the full row: deterministic
    /// bitlines from the prefilled base words, metastable bitlines scattered
    /// from `compact`. Draws no noise.
    pub fn expand_compact_into(&self, compact: &BitVec, out: &mut BitVec) {
        assert_eq!(compact.len(), self.lanes, "compact sample has wrong lane count");
        if out.len() != self.len {
            *out = BitVec::zeros(self.len);
        }
        let words = out.words_mut();
        words.copy_from_slice(&self.base);
        for (block, &w) in compact.words().iter().enumerate() {
            let mut ones = w;
            while ones != 0 {
                let slot = ones.trailing_zeros() as usize;
                ones &= ones - 1;
                let pos = self.positions[block * 64 + slot] as usize;
                words[pos / 64] |= 1u64 << (pos % 64);
            }
        }
    }

    /// Samples one full QUAC outcome into `out`, reusing its storage words.
    /// Draws exactly the words [`BitSlicedSampler::sample_compact_into`]
    /// draws (the expansion is noise-free).
    pub fn sample_into<R: RngCore + ?Sized>(&self, out: &mut BitVec, rng: &mut R) {
        let mut compact = BitVec::zeros(self.lanes);
        self.sample_compact_into(&mut compact, rng);
        self.expand_compact_into(&compact, out);
    }

    /// Samples one full QUAC outcome into a fresh bit vector.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        self.sample_into(&mut out, rng);
        out
    }
}

/// Scalar reference for the bit-sliced scheme: one bitline at a time, with
/// the *same* quantisation, the same plane-wise noise consumption order, and
/// the same escalation rule as [`BitSlicedSampler`]. Bit-identical to it for
/// any noise stream (property-tested below); kept as the readable
/// specification of the bulk-drawn stream contract.
pub fn sample_bitsliced_reference<R: RngCore + ?Sized>(probs: &[f64], rng: &mut R) -> BitVec {
    let mut out = BitVec::zeros(probs.len());
    // Deterministic bitlines resolve without noise; metastable ones queue up.
    let mut metastable: Vec<(usize, u64)> = Vec::new();
    for (i, &p) in probs.iter().enumerate() {
        match BitThreshold::quantize(p) {
            BitThreshold::AlwaysZero => {}
            BitThreshold::AlwaysOne => out.set(i, true),
            BitThreshold::Metastable(t) => metastable.push((i, t)),
        }
    }
    for block in metastable.chunks(64) {
        // Eight plane words, MSB first; lane `l` of the block reads bit `l`
        // of each plane as bit `7−j` of its fresh noise byte.
        let planes: [u64; 8] = std::array::from_fn(|_| rng.next_u64());
        let mut tied = Vec::new();
        for (slot, &(pos, t)) in block.iter().enumerate() {
            let mut noise_byte = 0u8;
            for (j, plane) in planes.iter().enumerate() {
                noise_byte |= (((plane >> slot) & 1) as u8) << (7 - j);
            }
            let hi = (t >> 56) as u8;
            match noise_byte.cmp(&hi) {
                std::cmp::Ordering::Less => out.set(pos, true),
                std::cmp::Ordering::Greater => {}
                std::cmp::Ordering::Equal => tied.push((pos, t)),
            }
        }
        // Escalations, ascending lane order within the block.
        for (pos, t) in tied {
            let v = rng.next_u64() >> 8;
            if v < (t & LO56_MASK) {
                out.set(pos, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantize_endpoints_and_midpoint() {
        assert_eq!(BitThreshold::quantize(0.0), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(-1.0), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(f64::NAN), BitThreshold::AlwaysZero);
        assert_eq!(BitThreshold::quantize(1.0), BitThreshold::AlwaysOne);
        assert_eq!(BitThreshold::quantize(2.0), BitThreshold::AlwaysOne);
        assert_eq!(BitThreshold::quantize(0.5), BitThreshold::Metastable(1u64 << 63));
        // Probabilities below the 64-bit resolution are deterministic zeros.
        assert_eq!(BitThreshold::quantize(1e-30), BitThreshold::AlwaysZero);
        assert!(!BitThreshold::quantize(1e-9).is_deterministic());
    }

    #[test]
    fn deterministic_bits_draw_no_rng_words() {
        let probs = [0.0, 1.0, 0.0, 1.0];
        let sampler = PackedSampler::new(&probs);
        assert_eq!(sampler.metastable_bits(), 0);
        let mut rng_a = StdRng::seed_from_u64(1);
        let a = sampler.sample(&mut rng_a);
        assert!(!a.get(0) && a.get(1) && !a.get(2) && a.get(3));
        // The RNG was never touched: its next draw matches a fresh one.
        let mut rng_b = StdRng::seed_from_u64(1);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn sample_into_reuses_storage_and_matches_sample() {
        let probs: Vec<f64> = (0..200).map(|i| (i as f64) / 199.0).collect();
        let sampler = PackedSampler::new(&probs);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let fresh = sampler.sample(&mut rng_a);
        let mut reused = BitVec::zeros(7); // wrong length: must be re-shaped
        sampler.sample_into(&mut reused, &mut rng_b);
        assert_eq!(fresh, reused);
        // Second use keeps the same allocation and stays consistent.
        sampler.sample_into(&mut reused, &mut rng_b);
        assert_eq!(reused.len(), 200);
    }

    #[test]
    fn frequencies_respect_probabilities() {
        let probs = [0.0, 1.0, 0.5, 0.1];
        let sampler = PackedSampler::new(&probs);
        let mut rng = StdRng::seed_from_u64(4);
        let mut ones = [0u32; 4];
        for _ in 0..4000 {
            let s = sampler.sample(&mut rng);
            for (i, one) in ones.iter_mut().enumerate() {
                *one += s.get(i) as u32;
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 4000);
        assert!((ones[2] as f64 / 4000.0 - 0.5).abs() < 0.03);
        assert!((ones[3] as f64 / 4000.0 - 0.1).abs() < 0.03);
    }

    #[test]
    fn bitsliced_deterministic_bits_draw_no_noise() {
        let probs = [0.0, 1.0, 0.0, 1.0];
        let sampler = BitSlicedSampler::new(&probs);
        assert_eq!(sampler.metastable_bits(), 0);
        let mut rng = crate::NoiseRng::new(1);
        let s = sampler.sample(&mut rng);
        assert!(!s.get(0) && s.get(1) && !s.get(2) && s.get(3));
        assert_eq!(rng.words_drawn(), 0, "deterministic rows must not draw noise");
    }

    #[test]
    fn bitsliced_frequencies_respect_probabilities() {
        let probs = [0.0, 1.0, 0.5, 0.1, 0.9];
        let sampler = BitSlicedSampler::new(&probs);
        let mut rng = crate::NoiseRng::new(4);
        let mut ones = [0u32; 5];
        for _ in 0..4000 {
            let s = sampler.sample(&mut rng);
            for (i, one) in ones.iter_mut().enumerate() {
                *one += s.get(i) as u32;
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 4000);
        for (i, expect) in [(2, 0.5), (3, 0.1), (4, 0.9)] {
            let frac = ones[i] as f64 / 4000.0;
            assert!((frac - expect).abs() < 0.03, "bit {i}: {frac} vs {expect}");
        }
    }

    #[test]
    fn bitsliced_lane_range_maps_bit_ranges_to_lane_intervals() {
        // Bitlines 0..10: even ones deterministic, odd ones metastable.
        let probs: Vec<f64> = (0..10).map(|i| if i % 2 == 0 { 1.0 } else { 0.4 }).collect();
        let sampler = BitSlicedSampler::new(&probs);
        assert_eq!(sampler.metastable_bits(), 5);
        assert_eq!(sampler.lane_positions(), &[1, 3, 5, 7, 9]);
        assert_eq!(sampler.lane_range(0, 10), (0, 5));
        assert_eq!(sampler.lane_range(2, 6), (1, 3));
        assert_eq!(sampler.lane_range(4, 4), (2, 2));
    }

    proptest! {
        #[test]
        fn prop_bitsliced_is_bit_identical_to_scalar_reference(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..300),
            seed in any::<u64>(),
        ) {
            let sampler = BitSlicedSampler::new(&probs);
            let mut fast_rng = crate::NoiseRng::new(seed);
            let mut scalar_rng = crate::NoiseRng::new(seed);
            let fast = sampler.sample(&mut fast_rng);
            let scalar = sample_bitsliced_reference(&probs, &mut scalar_rng);
            prop_assert_eq!(fast, scalar);
            // Both consumed the same number of noise words.
            prop_assert_eq!(fast_rng.next_u64(), scalar_rng.next_u64());
        }

        #[test]
        fn prop_bitsliced_scheme_is_noise_source_agnostic(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..200),
            seed in any::<u64>(),
        ) {
            // The stream contract is defined over any word source, not just
            // the counter-mode noise generator.
            let sampler = BitSlicedSampler::new(&probs);
            let mut fast_rng = StdRng::seed_from_u64(seed);
            let mut scalar_rng = StdRng::seed_from_u64(seed);
            let fast = sampler.sample(&mut fast_rng);
            let scalar = sample_bitsliced_reference(&probs, &mut scalar_rng);
            prop_assert_eq!(fast, scalar);
            prop_assert_eq!(fast_rng.next_u64(), scalar_rng.next_u64());
        }

        #[test]
        fn prop_compact_and_row_samples_agree(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..300),
            seed in any::<u64>(),
        ) {
            let sampler = BitSlicedSampler::new(&probs);
            let mut compact_rng = crate::NoiseRng::new(seed);
            let mut row_rng = crate::NoiseRng::new(seed);
            let mut compact = BitVec::zeros(0);
            sampler.sample_compact_into(&mut compact, &mut compact_rng);
            let row = sampler.sample(&mut row_rng);
            // Same noise consumption, and the expansion is exactly the
            // scatter of compact lanes over the deterministic base.
            prop_assert_eq!(compact_rng.words_drawn(), row_rng.words_drawn());
            let mut expanded = BitVec::zeros(0);
            sampler.expand_compact_into(&compact, &mut expanded);
            prop_assert_eq!(&expanded, &row);
            for (lane, &pos) in sampler.lane_positions().iter().enumerate() {
                prop_assert_eq!(compact.get(lane), row.get(pos as usize));
            }
        }

        #[test]
        fn prop_bitsliced_and_packed_share_deterministic_bits(
            bits in proptest::collection::vec(any::<bool>(), 1..200),
            seed in any::<u64>(),
        ) {
            let probs: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let sampler = BitSlicedSampler::new(&probs);
            prop_assert_eq!(sampler.metastable_bits(), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sampler.sample(&mut rng);
            prop_assert_eq!(out, BitVec::from_bits(bits));
        }

        #[test]
        fn prop_packed_is_bit_identical_to_scalar_reference(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..300),
            seed in any::<u64>(),
        ) {
            let sampler = PackedSampler::new(&probs);
            let mut packed_rng = StdRng::seed_from_u64(seed);
            let mut scalar_rng = StdRng::seed_from_u64(seed);
            let packed = sampler.sample(&mut packed_rng);
            let scalar = sample_reference(&probs, &mut scalar_rng);
            prop_assert_eq!(packed, scalar);
            // Both consumed the same number of RNG words.
            prop_assert_eq!(packed_rng.next_u64(), scalar_rng.next_u64());
        }

        #[test]
        fn prop_extreme_probabilities_are_deterministic(
            bits in proptest::collection::vec(any::<bool>(), 1..200),
            seed in any::<u64>(),
        ) {
            let probs: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let sampler = PackedSampler::new(&probs);
            prop_assert_eq!(sampler.metastable_bits(), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sampler.sample(&mut rng);
            prop_assert_eq!(out, BitVec::from_bits(bits));
        }
    }
}
