//! Multi-message batched SHA-256 compression.
//!
//! The QUAC-TRNG steady-state loop hashes one short message per
//! entropy-block range per iteration. Hashing them one at a time leaves the
//! compression function scalar; this module runs up to [`BATCH_LANES`]
//! independent messages through one structure-of-arrays compression, where
//! every working variable is a `[u32; BATCH_LANES]` and every round
//! operation is an element-wise lane op the compiler turns into SIMD.
//!
//! The batch is a pure throughput transform: [`digest_many`] is pinned
//! bit-identical to the scalar reference [`Sha256::digest`] (the frozen
//! specification twin) by property tests, for arbitrary message contents,
//! lengths, and counts. Messages of different lengths batch together —
//! every lane carries its own block count and its digest is snapshotted as
//! its final block is compressed; lanes past the end of a short chunk run
//! on a dummy all-zero block and are never read back.

use crate::sha256::{Sha256, Sha256Digest};

/// Messages hashed per structure-of-arrays compression call.
///
/// Sixteen 32-bit lanes fill one 512-bit vector register; on narrower
/// machines the compiler splits the lane arrays into as many registers as
/// the target provides, so the batch width is a layout constant, not a CPU
/// requirement.
pub const BATCH_LANES: usize = 16;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SIMD-friendly vector of per-lane words.
type Lanes = [u32; BATCH_LANES];

#[inline(always)]
fn ladd(a: Lanes, b: Lanes) -> Lanes {
    std::array::from_fn(|i| a[i].wrapping_add(b[i]))
}
#[inline(always)]
fn laddk(a: Lanes, k: u32) -> Lanes {
    std::array::from_fn(|i| a[i].wrapping_add(k))
}
#[inline(always)]
fn lxor(a: Lanes, b: Lanes) -> Lanes {
    std::array::from_fn(|i| a[i] ^ b[i])
}
#[inline(always)]
fn land(a: Lanes, b: Lanes) -> Lanes {
    std::array::from_fn(|i| a[i] & b[i])
}
#[inline(always)]
fn lnotand(a: Lanes, b: Lanes) -> Lanes {
    std::array::from_fn(|i| !a[i] & b[i])
}
#[inline(always)]
fn lrotr(a: Lanes, n: u32) -> Lanes {
    std::array::from_fn(|i| a[i].rotate_right(n))
}
#[inline(always)]
fn lshr(a: Lanes, n: u32) -> Lanes {
    std::array::from_fn(|i| a[i] >> n)
}

/// One compression of a 64-byte block per lane over the SoA state.
fn compress_lanes(state: &mut [Lanes; 8], blocks: &[&[u8; 64]; BATCH_LANES]) {
    let mut w = [[0u32; BATCH_LANES]; 64];
    for (t, wt) in w[..16].iter_mut().enumerate() {
        for (l, block) in blocks.iter().enumerate() {
            wt[l] = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
    }
    for t in 16..64 {
        let s0 = lxor(lxor(lrotr(w[t - 15], 7), lrotr(w[t - 15], 18)), lshr(w[t - 15], 3));
        let s1 = lxor(lxor(lrotr(w[t - 2], 17), lrotr(w[t - 2], 19)), lshr(w[t - 2], 10));
        w[t] = ladd(ladd(w[t - 16], s0), ladd(w[t - 7], s1));
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let s1 = lxor(lxor(lrotr(e, 6), lrotr(e, 11)), lrotr(e, 25));
        let ch = lxor(land(e, f), lnotand(e, g));
        let t1 = ladd(ladd(h, s1), ladd(ch, laddk(w[t], K[t])));
        let s0 = lxor(lxor(lrotr(a, 2), lrotr(a, 13)), lrotr(a, 22));
        let maj = lxor(lxor(land(a, b), land(a, c)), land(b, c));
        let t2 = ladd(s0, maj);
        h = g;
        g = f;
        f = e;
        e = ladd(d, t1);
        d = c;
        c = b;
        b = a;
        a = ladd(t1, t2);
    }
    let fin = [a, b, c, d, e, f, g, h];
    for (s, f) in state.iter_mut().zip(fin) {
        *s = ladd(*s, f);
    }
}

/// Number of 64-byte blocks a padded `len`-byte message occupies.
#[inline]
fn block_count(len: usize) -> usize {
    len / 64 + if len % 64 < 56 { 1 } else { 2 }
}

/// Builds block `t` of the padded form of `msg` into `buf` when the block
/// is not a verbatim 64-byte slice of the message (i.e. it carries padding).
fn build_padded_block(msg: &[u8], t: usize, buf: &mut [u8; 64]) {
    buf.fill(0);
    let start = t * 64;
    if start < msg.len() {
        let take = msg.len() - start;
        buf[..take].copy_from_slice(&msg[start..]);
        buf[take] = 0x80;
    } else if start == msg.len() {
        buf[0] = 0x80;
    }
    if t + 1 == block_count(msg.len()) {
        buf[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
    }
}

/// Digests up to [`BATCH_LANES`] messages through one SoA state.
fn digest_chunk(msgs: &[&[u8]], out: &mut Vec<Sha256Digest>) {
    debug_assert!(msgs.len() <= BATCH_LANES);
    const ZERO_BLOCK: [u8; 64] = [0u8; 64];
    let blocks_needed: Vec<usize> = msgs.iter().map(|m| block_count(m.len())).collect();
    let max_blocks = blocks_needed.iter().copied().max().unwrap_or(0);
    let mut state: [Lanes; 8] = std::array::from_fn(|i| [H0[i]; BATCH_LANES]);
    let mut tails = [[0u8; 64]; BATCH_LANES];
    // Digest slots, filled lane-by-lane as each message's last block lands.
    let base = out.len();
    out.resize(base + msgs.len(), [0u8; 32]);
    for t in 0..max_blocks {
        // First pass: materialise every padded (non-verbatim) block for this
        // round, so the reference pass below can borrow `tails` immutably.
        for (l, msg) in msgs.iter().enumerate() {
            if t < blocks_needed[l] && (t + 1) * 64 > msg.len() {
                build_padded_block(msg, t, &mut tails[l]);
            }
        }
        let blocks: [&[u8; 64]; BATCH_LANES] = std::array::from_fn(|l| {
            let Some(msg) = msgs.get(l) else {
                return &ZERO_BLOCK; // unpopulated lane, never read back
            };
            if t >= blocks_needed[l] {
                &ZERO_BLOCK // finished lane, never read back
            } else if (t + 1) * 64 <= msg.len() {
                // Verbatim message block: borrow, no copy.
                msg[t * 64..(t + 1) * 64].try_into().expect("64-byte slice")
            } else {
                &tails[l]
            }
        });
        compress_lanes(&mut state, &blocks);
        for (l, &need) in blocks_needed.iter().enumerate() {
            if t + 1 == need {
                let digest = &mut out[base + l];
                for (i, row) in state.iter().enumerate() {
                    digest[4 * i..4 * i + 4].copy_from_slice(&row[l].to_be_bytes());
                }
            }
        }
    }
}

/// Digests each message independently, batching up to [`BATCH_LANES`] of
/// them per SoA compression. Bit-identical to mapping [`Sha256::digest`]
/// over the messages (property-tested), at a fraction of the per-message
/// cost when several messages batch together.
pub fn digest_many(messages: &[&[u8]]) -> Vec<Sha256Digest> {
    let mut out = Vec::with_capacity(messages.len());
    digest_many_into(messages, &mut out);
    out
}

/// [`digest_many`] into a caller-owned buffer (appended; not cleared) for
/// allocation-free steady-state use.
pub fn digest_many_into(messages: &[&[u8]], out: &mut Vec<Sha256Digest>) {
    for chunk in messages.chunks(BATCH_LANES) {
        if chunk.len() == 1 {
            // A lone message gains nothing from the SoA layout.
            out.push(Sha256::digest(chunk[0]));
        } else {
            digest_chunk(chunk, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_count_matches_padding_rules() {
        for (len, blocks) in [(0, 1), (1, 1), (55, 1), (56, 2), (63, 2), (64, 2), (119, 2), (120, 3), (128, 3)] {
            assert_eq!(block_count(len), blocks, "len {len}");
        }
    }

    #[test]
    fn batch_matches_scalar_on_fips_vectors() {
        let msgs: Vec<&[u8]> = vec![
            b"",
            b"abc",
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        ];
        let batched = digest_many(&msgs);
        for (m, d) in msgs.iter().zip(&batched) {
            assert_eq!(d, &Sha256::digest(m));
        }
    }

    #[test]
    fn full_batch_of_equal_length_messages() {
        let msgs: Vec<Vec<u8>> =
            (0..BATCH_LANES as u8).map(|i| (0..90u8).map(|j| i.wrapping_mul(31) ^ j).collect()).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batched = digest_many(&refs);
        assert_eq!(batched.len(), BATCH_LANES);
        for (m, d) in refs.iter().zip(&batched) {
            assert_eq!(d, &Sha256::digest(m));
        }
    }

    proptest! {
        #[test]
        fn prop_batch_is_bit_identical_to_scalar_reference(
            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..40),
        ) {
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let batched = digest_many(&refs);
            prop_assert_eq!(batched.len(), refs.len());
            for (m, d) in refs.iter().zip(&batched) {
                prop_assert_eq!(d, &Sha256::digest(m));
            }
        }

        #[test]
        fn prop_mixed_block_counts_batch_correctly(
            lens in proptest::collection::vec(0usize..300, 2..=BATCH_LANES),
            seed in any::<u8>(),
        ) {
            // Lengths straddling block boundaries in one chunk exercise the
            // finished-lane masking and per-lane digest snapshots.
            let msgs: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| (0..len).map(|j| (j as u8) ^ seed.wrapping_add(i as u8)).collect())
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let batched = digest_many(&refs);
            for (m, d) in refs.iter().zip(&batched) {
                prop_assert_eq!(d, &Sha256::digest(m));
            }
        }
    }
}
