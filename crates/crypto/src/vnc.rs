//! The Von Neumann corrector (von Neumann, 1951), used by the paper to
//! de-bias raw sense-amplifier bitstreams before NIST testing (Section 6.2).

use qt_dram_core::BitVec;

/// Von Neumann corrector: examines non-overlapping bit pairs, discards equal
/// pairs, and emits one bit per unequal pair.
///
/// The paper's convention (Section 6.2): a `01` transition emits `1`, a `10`
/// transition emits `0`, and equal pairs are dropped — e.g. `"0010"` becomes
/// `"0"`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VonNeumannCorrector;

impl VonNeumannCorrector {
    /// Applies the corrector to a bitstream and returns the (shorter)
    /// de-biased stream.
    ///
    /// Works word-at-a-time on the `BitVec`'s packed `u64` storage: each word
    /// holds 32 non-overlapping pairs, the surviving pairs are found with one
    /// XOR (`first ^ second` at the even bit positions), and only survivors
    /// are visited — cost is proportional to the *output* length plus one
    /// pass over the words, not to the input length. Bit-identical to
    /// [`VonNeumannCorrector::correct_pairwise`] (property-tested).
    pub fn correct(bits: &BitVec) -> BitVec {
        /// Mask of the even bit positions (each pair's first bit).
        const EVEN: u64 = 0x5555_5555_5555_5555;
        let pairs = bits.len() / 2;
        let mut out_words: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        let mut acc_len = 0u32;
        let mut out_len = 0usize;
        for (k, &word) in bits.words().iter().enumerate() {
            // Pairs never straddle words (64 is even); the final word may
            // hold fewer than 32 complete pairs.
            let pairs_here = pairs.saturating_sub(32 * k).min(32);
            if pairs_here == 0 {
                break;
            }
            let pair_mask =
                if pairs_here == 32 { u64::MAX } else { (1u64 << (2 * pairs_here)) - 1 };
            // Surviving pairs: first != second. The emitted bit is the pair's
            // second bit (`01` -> 1, `10` -> 0).
            let mut survivors = ((word ^ (word >> 1)) & EVEN) & pair_mask;
            while survivors != 0 {
                let i = survivors.trailing_zeros();
                acc |= ((word >> (i + 1)) & 1) << acc_len;
                acc_len += 1;
                out_len += 1;
                if acc_len == 64 {
                    out_words.push(acc);
                    acc = 0;
                    acc_len = 0;
                }
                survivors &= survivors - 1;
            }
        }
        if acc_len > 0 {
            out_words.push(acc);
        }
        BitVec::from_words(out_words, out_len)
    }

    /// The pair-at-a-time reference implementation: examines each
    /// non-overlapping pair with two single-bit reads. [`Self::correct`] is
    /// property-tested bit-identical to this definition.
    pub fn correct_pairwise(bits: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(0);
        let mut i = 0;
        while i + 1 < bits.len() {
            let first = bits.get(i);
            let second = bits.get(i + 1);
            if first != second {
                // 0 then 1 -> emit 1; 1 then 0 -> emit 0.
                out.push(!first);
            }
            i += 2;
        }
        out
    }

    /// Expected output/input length ratio for an i.i.d. Bernoulli(p) input:
    /// `p(1-p)` (each pair survives with probability `2p(1-p)` and yields one
    /// bit from two).
    pub fn expected_yield(p_one: f64) -> f64 {
        p_one * (1.0 - p_one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example() {
        // "0010": pair "00" dropped, pair "10" -> 0.
        let out = VonNeumannCorrector::correct(&BitVec::from_bit_str("0010").unwrap());
        assert_eq!(out.len(), 1);
        assert!(!out.get(0));
    }

    #[test]
    fn transitions_map_correctly() {
        let out = VonNeumannCorrector::correct(&BitVec::from_bit_str("011000").unwrap());
        // Pairs: "01" -> 1, "10" -> 0, "00" -> dropped.
        assert_eq!(out, BitVec::from_bit_str("10").unwrap());
    }

    #[test]
    fn constant_input_produces_nothing() {
        assert!(VonNeumannCorrector::correct(&BitVec::ones(1000)).is_empty());
        assert!(VonNeumannCorrector::correct(&BitVec::zeros(1000)).is_empty());
    }

    #[test]
    fn odd_trailing_bit_is_ignored() {
        let a = VonNeumannCorrector::correct(&BitVec::from_bit_str("0110").unwrap());
        let b = VonNeumannCorrector::correct(&BitVec::from_bit_str("01101").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn corrector_removes_bias() {
        // A heavily biased Bernoulli(0.85) stream becomes balanced.
        let mut rng = StdRng::seed_from_u64(3);
        let biased = BitVec::from_bits((0..200_000).map(|_| rng.gen::<f64>() < 0.85));
        let corrected = VonNeumannCorrector::correct(&biased);
        assert!(!corrected.is_empty());
        let frac = corrected.ones_fraction();
        assert!((frac - 0.5).abs() < 0.02, "corrected ones fraction {frac}");
        // Yield matches the analytic expectation.
        let expected = VonNeumannCorrector::expected_yield(0.85);
        let measured = corrected.len() as f64 / biased.len() as f64;
        assert!((measured - expected).abs() < 0.02, "yield {measured} vs {expected}");
    }

    #[test]
    fn word_wise_matches_pairwise_at_word_boundaries() {
        // Lengths straddling the u64 word boundary and pair parity exercise
        // the tail masking of the word-wise path.
        let mut rng = StdRng::seed_from_u64(9);
        for len in [0, 1, 2, 63, 64, 65, 126, 127, 128, 129, 191, 192, 1000] {
            for bias in [0.05, 0.5, 0.95] {
                let bits = BitVec::from_bits((0..len).map(|_| rng.gen::<f64>() < bias));
                assert_eq!(
                    VonNeumannCorrector::correct(&bits),
                    VonNeumannCorrector::correct_pairwise(&bits),
                    "len {len} bias {bias}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_word_wise_is_bit_identical_to_pairwise(
            bits in proptest::collection::vec(any::<bool>(), 0..700),
        ) {
            let input = BitVec::from_bits(bits);
            prop_assert_eq!(
                VonNeumannCorrector::correct(&input),
                VonNeumannCorrector::correct_pairwise(&input)
            );
        }

        #[test]
        fn prop_output_no_longer_than_half(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let input = BitVec::from_bits(bits);
            let out = VonNeumannCorrector::correct(&input);
            prop_assert!(out.len() <= input.len() / 2);
        }

        #[test]
        fn prop_idempotent_on_empty_and_deterministic(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let input = BitVec::from_bits(bits);
            prop_assert_eq!(
                VonNeumannCorrector::correct(&input),
                VonNeumannCorrector::correct(&input)
            );
        }
    }
}
