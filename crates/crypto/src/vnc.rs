//! The Von Neumann corrector (von Neumann, 1951), used by the paper to
//! de-bias raw sense-amplifier bitstreams before NIST testing (Section 6.2).

use qt_dram_core::BitVec;

/// Von Neumann corrector: examines non-overlapping bit pairs, discards equal
/// pairs, and emits one bit per unequal pair.
///
/// The paper's convention (Section 6.2): a `01` transition emits `1`, a `10`
/// transition emits `0`, and equal pairs are dropped — e.g. `"0010"` becomes
/// `"0"`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VonNeumannCorrector;

impl VonNeumannCorrector {
    /// Applies the corrector to a bitstream and returns the (shorter)
    /// de-biased stream.
    pub fn correct(bits: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(0);
        let mut i = 0;
        while i + 1 < bits.len() {
            let first = bits.get(i);
            let second = bits.get(i + 1);
            if first != second {
                // 0 then 1 -> emit 1; 1 then 0 -> emit 0.
                out.push(!first);
            }
            i += 2;
        }
        out
    }

    /// Expected output/input length ratio for an i.i.d. Bernoulli(p) input:
    /// `p(1-p)` (each pair survives with probability `2p(1-p)` and yields one
    /// bit from two).
    pub fn expected_yield(p_one: f64) -> f64 {
        p_one * (1.0 - p_one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example() {
        // "0010": pair "00" dropped, pair "10" -> 0.
        let out = VonNeumannCorrector::correct(&BitVec::from_bit_str("0010").unwrap());
        assert_eq!(out.len(), 1);
        assert!(!out.get(0));
    }

    #[test]
    fn transitions_map_correctly() {
        let out = VonNeumannCorrector::correct(&BitVec::from_bit_str("011000").unwrap());
        // Pairs: "01" -> 1, "10" -> 0, "00" -> dropped.
        assert_eq!(out, BitVec::from_bit_str("10").unwrap());
    }

    #[test]
    fn constant_input_produces_nothing() {
        assert!(VonNeumannCorrector::correct(&BitVec::ones(1000)).is_empty());
        assert!(VonNeumannCorrector::correct(&BitVec::zeros(1000)).is_empty());
    }

    #[test]
    fn odd_trailing_bit_is_ignored() {
        let a = VonNeumannCorrector::correct(&BitVec::from_bit_str("0110").unwrap());
        let b = VonNeumannCorrector::correct(&BitVec::from_bit_str("01101").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn corrector_removes_bias() {
        // A heavily biased Bernoulli(0.85) stream becomes balanced.
        let mut rng = StdRng::seed_from_u64(3);
        let biased = BitVec::from_bits((0..200_000).map(|_| rng.gen::<f64>() < 0.85));
        let corrected = VonNeumannCorrector::correct(&biased);
        assert!(!corrected.is_empty());
        let frac = corrected.ones_fraction();
        assert!((frac - 0.5).abs() < 0.02, "corrected ones fraction {frac}");
        // Yield matches the analytic expectation.
        let expected = VonNeumannCorrector::expected_yield(0.85);
        let measured = corrected.len() as f64 / biased.len() as f64;
        assert!((measured - expected).abs() < 0.02, "yield {measured} vs {expected}");
    }

    proptest! {
        #[test]
        fn prop_output_no_longer_than_half(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let input = BitVec::from_bits(bits);
            let out = VonNeumannCorrector::correct(&input);
            prop_assert!(out.len() <= input.len() / 2);
        }

        #[test]
        fn prop_idempotent_on_empty_and_deterministic(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let input = BitVec::from_bits(bits);
            prop_assert_eq!(
                VonNeumannCorrector::correct(&input),
                VonNeumannCorrector::correct(&input)
            );
        }
    }
}
