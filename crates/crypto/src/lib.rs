//! # qt-crypto
//!
//! Post-processing primitives for DRAM-based TRNGs: a from-scratch FIPS 180-4
//! SHA-256 implementation, the Von Neumann corrector, and a hardware cost
//! model for the memory-controller SHA-256 core assumed by the paper
//! (Section 9).
//!
//! ## Example
//!
//! ```
//! use qt_crypto::{Sha256, VonNeumannCorrector};
//! use qt_dram_core::BitVec;
//!
//! // SHA-256 of the empty message (FIPS 180-4 test vector).
//! let digest = Sha256::digest(b"");
//! assert_eq!(digest[0], 0xe3);
//!
//! // The paper's VNC example: "0010" post-processes to "0".
//! let out = VonNeumannCorrector::correct(&BitVec::from_bit_str("0010").unwrap());
//! assert_eq!(out.len(), 1);
//! assert!(!out.get(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod sha256;
pub mod vnc;

pub use batch::{digest_many, digest_many_into, BATCH_LANES};
pub use cost::Sha256HardwareCost;
pub use sha256::{Sha256, Sha256Digest, DIGEST_BITS};
pub use vnc::VonNeumannCorrector;
