//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! QUAC-TRNG post-processes each 256-bit-entropy block read from the sense
//! amplifiers with SHA-256 to produce a 256-bit true random number
//! (Section 5.2). The implementation below is a straightforward, dependency-
//! free realisation of the standard with incremental (streaming) hashing.

use qt_dram_core::BitVec;

/// Number of bits in a SHA-256 digest.
pub const DIGEST_BITS: usize = 256;

/// A SHA-256 digest (32 bytes).
pub type Sha256Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; 64], buffer_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill the partial buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Process full blocks directly from the input, without staging them
        // through the partial-block buffer.
        while input.len() >= 64 {
            self.compress(&input[..64]);
            input = &input[64..];
        }
        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finalises the hash and returns the digest.
    pub fn finalize(mut self) -> Sha256Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update_padding();
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience: digest of a byte slice.
    pub fn digest(data: &[u8]) -> Sha256Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes a bit vector (packed LSB-first as produced by
    /// [`BitVec::to_bytes`]) and returns the digest as a 256-bit vector —
    /// the exact post-processing step of the QUAC-TRNG pipeline.
    pub fn digest_bits(bits: &BitVec) -> BitVec {
        let digest = Self::digest(&bits.to_bytes());
        BitVec::from_bytes(&digest, DIGEST_BITS)
    }

    fn update_padding(&mut self) {
        // Append 0x80 then zero until 56 bytes of the final block remain for
        // the length. May require an extra block.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let buffered = self.buffer_len;
        let pad_len = if buffered < 56 { 56 - buffered } else { 120 - buffered };
        let total = self.total_len;
        self.update(&pad[..pad_len]);
        // `update` advanced total_len over the padding; restore it so the
        // length word is the message length only.
        self.total_len = total;
        debug_assert_eq!(self.buffer_len, 56);
    }

    /// One compression round of a 64-byte block. The message schedule is
    /// expanded four words at a time and the 64 rounds run in unrolled groups
    /// of eight with the working variables rotated *positionally* (no
    /// eight-way register shuffle per round) — the classic software
    /// unrolling, worth ~2× over the naïve loop in the TRNG's hashing stage.
    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 64];
        for (wi, chunk) in w[..16].iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        #[inline(always)]
        fn sched(w: &[u32; 64], i: usize) -> u32 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1)
        }
        let mut i = 16;
        while i < 64 {
            w[i] = sched(&w, i);
            w[i + 1] = sched(&w, i + 1);
            w[i + 2] = sched(&w, i + 2);
            w[i + 3] = sched(&w, i + 3);
            i += 4;
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            };
        }
        let mut i = 0;
        while i < 64 {
            round!(a, b, c, d, e, f, g, h, i);
            round!(h, a, b, c, d, e, f, g, i + 1);
            round!(g, h, a, b, c, d, e, f, i + 2);
            round!(f, g, h, a, b, c, d, e, i + 3);
            round!(e, f, g, h, a, b, c, d, i + 4);
            round!(d, e, f, g, h, a, b, c, i + 5);
            round!(c, d, e, f, g, h, a, b, i + 6);
            round!(b, c, d, e, f, g, h, a, i + 7);
            i += 8;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(digest: &Sha256Digest) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_test_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let one_shot = Sha256::digest(&data);
        for split in [0, 1, 13, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn digest_bits_is_256_bits_and_deterministic() {
        let input = BitVec::from_bits((0..512).map(|i| i % 3 == 0));
        let a = Sha256::digest_bits(&input);
        let b = Sha256::digest_bits(&input);
        assert_eq!(a.len(), DIGEST_BITS);
        assert_eq!(a, b);
        // A different input produces a different digest.
        let other = BitVec::from_bits((0..512).map(|i| i % 3 == 1));
        assert_ne!(Sha256::digest_bits(&other), a);
    }

    #[test]
    fn digest_output_is_roughly_balanced() {
        // Hash many counter blocks; the concatenated output should be close
        // to 50% ones (a weak but meaningful whiteness check).
        let mut ones = 0usize;
        let mut total = 0usize;
        for i in 0u32..200 {
            let d = Sha256::digest(&i.to_le_bytes());
            for byte in d {
                ones += byte.count_ones() as usize;
                total += 8;
            }
        }
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    proptest! {
        #[test]
        fn prop_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..300),
                                            split in 0usize..300) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha256::digest(&data));
        }

        #[test]
        fn prop_distinct_messages_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..100),
                                                   b in proptest::collection::vec(any::<u8>(), 0..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
        }
    }
}
