//! Hardware cost model for the memory-controller SHA-256 core.
//!
//! The paper accounts for the SHA-256 post-processing hardware using numbers
//! reported by Baldanzi et al. (Section 9): 65 clock cycles of latency at
//! 5.15 GHz, 19.7 Gb/s of throughput, and 0.001 mm² in a 7 nm node.

use serde::{Deserialize, Serialize};

/// Cost model of a hardware SHA-256 core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sha256HardwareCost {
    /// Pipeline latency of one digest, in clock cycles.
    pub latency_cycles: u32,
    /// Core clock frequency in GHz.
    pub clock_ghz: f64,
    /// Sustained throughput in Gb/s.
    pub throughput_gbps: f64,
    /// Area in mm² at the stated process node.
    pub area_mm2: f64,
    /// Process node in nanometres.
    pub process_nm: u32,
}

impl Sha256HardwareCost {
    /// The cost point the paper uses (Baldanzi et al., 7 nm).
    pub fn paper_reference() -> Self {
        Sha256HardwareCost {
            latency_cycles: 65,
            clock_ghz: 5.15,
            throughput_gbps: 19.7,
            area_mm2: 0.001,
            process_nm: 7,
        }
    }

    /// Latency of one digest in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.latency_cycles as f64 / self.clock_ghz
    }

    /// Time to hash `bits` of input at the sustained throughput, in
    /// nanoseconds (lower-bounded by one digest latency).
    pub fn hash_time_ns(&self, bits: u64) -> f64 {
        let streaming = bits as f64 / self.throughput_gbps;
        streaming.max(self.latency_ns())
    }

    /// Returns `true` if this core can keep up with a random-number source of
    /// the given throughput (Gb/s) without becoming the bottleneck.
    pub fn sustains_gbps(&self, source_gbps: f64) -> bool {
        self.throughput_gbps >= source_gbps
    }
}

impl Default for Sha256HardwareCost {
    fn default() -> Self {
        Self::paper_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_latency_is_about_12_6_ns() {
        let c = Sha256HardwareCost::paper_reference();
        assert!((c.latency_ns() - 12.62).abs() < 0.05);
    }

    #[test]
    fn hash_time_is_latency_bound_for_small_inputs() {
        let c = Sha256HardwareCost::paper_reference();
        assert_eq!(c.hash_time_ns(64), c.latency_ns());
        // Larger inputs become throughput bound.
        assert!(c.hash_time_ns(256) >= c.latency_ns());
        assert!(c.hash_time_ns(1_000_000) > c.latency_ns());
    }

    #[test]
    fn core_sustains_single_channel_quac_rate() {
        let c = Sha256HardwareCost::paper_reference();
        // 5.41 Gb/s is the maximum per-channel rate in Figure 11.
        assert!(c.sustains_gbps(5.41));
        assert!(!c.sustains_gbps(50.0));
    }
}
