//! Special functions required by SP 800-22: the complementary error function
//! and the regularized incomplete gamma functions, plus the FFTs backing the
//! spectral test.
//!
//! Two FFTs live here. [`fft`] is the frozen complex radix-2 reference:
//! simple, twiddles by recurrence, kept byte-for-byte stable so rewrites can
//! be pinned against it. [`RealFftPlan`] is the production path for the
//! spectral test's *real* ±1 input: it packs even/odd samples into one
//! half-length complex transform (halving the butterfly work), precomputes
//! per-stage twiddle tables and the bit-reversal permutation once per length
//! (amortised across the many same-length calls a test battery makes), and
//! fuses the input packing with the bit-reversal load so no separate
//! permutation pass runs. The equivalence tests pin its half-spectrum
//! magnitudes to the reference transform's to within a few ulps.

/// Complementary error function (via the Abramowitz–Stegun erf
/// approximation).
pub fn erfc(x: f64) -> f64 {
    1.0 - qt_erf(x)
}

fn qt_erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = G[0];
        let t = x + 7.5;
        for (i, &g) in G.iter().enumerate().skip(1) {
            a += g / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function P(a, x).
pub fn igam(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x > a + 1.0 {
        return 1.0 - igamc(a, x);
    }
    // Series expansion.
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x), the
/// `igamc` used throughout SP 800-22.
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        return 1.0 - igam(a, x);
    }
    // Continued fraction (Lentz's algorithm).
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Standard normal CDF Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// In-place iterative radix-2 FFT of a complex sequence given as separate
/// real/imaginary arrays.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "real and imaginary parts must match");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cur_r - im[i + k + len / 2] * cur_i,
                    re[i + k + len / 2] * cur_i + im[i + k + len / 2] * cur_r,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// A reusable FFT plan for *real* input of fixed power-of-two length `n`.
///
/// The plan performs one complex FFT of length `n/2` over the even/odd
/// packed input and untangles the result into the real input's half
/// spectrum. All trigonometry — per-stage butterfly twiddles and the final
/// untangling twiddles `e^{-2πik/n}` — is evaluated once at plan build time
/// with direct `cos`/`sin` calls (no error-accumulating recurrence), and the
/// bit-reversal permutation is stored so input loading and reordering fuse
/// into one pass.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// Bit-reversal permutation of the half-length transform: element `i` of
    /// the working array is loaded from packed complex sample `rev[i]`.
    rev: Vec<u32>,
    /// Per-stage butterfly twiddles `e^{-2πik/len}`, stages concatenated in
    /// ascending `len` order (`len = 2, 4, …, n/2`), `len/2` entries each.
    twiddles: Vec<(f64, f64)>,
    /// Untangling twiddles `e^{-2πik/n}` for `k` in `0..n/2`.
    untangle: Vec<(f64, f64)>,
}

impl RealFftPlan {
    /// Builds a plan for real input of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT length must be a power of two >= 2");
        let h = n / 2;
        let stages = h.trailing_zeros();
        let mut rev = vec![0u32; h];
        if stages > 0 {
            for (i, r) in rev.iter_mut().enumerate() {
                *r = (i.reverse_bits() >> (usize::BITS - stages)) as u32;
            }
        }
        let mut twiddles = Vec::with_capacity(h.saturating_sub(1));
        let mut len = 2usize;
        while len <= h {
            for k in 0..len / 2 {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                twiddles.push((ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        let untangle = (0..h)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                (ang.cos(), ang.sin())
            })
            .collect();
        RealFftPlan { n, rev, twiddles, untangle }
    }

    /// The real input length this plan transforms.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length (never: `n >= 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Computes `|X[k]|` for `k` in `0..n/2` of the real sequence `input`,
    /// appending into `out` (cleared first). This is exactly the magnitude
    /// set the SP 800-22 spectral test thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn magnitudes_into(&self, input: &[f64], out: &mut Vec<f64>) {
        assert_eq!(input.len(), self.n, "input length must match the plan");
        let h = self.n / 2;
        // Pack x[2i] + i·x[2i+1] directly in bit-reversed order: the load is
        // the permutation pass.
        let mut re: Vec<f64> = self.rev.iter().map(|&r| input[2 * r as usize]).collect();
        let mut im: Vec<f64> = self.rev.iter().map(|&r| input[2 * r as usize + 1]).collect();
        // Iterative butterflies over the precomputed per-stage tables.
        let mut len = 2usize;
        let mut tw_off = 0usize;
        while len <= h {
            let half = len / 2;
            let tw = &self.twiddles[tw_off..tw_off + half];
            let mut i = 0;
            while i < h {
                for (k, &(wr, wi)) in tw.iter().enumerate() {
                    let (ur, ui) = (re[i + k], im[i + k]);
                    let (xr, xi) = (re[i + k + half], im[i + k + half]);
                    let (vr, vi) = (xr * wr - xi * wi, xr * wi + xi * wr);
                    re[i + k] = ur + vr;
                    im[i + k] = ui + vi;
                    re[i + k + half] = ur - vr;
                    im[i + k + half] = ui - vi;
                }
                i += len;
            }
            tw_off += half;
            len <<= 1;
        }
        // Untangle Z = FFT(even + i·odd) into the real input's spectrum:
        //   Fe[k] = (Z[k] + conj(Z[(h-k) mod h])) / 2        (FFT of evens)
        //   Fo[k] = (Z[k] - conj(Z[(h-k) mod h])) / (2i)     (FFT of odds)
        //   X[k]  = Fe[k] + e^{-2πik/n} · Fo[k]
        out.clear();
        out.reserve(h);
        for k in 0..h {
            let j = (h - k) & (h - 1);
            let (ar, ai) = (re[k], im[k]);
            let (br, bi) = (re[j], -im[j]);
            let (fer, fei) = (0.5 * (ar + br), 0.5 * (ai + bi));
            let (dr, di) = (0.5 * (ar - br), 0.5 * (ai - bi));
            // (dr + i·di) / i = di − i·dr.
            let (f_or, f_oi) = (di, -dr);
            let (wr, wi) = self.untangle[k];
            let xr = fer + f_or * wr - f_oi * wi;
            let xi = fei + f_or * wi + f_oi * wr;
            out.push((xr * xr + xi * xi).sqrt());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-4);
        assert!(erfc(5.0) < 1e-10);
        assert!((erfc(-1.0) - 1.842700).abs() < 1e-4);
    }

    #[test]
    fn gamma_functions_match_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // P(a, x) + Q(a, x) = 1.
        for &(a, x) in &[(0.5, 0.2), (2.0, 3.0), (10.0, 8.0), (30.0, 35.0)] {
            assert!((igam(a, x) + igamc(a, x) - 1.0).abs() < 1e-8, "a={a} x={x}");
        }
        // Q(1, x) = exp(-x).
        assert!((igamc(1.0, 2.0) - (-2.0f64).exp()).abs() < 1e-8);
        // Chi-square survival: Q(k/2, x/2) for k=2, x=5.99 ≈ 0.05.
        assert!((igamc(1.0, 5.99 / 2.0) - 0.05).abs() < 0.002);
    }

    #[test]
    fn fft_of_impulse_is_flat_and_of_constant_is_a_spike() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..n {
            assert!((re[k] - 1.0).abs() < 1e-12 && im[k].abs() < 1e-12);
        }
        let mut re = vec![1.0; n];
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        assert!((re[0] - n as f64).abs() < 1e-9);
        for k in 1..n {
            assert!(re[k].abs() < 1e-9 && im[k].abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft(&mut re, &mut im);
    }

    /// Reference half-spectrum magnitudes via the frozen complex FFT.
    fn reference_magnitudes(input: &[f64]) -> Vec<f64> {
        let n = input.len();
        let mut re = input.to_vec();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        (0..n / 2).map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt()).collect()
    }

    /// Deterministic pseudo-random ±1 input (SplitMix64 parity) — the
    /// spectral test's actual input shape.
    fn pm1_input(n: usize, seed: u64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                if (x ^ (x >> 31)).count_ones() % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect()
    }

    #[test]
    fn real_fft_plan_matches_complex_reference_across_lengths() {
        for n in [2usize, 4, 8, 64, 512, 4096] {
            let input = pm1_input(n, n as u64);
            let reference = reference_magnitudes(&input);
            let plan = RealFftPlan::new(n);
            assert_eq!(plan.len(), n);
            let mut mags = Vec::new();
            plan.magnitudes_into(&input, &mut mags);
            assert_eq!(mags.len(), n / 2);
            for (k, (a, b)) in mags.iter().zip(&reference).enumerate() {
                let tol = 1e-9 * (n as f64) + 1e-12;
                assert!((a - b).abs() < tol, "n={n} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn real_fft_plan_handles_non_pm1_input() {
        // Arbitrary real values, not just ±1 — the untangling must be
        // correct for any real sequence.
        let input: Vec<f64> = (0..256).map(|i| ((i * 37 % 101) as f64 - 50.0) / 7.0).collect();
        let reference = reference_magnitudes(&input);
        let mut mags = Vec::new();
        RealFftPlan::new(256).magnitudes_into(&input, &mut mags);
        for (a, b) in mags.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn real_fft_plan_is_reusable_across_calls() {
        let plan = RealFftPlan::new(128);
        let mut first = Vec::new();
        let mut again = Vec::new();
        let input = pm1_input(128, 9);
        plan.magnitudes_into(&input, &mut first);
        plan.magnitudes_into(&input, &mut again);
        assert_eq!(first, again);
        // A different input through the same plan gives a different
        // spectrum (the plan holds no per-call state).
        plan.magnitudes_into(&pm1_input(128, 10), &mut again);
        assert_ne!(first, again);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn real_fft_plan_rejects_non_power_of_two() {
        let _ = RealFftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "match the plan")]
    fn real_fft_plan_rejects_wrong_input_length() {
        let mut out = Vec::new();
        RealFftPlan::new(16).magnitudes_into(&[1.0; 8], &mut out);
    }
}
