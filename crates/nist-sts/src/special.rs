//! Special functions required by SP 800-22: the complementary error function
//! and the regularized incomplete gamma functions, plus a radix-2 FFT for the
//! spectral test.

/// Complementary error function (via the Abramowitz–Stegun erf
/// approximation).
pub fn erfc(x: f64) -> f64 {
    1.0 - qt_erf(x)
}

fn qt_erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = G[0];
        let t = x + 7.5;
        for (i, &g) in G.iter().enumerate().skip(1) {
            a += g / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function P(a, x).
pub fn igam(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x > a + 1.0 {
        return 1.0 - igamc(a, x);
    }
    // Series expansion.
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x), the
/// `igamc` used throughout SP 800-22.
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        return 1.0 - igam(a, x);
    }
    // Continued fraction (Lentz's algorithm).
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Standard normal CDF Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// In-place iterative radix-2 FFT of a complex sequence given as separate
/// real/imaginary arrays.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "real and imaginary parts must match");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cur_r - im[i + k + len / 2] * cur_i,
                    re[i + k + len / 2] * cur_i + im[i + k + len / 2] * cur_r,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-4);
        assert!(erfc(5.0) < 1e-10);
        assert!((erfc(-1.0) - 1.842700).abs() < 1e-4);
    }

    #[test]
    fn gamma_functions_match_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // P(a, x) + Q(a, x) = 1.
        for &(a, x) in &[(0.5, 0.2), (2.0, 3.0), (10.0, 8.0), (30.0, 35.0)] {
            assert!((igam(a, x) + igamc(a, x) - 1.0).abs() < 1e-8, "a={a} x={x}");
        }
        // Q(1, x) = exp(-x).
        assert!((igamc(1.0, 2.0) - (-2.0f64).exp()).abs() < 1e-8);
        // Chi-square survival: Q(k/2, x/2) for k=2, x=5.99 ≈ 0.05.
        assert!((igamc(1.0, 5.99 / 2.0) - 0.05).abs() < 0.002);
    }

    #[test]
    fn fft_of_impulse_is_flat_and_of_constant_is_a_spike() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..n {
            assert!((re[k] - 1.0).abs() < 1e-12 && im[k].abs() < 1e-12);
        }
        let mut re = vec![1.0; n];
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        assert!((re[0] - n as f64).abs() < 1e-9);
        for k in 1..n {
            assert!(re[k].abs() < 1e-9 && im[k].abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft(&mut re, &mut im);
    }
}
