//! The fifteen SP 800-22 statistical tests.
//!
//! Each function returns a [`TestResult`] whose `p_value` is the (minimum)
//! p-value of the test. When a sequence fails a test's preconditions (too
//! few bits, too few zero-crossing cycles for the excursion tests) the
//! result is explicitly [`Applicability::NotApplicable`] — carrying the
//! failed requirement and the observed value, with `p_value = NaN` — rather
//! than a misleading `p = 0`.

use crate::special::{erfc, fft, igamc, std_normal_cdf};
use crate::{Applicability, TestResult};
use qt_dram_core::BitVec;

fn result(name: &'static str, p_value: f64) -> TestResult {
    TestResult {
        name,
        p_value: p_value.clamp(0.0, 1.0),
        applicability: Applicability::Applicable,
    }
}

/// An explicit "not applicable" result: the sequence failed the named
/// precondition, so no p-value exists (`NaN`, not a fake 0).
fn not_applicable(
    name: &'static str,
    requirement: &'static str,
    required: usize,
    actual: usize,
) -> TestResult {
    TestResult {
        name,
        p_value: f64::NAN,
        applicability: Applicability::NotApplicable { requirement, required, actual },
    }
}

/// 2.1 Frequency (monobit) test.
pub fn monobit(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n == 0 {
        return not_applicable("monobit", "bits", 1, n);
    }
    let sum: i64 = bits.iter().map(|b| if b { 1i64 } else { -1 }).sum();
    let s_obs = (sum.abs() as f64) / (n as f64).sqrt();
    result("monobit", erfc(s_obs / std::f64::consts::SQRT_2))
}

/// 2.2 Frequency test within a block.
pub fn frequency_within_block(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len.max(2);
    let blocks = n / m;
    if blocks == 0 {
        return not_applicable("frequency_within_block", "bits", m, n);
    }
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = (0..m).filter(|i| bits.get(b * m + i)).count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5).powi(2);
    }
    chi2 *= 4.0 * m as f64;
    result("frequency_within_block", igamc(blocks as f64 / 2.0, chi2 / 2.0))
}

/// 2.3 Runs test.
pub fn runs(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("runs", "bits", 100, n);
    }
    let pi = bits.ones_fraction();
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        // Prerequisite frequency test fails decisively.
        return result("runs", 0.0);
    }
    let mut v = 1usize;
    for i in 1..n {
        if bits.get(i) != bits.get(i - 1) {
            v += 1;
        }
    }
    let num = (v as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    result("runs", erfc(num / den))
}

/// 2.4 Test for the longest run of ones in a block.
pub fn longest_run_of_ones(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let (m, v_bounds, pi): (usize, Vec<usize>, Vec<f64>) = if n >= 750_000 {
        (
            10_000,
            vec![10, 11, 12, 13, 14, 15, 16],
            vec![0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        )
    } else if n >= 6272 {
        (128, vec![4, 5, 6, 7, 8, 9], vec![0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124])
    } else if n >= 128 {
        (8, vec![1, 2, 3, 4], vec![0.2148, 0.3672, 0.2305, 0.1875])
    } else {
        return not_applicable("longest_run_ones_in_a_block", "bits", 128, n);
    };
    let blocks = n / m;
    let k = pi.len() - 1;
    let mut counts = vec![0usize; pi.len()];
    for b in 0..blocks {
        let mut longest = 0usize;
        let mut current = 0usize;
        for i in 0..m {
            if bits.get(b * m + i) {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let bucket = if longest <= v_bounds[0] {
            0
        } else if longest >= v_bounds[k] {
            k
        } else {
            longest - v_bounds[0]
        };
        counts[bucket] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..pi.len() {
        let expected = blocks as f64 * pi[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("longest_run_ones_in_a_block", igamc(k as f64 / 2.0, chi2 / 2.0))
}

fn gf2_rank(rows: &mut [u32], size: usize) -> usize {
    let mut rank = 0;
    for col in (0..size).rev() {
        let mask = 1u32 << col;
        if let Some(pivot) = (rank..size).find(|&r| rows[r] & mask != 0) {
            rows.swap(rank, pivot);
            for r in 0..size {
                if r != rank && rows[r] & mask != 0 {
                    rows[r] ^= rows[rank];
                }
            }
            rank += 1;
        }
    }
    rank
}

/// 2.5 Binary matrix rank test (32×32 matrices).
pub fn binary_matrix_rank(bits: &BitVec) -> TestResult {
    const M: usize = 32;
    let n = bits.len();
    let matrices = n / (M * M);
    if matrices == 0 {
        return not_applicable("binary_matrix_rank", "bits", M * M, n);
    }
    let (p_full, p_minus1) = (0.2888, 0.5776);
    let p_rest = 1.0 - p_full - p_minus1;
    let (mut f_full, mut f_minus1, mut f_rest) = (0usize, 0usize, 0usize);
    for mi in 0..matrices {
        let mut rows = [0u32; M];
        for (r, row) in rows.iter_mut().enumerate() {
            for c in 0..M {
                if bits.get(mi * M * M + r * M + c) {
                    *row |= 1 << (M - 1 - c);
                }
            }
        }
        match gf2_rank(&mut rows, M) {
            r if r == M => f_full += 1,
            r if r == M - 1 => f_minus1 += 1,
            _ => f_rest += 1,
        }
    }
    let nm = matrices as f64;
    let chi2 = (f_full as f64 - p_full * nm).powi(2) / (p_full * nm)
        + (f_minus1 as f64 - p_minus1 * nm).powi(2) / (p_minus1 * nm)
        + (f_rest as f64 - p_rest * nm).powi(2) / (p_rest * nm);
    result("binary_matrix_rank", (-chi2 / 2.0).exp())
}

/// 2.6 Discrete Fourier transform (spectral) test.
pub fn dft(bits: &BitVec) -> TestResult {
    let n_full = bits.len();
    if n_full < 1000 {
        return not_applicable("dft", "bits", 1000, n_full);
    }
    // Use the largest power-of-two prefix for the radix-2 FFT.
    let n = 1usize << (usize::BITS - 1 - n_full.leading_zeros());
    let mut re: Vec<f64> = (0..n).map(|i| if bits.get(i) { 1.0 } else { -1.0 }).collect();
    let mut im = vec![0.0; n];
    fft(&mut re, &mut im);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let below = (0..half).filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold).count();
    let n0 = 0.95 * half as f64;
    let d = (below as f64 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    result("dft", erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// 2.7 Non-overlapping template matching test (template `0…01` of length m).
pub fn non_overlapping_template_matching(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let blocks = 8usize;
    let block_len = n / blocks;
    if block_len < 2 * m {
        return not_applicable("non_overlapping_template_matching", "bits", 2 * m * blocks, n);
    }
    // Template: m-1 zeros followed by a one.
    let template: Vec<bool> = (0..m).map(|i| i == m - 1).collect();
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let start = b * block_len;
        let mut count = 0usize;
        let mut i = 0usize;
        while i + m <= block_len {
            let matched = (0..m).all(|j| bits.get(start + i + j) == template[j]);
            if matched {
                count += 1;
                i += m;
            } else {
                i += 1;
            }
        }
        chi2 += (count as f64 - mu).powi(2) / sigma2;
    }
    result(
        "non_overlapping_template_matching",
        igamc(blocks as f64 / 2.0, chi2 / 2.0),
    )
}

/// 2.8 Overlapping template matching test (all-ones template of length m).
pub fn overlapping_template_matching(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let block_len = 1032usize;
    let blocks = n / block_len;
    if blocks < 5 {
        return not_applicable("overlapping_template_matching", "blocks", 5, blocks);
    }
    const PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.0704323, 0.139865];
    let mut counts = [0usize; 6];
    for b in 0..blocks {
        let start = b * block_len;
        let mut hits = 0usize;
        for i in 0..=(block_len - m) {
            if (0..m).all(|j| bits.get(start + i + j)) {
                hits += 1;
            }
        }
        counts[hits.min(5)] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..6 {
        let expected = blocks as f64 * PI[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("overlapping_template_matching", igamc(2.5, chi2 / 2.0))
}

/// 2.9 Maurer's "universal statistical" test.
pub fn maurers_universal(bits: &BitVec) -> TestResult {
    let n = bits.len();
    // (L, expected value, variance) per SP 800-22 Table 2-4; Q = 10·2^L.
    let table: [(usize, usize, f64, f64); 6] = [
        (6, 387_840, 5.2177052, 2.954),
        (7, 904_960, 6.1962507, 3.125),
        (8, 2_068_480, 7.1836656, 3.238),
        (9, 4_654_080, 8.1764248, 3.311),
        (10, 10_342_400, 9.1723243, 3.356),
        (11, 22_753_280, 10.170032, 3.384),
    ];
    let Some(&(l, _, expected, variance)) =
        table.iter().rev().find(|&&(_, min_n, _, _)| n >= min_n)
    else {
        // Below the smallest tabulated length the statistic's reference
        // distribution is unknown — the spec marks the test inapplicable.
        return not_applicable("maurers_universal", "bits", table[0].1, n);
    };
    let q = 10 * (1usize << l);
    let k = n / l - q;
    let fn_stat = maurers_fn_statistic(bits, l, q, k);
    let c = 0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    result("maurers_universal", erfc(((fn_stat - expected) / (std::f64::consts::SQRT_2 * sigma)).abs()))
}

/// Maurer's fₙ statistic over `q` initialisation and `k` test blocks of `l`
/// bits — split out so the SP 800-22 §2.9.8 worked example (which uses toy
/// parameters far below the tabulated lengths) can be checked exactly.
fn maurers_fn_statistic(bits: &BitVec, l: usize, q: usize, k: usize) -> f64 {
    let mut last_seen = vec![0usize; 1 << l];
    let word = |i: usize| -> usize {
        (0..l).fold(0usize, |acc, j| (acc << 1) | bits.get(i * l + j) as usize)
    };
    for i in 0..q {
        last_seen[word(i)] = i + 1;
    }
    let mut sum = 0.0;
    for i in q..q + k {
        let w = word(i);
        sum += ((i + 1 - last_seen[w]) as f64).log2();
        last_seen[w] = i + 1;
    }
    sum / k as f64
}

fn berlekamp_massey(bits: &[bool]) -> usize {
    let n = bits.len();
    let mut c = vec![false; n];
    let mut b = vec![false; n];
    c[0] = true;
    b[0] = true;
    let (mut l, mut m) = (0usize, -1isize);
    for i in 0..n {
        let mut d = bits[i];
        for j in 1..=l {
            d ^= c[j] && bits[i - j];
        }
        if d {
            let t = c.clone();
            let shift = (i as isize - m) as usize;
            for j in 0..n - shift {
                if b[j] {
                    c[j + shift] ^= true;
                }
            }
            if l <= i / 2 {
                l = i + 1 - l;
                m = i as isize;
                b = t;
            }
        }
    }
    l
}

/// 2.10 Linear complexity test (block length M, typically 500).
pub fn linear_complexity(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len;
    let blocks = n / m;
    if blocks < 10 {
        return not_applicable("linear_complexity", "blocks", 10, blocks);
    }
    const PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];
    // sign_m = (-1)^M; the specification's mean uses (-1)^(M+1) = -sign_m.
    let sign_m = if m % 2 == 0 { 1.0 } else { -1.0 };
    let mu = m as f64 / 2.0 + (9.0 - sign_m) / 36.0 - (m as f64 / 3.0 + 2.0 / 9.0) / 2f64.powi(m as i32);
    let mut counts = [0usize; 7];
    for b in 0..blocks {
        let block: Vec<bool> = (0..m).map(|i| bits.get(b * m + i)).collect();
        let l = berlekamp_massey(&block) as f64;
        let t = sign_m * (l - mu) + 2.0 / 9.0;
        let bucket = if t <= -2.5 {
            0
        } else if t <= -1.5 {
            1
        } else if t <= -0.5 {
            2
        } else if t <= 0.5 {
            3
        } else if t <= 1.5 {
            4
        } else if t <= 2.5 {
            5
        } else {
            6
        };
        counts[bucket] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..7 {
        let expected = blocks as f64 * PI[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("linear_complexity", igamc(3.0, chi2 / 2.0))
}

fn psi_squared(bits: &BitVec, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    for i in 0..n {
        let mut idx = 0usize;
        for j in 0..m {
            idx = (idx << 1) | bits.get((i + j) % n) as usize;
        }
        counts[idx] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
    2f64.powi(m as i32) / n as f64 * sum_sq - n as f64
}

/// 2.11 Serial test (pattern length m; returns the smaller of the two
/// p-values).
pub fn serial(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    // Keep m well below log2(n) as the specification requires.
    let max_m = ((n as f64).log2() as usize).saturating_sub(3).max(3);
    let m = m.min(max_m);
    if n < 1 << (m + 2) {
        return not_applicable("serial", "bits", 1 << (m + 2), n);
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    result("serial", p1.min(p2))
}

/// 2.12 Approximate entropy test (pattern length m).
pub fn approximate_entropy(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let max_m = ((n as f64).log2() as usize).saturating_sub(6).max(2);
    let m = m.min(max_m);
    if n < 1 << (m + 5) {
        return not_applicable("approximate_entropy", "bits", 1 << (m + 5), n);
    }
    let phi = |mm: usize| -> f64 {
        if mm == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; 1 << mm];
        for i in 0..n {
            let mut idx = 0usize;
            for j in 0..mm {
                idx = (idx << 1) | bits.get((i + j) % n) as usize;
            }
            counts[idx] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    result("approximate_entropy", igamc(2f64.powi(m as i32 - 1), chi2 / 2.0))
}

/// 2.13 Cumulative sums (forward) test.
pub fn cumulative_sums(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("cumulative_sums", "bits", 100, n);
    }
    let mut s = 0i64;
    let mut z = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        z = z.max(s.abs());
    }
    let z = z as f64;
    let n_f = n as f64;
    let sqrt_n = n_f.sqrt();
    let mut p = 1.0;
    let k_lo = ((-n_f / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n_f / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        p -= std_normal_cdf((4.0 * k as f64 + 1.0) * z / sqrt_n)
            - std_normal_cdf((4.0 * k as f64 - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-n_f / z - 3.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        p += std_normal_cdf((4.0 * k as f64 + 3.0) * z / sqrt_n)
            - std_normal_cdf((4.0 * k as f64 + 1.0) * z / sqrt_n);
    }
    result("cumulative_sums", p)
}

fn excursion_cycles(bits: &BitVec) -> (Vec<Vec<i64>>, usize) {
    // Partition the random walk into zero-crossing cycles; each cycle records
    // the walk states visited.
    let mut cycles: Vec<Vec<i64>> = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    let mut s = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        current.push(s);
        if s == 0 {
            cycles.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        cycles.push(current);
    }
    let j = cycles.len();
    (cycles, j)
}

/// SP 800-22 §2.14.4: the excursion tests require `J ≥ max(0.005·√n, 500)`
/// zero-crossing cycles; with fewer, the per-cycle visit distribution is not
/// trustworthy and the tests are inapplicable.
fn excursion_min_cycles(n: usize) -> usize {
    (0.005 * (n as f64).sqrt()).ceil().max(500.0) as usize
}

/// χ² statistic of the random excursions test for one state `x`
/// (SP 800-22 §2.14.4, step 5).
fn excursion_state_chi2(cycles: &[Vec<i64>], j: usize, x: i64) -> f64 {
    let pi = |k: usize| -> f64 {
        let ax = x.abs() as f64;
        match k {
            0 => 1.0 - 1.0 / (2.0 * ax),
            1..=4 => (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(k as i32 - 1),
            _ => (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(4),
        }
    };
    let mut counts = [0usize; 6];
    for cycle in cycles {
        let visits = cycle.iter().filter(|&&s| s == x).count();
        counts[visits.min(5)] += 1;
    }
    let mut chi2 = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        let expected = j as f64 * pi(k);
        if expected > 0.0 {
            chi2 += (c as f64 - expected).powi(2) / expected;
        }
    }
    chi2
}

/// p-value of the random excursions *variant* test for one state `x`
/// (SP 800-22 §2.15.4: `erfc(|ξ(x) − J| / √(2J(4|x| − 2)))`).
fn excursion_variant_state_p(cycles: &[Vec<i64>], j: usize, x: i64) -> f64 {
    let visits: usize = cycles.iter().map(|c| c.iter().filter(|&&s| s == x).count()).sum();
    let denom = (2.0 * j as f64 * (4.0 * x.abs() as f64 - 2.0)).sqrt();
    erfc((visits as f64 - j as f64).abs() / denom)
}

/// 2.14 Random excursions test (minimum p-value over the eight states).
pub fn random_excursion(bits: &BitVec) -> TestResult {
    let (cycles, j) = excursion_cycles(bits);
    let required = excursion_min_cycles(bits.len());
    if j < required {
        return not_applicable("random_excursion", "cycles", required, j);
    }
    let mut min_p = 1.0f64;
    for &x in &[-4i64, -3, -2, -1, 1, 2, 3, 4] {
        min_p = min_p.min(igamc(2.5, excursion_state_chi2(&cycles, j, x) / 2.0));
    }
    result("random_excursion", min_p)
}

/// 2.15 Random excursions variant test (minimum p-value over the 18 states).
pub fn random_excursion_variant(bits: &BitVec) -> TestResult {
    let (cycles, j) = excursion_cycles(bits);
    let required = excursion_min_cycles(bits.len());
    if j < required {
        return not_applicable("random_excursion_variant", "cycles", required, j);
    }
    let mut min_p = 1.0f64;
    for x in (-9i64..=9).filter(|&x| x != 0) {
        min_p = min_p.min(excursion_variant_state_p(&cycles, j, x));
    }
    result("random_excursion_variant", min_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()))
    }

    #[test]
    fn sp80022_monobit_example() {
        // SP 800-22 §2.1.8: the 100-bit first-100-digits-of-e example has
        // p-value 0.109599.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = monobit(&bits);
        assert!((r.p_value - 0.109599).abs() < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn sp80022_runs_example() {
        // SP 800-22 §2.3.8 uses the same ε with p-value 0.500798.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = runs(&bits);
        assert!((r.p_value - 0.500798).abs() < 0.02, "p = {}", r.p_value);
    }

    #[test]
    fn sp80022_cumulative_sums_example() {
        // SP 800-22 §2.13.8: forward cusum p-value 0.219194 for the same ε.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = cumulative_sums(&bits);
        assert!((r.p_value - 0.219194).abs() < 0.03, "p = {}", r.p_value);
    }

    #[test]
    fn alternating_sequence_fails_runs_and_serial() {
        let bits = BitVec::from_bits((0..20_000).map(|i| i % 2 == 0));
        assert!(runs(&bits).p_value < 0.001);
        assert!(serial(&bits, 8).p_value < 0.001);
        assert!(approximate_entropy(&bits, 6).p_value < 0.001);
        // But it is perfectly balanced, so monobit passes.
        assert!(monobit(&bits).p_value > 0.9);
    }

    #[test]
    fn periodic_pattern_fails_spectral_and_template_tests() {
        let bits = BitVec::from_bits((0..30_000).map(|i| (i / 3) % 2 == 0));
        assert!(dft(&bits).p_value < 0.01);
        assert!(frequency_within_block(&bits, 128).p_value > 0.01);
    }

    #[test]
    fn random_stream_passes_each_individual_test() {
        let bits = random_bits(120_000, 9);
        for r in [
            monobit(&bits),
            frequency_within_block(&bits, 128),
            runs(&bits),
            longest_run_of_ones(&bits),
            binary_matrix_rank(&bits),
            dft(&bits),
            non_overlapping_template_matching(&bits, 9),
            overlapping_template_matching(&bits, 9),
            linear_complexity(&bits, 500),
            serial(&bits, 14),
            approximate_entropy(&bits, 8),
            cumulative_sums(&bits),
        ] {
            assert!(r.p_value >= 0.001, "{} failed with p = {}", r.name, r.p_value);
        }
    }

    #[test]
    fn excursion_tests_apply_only_to_long_sequences() {
        let short = random_bits(20_000, 4);
        assert!(!random_excursion(&short).is_applicable() || random_excursion(&short).p_value >= 0.0);
        let long = random_bits(600_000, 4);
        let re = random_excursion(&long);
        let rev = random_excursion_variant(&long);
        if re.is_applicable() {
            assert!(re.p_value >= 0.0005, "excursion p {}", re.p_value);
        }
        if rev.is_applicable() {
            assert!(rev.p_value >= 0.0005, "variant p {}", rev.p_value);
        }
    }

    #[test]
    fn berlekamp_massey_known_values() {
        // A maximal-length LFSR sequence of degree 4 has linear complexity 4.
        let seq = [
            true, false, false, false, true, false, false, true, true, false, true, false, true,
            true, true,
        ];
        assert_eq!(berlekamp_massey(&seq), 4);
        // An alternating sequence has linear complexity 2.
        let alt: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        assert!(berlekamp_massey(&alt) <= 2);
    }

    #[test]
    fn sp80022_maurers_universal_example() {
        // SP 800-22 §2.9.8: ε = 01011010011101010111 with L = 2, Q = 4,
        // K = 6 gives fn = 1.1949875 and (with the illustration's
        // σ = √variance) a p-value of 0.767189.
        let bits = BitVec::from_bit_str("01011010011101010111").unwrap();
        let fn_stat = maurers_fn_statistic(&bits, 2, 4, 6);
        assert!((fn_stat - 1.194_987_5).abs() < 1e-6, "fn = {fn_stat}");
        let expected = 1.537_438_3;
        let variance = 1.338f64;
        let p = erfc(((fn_stat - expected) / (std::f64::consts::SQRT_2 * variance.sqrt())).abs());
        assert!((p - 0.767_189).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn sp80022_random_excursion_example() {
        // SP 800-22 §2.14.8: ε = 0110110101 has J = 3 cycles and, for state
        // x = +1, χ² = 4.333033 and p-value 0.502529.
        let bits = BitVec::from_bit_str("0110110101").unwrap();
        let (cycles, j) = excursion_cycles(&bits);
        assert_eq!(j, 3);
        let chi2 = excursion_state_chi2(&cycles, j, 1);
        assert!((chi2 - 4.333_033).abs() < 1e-3, "chi2 = {chi2}");
        let p = igamc(2.5, chi2 / 2.0);
        assert!((p - 0.502_529).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn sp80022_random_excursion_variant_example() {
        // SP 800-22 §2.15.8: same ε, state x = +1 visited 4 times over J = 3
        // cycles gives p-value erfc(1/√12) = 0.683091.
        let bits = BitVec::from_bit_str("0110110101").unwrap();
        let (cycles, j) = excursion_cycles(&bits);
        let p = excursion_variant_state_p(&cycles, j, 1);
        assert!((p - 0.683_091).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn inapplicable_results_name_the_failed_requirement() {
        let short = random_bits(1000, 3);
        let r = maurers_universal(&short);
        assert!(r.p_value.is_nan(), "no p-value exists for inapplicable tests");
        assert!(r.passes(crate::Significance::PAPER), "inapplicable passes vacuously");
        match r.applicability {
            Applicability::NotApplicable { requirement, required, actual } => {
                assert_eq!(requirement, "bits");
                assert_eq!(required, 387_840);
                assert_eq!(actual, 1000);
            }
            Applicability::Applicable => panic!("1 kb stream cannot drive Maurer's test"),
        }
        assert!(r.display_p_value().starts_with("n/a"));
        // The excursion gate scales with n per §2.14.4 (0.005·√n caps the
        // constant floor only beyond 10¹⁰ bits).
        assert_eq!(excursion_min_cycles(1_000_000), 500);
        assert_eq!(excursion_min_cycles(100_000_000), 500);
        assert_eq!(excursion_min_cycles(40_000_000_000), 1000);
    }

    #[test]
    fn maurers_universal_needs_long_sequences() {
        assert!(!maurers_universal(&random_bits(50_000, 1)).is_applicable());
        let long = random_bits(400_000, 1);
        let r = maurers_universal(&long);
        assert!(r.is_applicable());
        assert!(r.p_value > 0.001, "universal p {}", r.p_value);
    }
}
