//! The fifteen SP 800-22 statistical tests, word-parallel.
//!
//! Each function returns a [`TestResult`] whose `p_value` is the (minimum)
//! p-value of the test. When a sequence fails a test's preconditions (too
//! few bits, too few zero-crossing cycles for the excursion tests) the
//! result is explicitly [`Applicability::NotApplicable`] — carrying the
//! failed requirement and the observed value, with `p_value = NaN` — rather
//! than a misleading `p = 0`.
//!
//! ## Word-parallel implementations and the `*_reference` convention
//!
//! The battery is the validation hot path of the reproduction (the paper
//! runs the full suite on every evaluated stream at α = 0.001, Section 6.2),
//! so every test that used to walk the stream bit-at-a-time now scans the
//! packed `u64` storage words of [`BitVec`] instead:
//!
//! * **monobit / cumulative sums** — per-word `count_ones`; the cusum walk
//!   folds a byte-at-a-time lookup table of `(Δ, max-prefix, min-prefix)` of
//!   the ±1 walk, so the running extreme advances 8 positions per step.
//! * **runs** — transitions counted as `count_ones(w ^ (w >> 1))` with the
//!   successor word's first bit injected at each boundary
//!   ([`BitVec::transitions`]).
//! * **frequency within a block** — per-block ones via the masked word scan
//!   [`BitVec::count_ones_range`].
//! * **longest run of ones** — per 64-bit chunk: all-ones fast path, prefix
//!   and suffix run lengths from trailing/leading-zero counts, and the
//!   in-chunk maximum via the `w &= w >> 1` erosion trick.
//! * **template matchers** — 64 candidate offsets per step: an accumulator
//!   word ANDs `word_at(start + j)` (or its complement) across the template
//!   bits, so surviving lanes are exact matches. For the non-overlapping
//!   matcher's `0…01` template this equals the specification's greedy skip
//!   count because two matches can never overlap (a match ends in a 1 that
//!   would have to be a 0 inside any overlapping later match).
//! * **serial / approximate entropy** — one O(n) pass maintains the m-bit
//!   window index incrementally (`idx = ((idx << 1) | bit) & mask`) fed
//!   word-at-a-time; ψ²(m−1)/ψ²(m−2) (and φ(m) from the φ(m+1) pass) are
//!   derived by pairwise-summing the counts, because the (m−1)-bit window at
//!   `i` is the m-bit window's prefix.
//! * **Maurer's universal** — L-bit blocks are extracted with one
//!   [`BitVec::word_at`] load + bit-reverse instead of L `get` calls.
//! * **linear complexity** — Berlekamp–Massey over packed words: the
//!   discrepancy is the parity of `popcount(C & R)` where `R` is a shift
//!   register holding the block reversed, and the `C ^= B · x^shift` update
//!   is a word-wise shifted XOR.
//! * **binary matrix rank** — rows are one 32-bit load + `reverse_bits`.
//!
//! * **dft (spectral)** — the production path runs a *real-input* FFT
//!   ([`crate::special::RealFftPlan`]): even/odd packing into a half-length
//!   complex transform with precomputed twiddles, plans cached per length in
//!   a thread-local map (a battery hits the same length repeatedly). About
//!   half the butterfly work and no per-call trigonometry.
//!
//! Every rewritten test keeps its original bit-at-a-time implementation as a
//! public `*_reference` twin. The references are the executable
//! specification: property tests pin the word-parallel paths **bit-identical
//! to the last ulp of the p-value** against them over biased, constant,
//! alternating, and random streams with lengths crossing word boundaries.
//! The spectral test's twin is [`dft_reference`] (the frozen complex-FFT
//! implementation); its p-value is pinned to the real-FFT path through the
//! integer below-threshold count, which absorbs ulp-level magnitude
//! differences. The excursion tests are unchanged (the cycle partition is a
//! cheap single pass).

use crate::special::{erfc, fft, igamc, std_normal_cdf, RealFftPlan};
use crate::{Applicability, TestResult};
use qt_dram_core::BitVec;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn result(name: &'static str, p_value: f64) -> TestResult {
    TestResult {
        name,
        p_value: p_value.clamp(0.0, 1.0),
        applicability: Applicability::Applicable,
    }
}

/// An explicit "not applicable" result: the sequence failed the named
/// precondition, so no p-value exists (`NaN`, not a fake 0).
fn not_applicable(
    name: &'static str,
    requirement: &'static str,
    required: usize,
    actual: usize,
) -> TestResult {
    TestResult {
        name,
        p_value: f64::NAN,
        applicability: Applicability::NotApplicable { requirement, required, actual },
    }
}

/// 2.1 Frequency (monobit) test, via per-word `count_ones`.
pub fn monobit(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n == 0 {
        return not_applicable("monobit", "bits", 1, n);
    }
    // Σ(2·bit − 1) = 2·ones − n, same integer the reference accumulates.
    let sum = 2 * bits.count_ones() as i64 - n as i64;
    let s_obs = (sum.abs() as f64) / (n as f64).sqrt();
    result("monobit", erfc(s_obs / std::f64::consts::SQRT_2))
}

/// Bit-at-a-time reference for [`monobit`] (kept as the executable
/// specification; property-tested identical).
pub fn monobit_reference(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n == 0 {
        return not_applicable("monobit", "bits", 1, n);
    }
    let sum: i64 = bits.iter().map(|b| if b { 1i64 } else { -1 }).sum();
    let s_obs = (sum.abs() as f64) / (n as f64).sqrt();
    result("monobit", erfc(s_obs / std::f64::consts::SQRT_2))
}

/// 2.2 Frequency test within a block, via masked word scans.
pub fn frequency_within_block(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len.max(2);
    let blocks = n / m;
    if blocks == 0 {
        return not_applicable("frequency_within_block", "bits", m, n);
    }
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = bits.count_ones_range(b * m, (b + 1) * m);
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5).powi(2);
    }
    chi2 *= 4.0 * m as f64;
    result("frequency_within_block", igamc(blocks as f64 / 2.0, chi2 / 2.0))
}

/// Bit-at-a-time reference for [`frequency_within_block`].
pub fn frequency_within_block_reference(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len.max(2);
    let blocks = n / m;
    if blocks == 0 {
        return not_applicable("frequency_within_block", "bits", m, n);
    }
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = (0..m).filter(|i| bits.get(b * m + i)).count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5).powi(2);
    }
    chi2 *= 4.0 * m as f64;
    result("frequency_within_block", igamc(blocks as f64 / 2.0, chi2 / 2.0))
}

/// 2.3 Runs test, via word-wise transition counting.
pub fn runs(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("runs", "bits", 100, n);
    }
    let pi = bits.ones_fraction();
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        // Prerequisite frequency test fails decisively.
        return result("runs", 0.0);
    }
    let v = (bits.transitions() + 1) as f64;
    let num = (v - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    result("runs", erfc(num / den))
}

/// Bit-at-a-time reference for [`runs`].
pub fn runs_reference(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("runs", "bits", 100, n);
    }
    let pi = bits.ones_fraction();
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        return result("runs", 0.0);
    }
    let mut v = 1usize;
    for i in 1..n {
        if bits.get(i) != bits.get(i - 1) {
            v += 1;
        }
    }
    let num = (v as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    result("runs", erfc(num / den))
}

/// The SP 800-22 Table 2-3 parameters for the longest-run test: block
/// length, bucket bounds, and bucket probabilities for a given n.
#[allow(clippy::type_complexity)]
fn longest_run_params(n: usize) -> Option<(usize, Vec<usize>, Vec<f64>)> {
    if n >= 750_000 {
        Some((
            10_000,
            vec![10, 11, 12, 13, 14, 15, 16],
            vec![0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        ))
    } else if n >= 6272 {
        Some((128, vec![4, 5, 6, 7, 8, 9], vec![0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]))
    } else if n >= 128 {
        Some((8, vec![1, 2, 3, 4], vec![0.2148, 0.3672, 0.2305, 0.1875]))
    } else {
        None
    }
}

/// Longest run of consecutive ones in bits `[start, end)`, scanned one
/// storage word at a time: an all-ones chunk extends the carried run in one
/// step, otherwise the prefix/suffix run lengths come from trailing/leading
/// zero counts and the in-chunk maximum from the `w &= w >> 1` erosion loop.
fn longest_ones_run_in_range(bits: &BitVec, start: usize, end: usize) -> usize {
    let mut longest = 0usize;
    let mut current = 0usize;
    let mut pos = start;
    while pos < end {
        let nbits = (end - pos).min(64);
        let mask = if nbits == 64 { u64::MAX } else { (1u64 << nbits) - 1 };
        let w = bits.word_at(pos) & mask;
        if w == mask {
            current += nbits;
            longest = longest.max(current);
        } else {
            // Run continuing from the previous chunk into this one.
            let prefix = (!w).trailing_zeros() as usize;
            longest = longest.max(current + prefix);
            // Longest run fully inside the chunk: erode runs one bit per step.
            let mut t = w;
            let mut k = 0usize;
            while t != 0 {
                t &= t >> 1;
                k += 1;
            }
            longest = longest.max(k);
            // Run leaving the chunk (ones ending at bit nbits−1).
            let inv = !w & mask;
            current = nbits - 1 - (63 - inv.leading_zeros() as usize);
        }
        pos += nbits;
    }
    longest
}

/// 2.4 Test for the longest run of ones in a block, via word scans.
pub fn longest_run_of_ones(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let Some((m, v_bounds, pi)) = longest_run_params(n) else {
        return not_applicable("longest_run_ones_in_a_block", "bits", 128, n);
    };
    let blocks = n / m;
    let k = pi.len() - 1;
    let mut counts = vec![0usize; pi.len()];
    for b in 0..blocks {
        let longest = longest_ones_run_in_range(bits, b * m, (b + 1) * m);
        let bucket = if longest <= v_bounds[0] {
            0
        } else if longest >= v_bounds[k] {
            k
        } else {
            longest - v_bounds[0]
        };
        counts[bucket] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..pi.len() {
        let expected = blocks as f64 * pi[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("longest_run_ones_in_a_block", igamc(k as f64 / 2.0, chi2 / 2.0))
}

/// Bit-at-a-time reference for [`longest_run_of_ones`].
pub fn longest_run_of_ones_reference(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let Some((m, v_bounds, pi)) = longest_run_params(n) else {
        return not_applicable("longest_run_ones_in_a_block", "bits", 128, n);
    };
    let blocks = n / m;
    let k = pi.len() - 1;
    let mut counts = vec![0usize; pi.len()];
    for b in 0..blocks {
        let mut longest = 0usize;
        let mut current = 0usize;
        for i in 0..m {
            if bits.get(b * m + i) {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let bucket = if longest <= v_bounds[0] {
            0
        } else if longest >= v_bounds[k] {
            k
        } else {
            longest - v_bounds[0]
        };
        counts[bucket] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..pi.len() {
        let expected = blocks as f64 * pi[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("longest_run_ones_in_a_block", igamc(k as f64 / 2.0, chi2 / 2.0))
}

fn gf2_rank(rows: &mut [u32], size: usize) -> usize {
    let mut rank = 0;
    for col in (0..size).rev() {
        let mask = 1u32 << col;
        if let Some(pivot) = (rank..size).find(|&r| rows[r] & mask != 0) {
            rows.swap(rank, pivot);
            for r in 0..size {
                if r != rank && rows[r] & mask != 0 {
                    rows[r] ^= rows[rank];
                }
            }
            rank += 1;
        }
    }
    rank
}

fn matrix_rank_p_value(f_full: usize, f_minus1: usize, f_rest: usize, matrices: usize) -> f64 {
    let (p_full, p_minus1) = (0.2888, 0.5776);
    let p_rest = 1.0 - p_full - p_minus1;
    let nm = matrices as f64;
    let chi2 = (f_full as f64 - p_full * nm).powi(2) / (p_full * nm)
        + (f_minus1 as f64 - p_minus1 * nm).powi(2) / (p_minus1 * nm)
        + (f_rest as f64 - p_rest * nm).powi(2) / (p_rest * nm);
    (-chi2 / 2.0).exp()
}

/// 2.5 Binary matrix rank test (32×32 matrices); each row is one 32-bit
/// word load + `reverse_bits` instead of 32 `get` calls.
pub fn binary_matrix_rank(bits: &BitVec) -> TestResult {
    const M: usize = 32;
    let n = bits.len();
    let matrices = n / (M * M);
    if matrices == 0 {
        return not_applicable("binary_matrix_rank", "bits", M * M, n);
    }
    let (mut f_full, mut f_minus1, mut f_rest) = (0usize, 0usize, 0usize);
    for mi in 0..matrices {
        let mut rows = [0u32; M];
        for (r, row) in rows.iter_mut().enumerate() {
            // Stream bit c of the row maps to matrix column bit M−1−c.
            let v = bits.word_at(mi * M * M + r * M) as u32;
            *row = v.reverse_bits();
        }
        match gf2_rank(&mut rows, M) {
            r if r == M => f_full += 1,
            r if r == M - 1 => f_minus1 += 1,
            _ => f_rest += 1,
        }
    }
    result("binary_matrix_rank", matrix_rank_p_value(f_full, f_minus1, f_rest, matrices))
}

/// Bit-at-a-time reference for [`binary_matrix_rank`].
pub fn binary_matrix_rank_reference(bits: &BitVec) -> TestResult {
    const M: usize = 32;
    let n = bits.len();
    let matrices = n / (M * M);
    if matrices == 0 {
        return not_applicable("binary_matrix_rank", "bits", M * M, n);
    }
    let (mut f_full, mut f_minus1, mut f_rest) = (0usize, 0usize, 0usize);
    for mi in 0..matrices {
        let mut rows = [0u32; M];
        for (r, row) in rows.iter_mut().enumerate() {
            for c in 0..M {
                if bits.get(mi * M * M + r * M + c) {
                    *row |= 1 << (M - 1 - c);
                }
            }
        }
        match gf2_rank(&mut rows, M) {
            r if r == M => f_full += 1,
            r if r == M - 1 => f_minus1 += 1,
            _ => f_rest += 1,
        }
    }
    result("binary_matrix_rank", matrix_rank_p_value(f_full, f_minus1, f_rest, matrices))
}

thread_local! {
    /// Per-length [`RealFftPlan`] cache for the spectral test. A battery run
    /// calls `dft` on many same-length streams; building the twiddle tables
    /// and bit-reversal permutation once per length amortises to nothing.
    static DFT_PLANS: RefCell<HashMap<usize, Rc<RealFftPlan>>> = RefCell::new(HashMap::new());
}

fn dft_plan(n: usize) -> Rc<RealFftPlan> {
    DFT_PLANS.with(|plans| {
        Rc::clone(
            plans
                .borrow_mut()
                .entry(n)
                .or_insert_with(|| Rc::new(RealFftPlan::new(n))),
        )
    })
}

/// 2.6 Discrete Fourier transform (spectral) test, via the cached
/// real-input FFT plan ([`RealFftPlan`]): half the butterfly work of the
/// complex transform and no per-call trigonometry. The p-value is pinned to
/// [`dft_reference`] — magnitudes may differ by ulps, but the statistic is
/// the integer count of peaks below the threshold, which absorbs them.
pub fn dft(bits: &BitVec) -> TestResult {
    let n_full = bits.len();
    if n_full < 1000 {
        return not_applicable("dft", "bits", 1000, n_full);
    }
    // Use the largest power-of-two prefix for the radix-2 FFT.
    let n = 1usize << (usize::BITS - 1 - n_full.leading_zeros());
    let input: Vec<f64> = (0..n).map(|i| if bits.get(i) { 1.0 } else { -1.0 }).collect();
    let mut magnitudes = Vec::new();
    dft_plan(n).magnitudes_into(&input, &mut magnitudes);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let below = magnitudes.iter().filter(|&&m| m < threshold).count();
    let n0 = 0.95 * half as f64;
    let d = (below as f64 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    result("dft", erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// Frozen reference twin of [`dft`]: the original full-length complex-FFT
/// implementation, kept as the executable specification the real-input
/// rewrite is pinned against.
pub fn dft_reference(bits: &BitVec) -> TestResult {
    let n_full = bits.len();
    if n_full < 1000 {
        return not_applicable("dft", "bits", 1000, n_full);
    }
    let n = 1usize << (usize::BITS - 1 - n_full.leading_zeros());
    let mut re: Vec<f64> = (0..n).map(|i| if bits.get(i) { 1.0 } else { -1.0 }).collect();
    let mut im = vec![0.0; n];
    fft(&mut re, &mut im);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let below = (0..half).filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold).count();
    let n0 = 0.95 * half as f64;
    let d = (below as f64 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    result("dft", erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// Counts exact template matches over 64 candidate offsets at a time: lane
/// `i` of the accumulator survives iff the window starting at
/// `start + off + i` equals the template. `template_bit(j)` gives the
/// template's j-th bit; candidate windows may read past `positions` (the
/// number of valid start offsets) — those lanes are masked out up front.
fn bitsliced_template_count<F: Fn(usize) -> bool>(
    bits: &BitVec,
    start: usize,
    positions: usize,
    m: usize,
    template_bit: F,
) -> usize {
    let mut count = 0usize;
    let mut off = 0usize;
    while off < positions {
        let lanes = (positions - off).min(64);
        let mut acc = if lanes == 64 { u64::MAX } else { (1u64 << lanes) - 1 };
        for j in 0..m {
            let w = bits.word_at(start + off + j);
            acc &= if template_bit(j) { w } else { !w };
            if acc == 0 {
                break;
            }
        }
        count += acc.count_ones() as usize;
        off += 64;
    }
    count
}

/// 2.7 Non-overlapping template matching test (template `0…01` of length m),
/// via 64-offset-at-a-time bit-sliced matching.
///
/// The specification's greedy scan (skip m positions after a match) counts
/// exactly the set of all match positions for this template, because two
/// matches can never overlap: a match ends in a 1, and every stream position
/// inside a hypothetical overlapping later match (other than its last) must
/// be 0. The bit-sliced scan therefore simply counts all match positions.
///
/// # Panics
///
/// Panics if `m == 0` (the reference implementation would loop forever).
pub fn non_overlapping_template_matching(bits: &BitVec, m: usize) -> TestResult {
    assert!(m >= 1, "template length must be at least 1");
    let n = bits.len();
    let blocks = 8usize;
    let block_len = n / blocks;
    if block_len < 2 * m {
        return not_applicable("non_overlapping_template_matching", "bits", 2 * m * blocks, n);
    }
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let count = bitsliced_template_count(
            bits,
            b * block_len,
            block_len - m + 1,
            m,
            |j| j == m - 1, // m−1 zeros followed by a one
        );
        chi2 += (count as f64 - mu).powi(2) / sigma2;
    }
    result(
        "non_overlapping_template_matching",
        igamc(blocks as f64 / 2.0, chi2 / 2.0),
    )
}

/// Bit-at-a-time greedy-scan reference for
/// [`non_overlapping_template_matching`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn non_overlapping_template_matching_reference(bits: &BitVec, m: usize) -> TestResult {
    assert!(m >= 1, "template length must be at least 1");
    let n = bits.len();
    let blocks = 8usize;
    let block_len = n / blocks;
    if block_len < 2 * m {
        return not_applicable("non_overlapping_template_matching", "bits", 2 * m * blocks, n);
    }
    // Template: m-1 zeros followed by a one.
    let template: Vec<bool> = (0..m).map(|i| i == m - 1).collect();
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let start = b * block_len;
        let mut count = 0usize;
        let mut i = 0usize;
        while i + m <= block_len {
            let matched = (0..m).all(|j| bits.get(start + i + j) == template[j]);
            if matched {
                count += 1;
                i += m;
            } else {
                i += 1;
            }
        }
        chi2 += (count as f64 - mu).powi(2) / sigma2;
    }
    result(
        "non_overlapping_template_matching",
        igamc(blocks as f64 / 2.0, chi2 / 2.0),
    )
}

/// 2.8 Overlapping template matching test (all-ones template of length m),
/// via 64-offset-at-a-time bit-sliced matching.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn overlapping_template_matching(bits: &BitVec, m: usize) -> TestResult {
    assert!(m >= 1, "template length must be at least 1");
    let n = bits.len();
    let block_len = 1032usize;
    let blocks = n / block_len;
    if blocks < 5 {
        return not_applicable("overlapping_template_matching", "blocks", 5, blocks);
    }
    const PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.0704323, 0.139865];
    let mut counts = [0usize; 6];
    for b in 0..blocks {
        let hits =
            bitsliced_template_count(bits, b * block_len, block_len - m + 1, m, |_| true);
        counts[hits.min(5)] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..6 {
        let expected = blocks as f64 * PI[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("overlapping_template_matching", igamc(2.5, chi2 / 2.0))
}

/// Bit-at-a-time reference for [`overlapping_template_matching`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn overlapping_template_matching_reference(bits: &BitVec, m: usize) -> TestResult {
    assert!(m >= 1, "template length must be at least 1");
    let n = bits.len();
    let block_len = 1032usize;
    let blocks = n / block_len;
    if blocks < 5 {
        return not_applicable("overlapping_template_matching", "blocks", 5, blocks);
    }
    const PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.0704323, 0.139865];
    let mut counts = [0usize; 6];
    for b in 0..blocks {
        let start = b * block_len;
        let mut hits = 0usize;
        for i in 0..=(block_len - m) {
            if (0..m).all(|j| bits.get(start + i + j)) {
                hits += 1;
            }
        }
        counts[hits.min(5)] += 1;
    }
    let mut chi2 = 0.0;
    for i in 0..6 {
        let expected = blocks as f64 * PI[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    result("overlapping_template_matching", igamc(2.5, chi2 / 2.0))
}

/// (L, minimum n, expected value, variance) per SP 800-22 Table 2-4;
/// Q = 10·2^L initialisation blocks.
const MAURER_TABLE: [(usize, usize, f64, f64); 6] = [
    (6, 387_840, 5.2177052, 2.954),
    (7, 904_960, 6.1962507, 3.125),
    (8, 2_068_480, 7.1836656, 3.238),
    (9, 4_654_080, 8.1764248, 3.311),
    (10, 10_342_400, 9.1723243, 3.356),
    (11, 22_753_280, 10.170032, 3.384),
];

fn maurers_p_value(fn_stat: f64, l: usize, k: usize, expected: f64, variance: f64) -> f64 {
    let c = 0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    erfc(((fn_stat - expected) / (std::f64::consts::SQRT_2 * sigma)).abs())
}

/// 2.9 Maurer's "universal statistical" test, with word-at-a-time block
/// extraction.
pub fn maurers_universal(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let Some(&(l, _, expected, variance)) =
        MAURER_TABLE.iter().rev().find(|&&(_, min_n, _, _)| n >= min_n)
    else {
        // Below the smallest tabulated length the statistic's reference
        // distribution is unknown — the spec marks the test inapplicable.
        return not_applicable("maurers_universal", "bits", MAURER_TABLE[0].1, n);
    };
    let q = 10 * (1usize << l);
    let k = n / l - q;
    let fn_stat = maurers_fn_statistic(bits, l, q, k);
    result("maurers_universal", maurers_p_value(fn_stat, l, k, expected, variance))
}

/// Bit-at-a-time reference for [`maurers_universal`].
pub fn maurers_universal_reference(bits: &BitVec) -> TestResult {
    let n = bits.len();
    let Some(&(l, _, expected, variance)) =
        MAURER_TABLE.iter().rev().find(|&&(_, min_n, _, _)| n >= min_n)
    else {
        return not_applicable("maurers_universal", "bits", MAURER_TABLE[0].1, n);
    };
    let q = 10 * (1usize << l);
    let k = n / l - q;
    let fn_stat = maurers_fn_statistic_reference(bits, l, q, k);
    result("maurers_universal", maurers_p_value(fn_stat, l, k, expected, variance))
}

/// Maurer's fₙ statistic over `q` initialisation and `k` test blocks of `l`
/// bits, extracting each block with one word load + bit-reverse. Split out so
/// the SP 800-22 §2.9.8 worked example (which uses toy parameters far below
/// the tabulated lengths) can be checked exactly.
fn maurers_fn_statistic(bits: &BitVec, l: usize, q: usize, k: usize) -> f64 {
    let mut last_seen = vec![0usize; 1 << l];
    // The reference builds the block MSB-first (stream bit i·l is the high
    // bit); `word_at` is LSB-first, so reverse into the same value.
    let word = |i: usize| -> usize { (bits.word_at(i * l).reverse_bits() >> (64 - l)) as usize };
    for i in 0..q {
        last_seen[word(i)] = i + 1;
    }
    let mut sum = 0.0;
    for i in q..q + k {
        let w = word(i);
        sum += ((i + 1 - last_seen[w]) as f64).log2();
        last_seen[w] = i + 1;
    }
    sum / k as f64
}

/// Bit-at-a-time reference for [`maurers_fn_statistic`].
fn maurers_fn_statistic_reference(bits: &BitVec, l: usize, q: usize, k: usize) -> f64 {
    let mut last_seen = vec![0usize; 1 << l];
    let word = |i: usize| -> usize {
        (0..l).fold(0usize, |acc, j| (acc << 1) | bits.get(i * l + j) as usize)
    };
    for i in 0..q {
        last_seen[word(i)] = i + 1;
    }
    let mut sum = 0.0;
    for i in q..q + k {
        let w = word(i);
        sum += ((i + 1 - last_seen[w]) as f64).log2();
        last_seen[w] = i + 1;
    }
    sum / k as f64
}

fn berlekamp_massey(bits: &[bool]) -> usize {
    let n = bits.len();
    let mut c = vec![false; n];
    let mut b = vec![false; n];
    c[0] = true;
    b[0] = true;
    let (mut l, mut m) = (0usize, -1isize);
    for i in 0..n {
        let mut d = bits[i];
        for j in 1..=l {
            d ^= c[j] && bits[i - j];
        }
        if d {
            let t = c.clone();
            let shift = (i as isize - m) as usize;
            for j in 0..n - shift {
                if b[j] {
                    c[j + shift] ^= true;
                }
            }
            if l <= i / 2 {
                l = i + 1 - l;
                m = i as isize;
                b = t;
            }
        }
    }
    l
}

/// XORs `b · x^shift` into `c`, word-wise (bits shifted past `c`'s storage
/// are dropped, as in the scalar update's `j < n − shift` bound).
fn xor_shifted(c: &mut [u64], b: &[u64], shift: usize) {
    let (ws, bs) = (shift / 64, shift % 64);
    if bs == 0 {
        for k in ws..c.len() {
            c[k] ^= b[k - ws];
        }
    } else {
        for k in ws..c.len() {
            let lo = b[k - ws] << bs;
            let hi = if k > ws { b[k - ws - 1] >> (64 - bs) } else { 0 };
            c[k] ^= lo | hi;
        }
    }
}

/// Berlekamp–Massey over a bit block packed into `u64` words (`n` bits, LSB
/// first). The discrepancy is the parity of `popcount(C & R)` where `R` is a
/// shift register holding the consumed stream reversed (bit k = s_{i−k}), so
/// the inner XOR loop runs 64 taps per word operation. Returns the linear
/// complexity, identical to the bit-at-a-time [`berlekamp_massey`].
fn berlekamp_massey_packed(s: &[u64], n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let w = n.div_ceil(64);
    let mut c = vec![0u64; w];
    let mut b = vec![0u64; w];
    c[0] = 1;
    b[0] = 1;
    let mut r = vec![0u64; w];
    let (mut l, mut m) = (0usize, -1isize);
    for i in 0..n {
        // R <<= 1, inserting s_i: R now holds bit k = s_{i−k}.
        let mut carry = (s[i / 64] >> (i % 64)) & 1;
        for word in r.iter_mut() {
            let next = *word >> 63;
            *word = (*word << 1) | carry;
            carry = next;
        }
        // d = ⊕_{j=0..l} c_j · s_{i−j}: C's bits beyond l are zero and R's
        // bits beyond i are zero, so folding whole words is exact.
        let active = l / 64 + 1;
        let mut acc = 0u64;
        for k in 0..active.min(w) {
            acc ^= c[k] & r[k];
        }
        if acc.count_ones() & 1 == 1 {
            let shift = (i as isize - m) as usize;
            if l <= i / 2 {
                let t = c.clone();
                xor_shifted(&mut c, &b, shift);
                b = t;
                l = i + 1 - l;
                m = i as isize;
            } else {
                xor_shifted(&mut c, &b, shift);
            }
        }
    }
    l
}

const LINEAR_COMPLEXITY_PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];

fn linear_complexity_p_value(counts: &[usize; 7], blocks: usize) -> f64 {
    let mut chi2 = 0.0;
    for i in 0..7 {
        let expected = blocks as f64 * LINEAR_COMPLEXITY_PI[i];
        chi2 += (counts[i] as f64 - expected).powi(2) / expected;
    }
    igamc(3.0, chi2 / 2.0)
}

fn linear_complexity_bucket(l: f64, m: usize, mu: f64) -> usize {
    let sign_m = if m % 2 == 0 { 1.0 } else { -1.0 };
    let t = sign_m * (l - mu) + 2.0 / 9.0;
    if t <= -2.5 {
        0
    } else if t <= -1.5 {
        1
    } else if t <= -0.5 {
        2
    } else if t <= 0.5 {
        3
    } else if t <= 1.5 {
        4
    } else if t <= 2.5 {
        5
    } else {
        6
    }
}

fn linear_complexity_mu(m: usize) -> f64 {
    // sign_m = (-1)^M; the specification's mean uses (-1)^(M+1) = -sign_m.
    let sign_m = if m % 2 == 0 { 1.0 } else { -1.0 };
    m as f64 / 2.0 + (9.0 - sign_m) / 36.0 - (m as f64 / 3.0 + 2.0 / 9.0) / 2f64.powi(m as i32)
}

/// 2.10 Linear complexity test (block length M, typically 500), with the
/// Berlekamp–Massey inner loop over packed `u64` words.
pub fn linear_complexity(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len;
    let blocks = n / m;
    if blocks < 10 {
        return not_applicable("linear_complexity", "blocks", 10, blocks);
    }
    let mu = linear_complexity_mu(m);
    let words_per_block = m.div_ceil(64);
    let mut block = vec![0u64; words_per_block];
    let mut counts = [0usize; 7];
    for b in 0..blocks {
        let start = b * m;
        for (k, word) in block.iter_mut().enumerate() {
            *word = bits.word_at(start + 64 * k);
        }
        let rem = m % 64;
        if rem != 0 {
            block[words_per_block - 1] &= (1u64 << rem) - 1;
        }
        let l = berlekamp_massey_packed(&block, m) as f64;
        counts[linear_complexity_bucket(l, m, mu)] += 1;
    }
    result("linear_complexity", linear_complexity_p_value(&counts, blocks))
}

/// Bit-at-a-time reference for [`linear_complexity`].
pub fn linear_complexity_reference(bits: &BitVec, block_len: usize) -> TestResult {
    let n = bits.len();
    let m = block_len;
    let blocks = n / m;
    if blocks < 10 {
        return not_applicable("linear_complexity", "blocks", 10, blocks);
    }
    let mu = linear_complexity_mu(m);
    let mut counts = [0usize; 7];
    for b in 0..blocks {
        let block: Vec<bool> = (0..m).map(|i| bits.get(b * m + i)).collect();
        let l = berlekamp_massey(&block) as f64;
        counts[linear_complexity_bucket(l, m, mu)] += 1;
    }
    result("linear_complexity", linear_complexity_p_value(&counts, blocks))
}

/// Occurrence counts of all 2^m cyclic m-bit windows of the stream (window
/// at `i` covers bits `i..i+m−1` mod n, stream bit `i` as the MSB), via a
/// sliding index (`idx = ((idx << 1) | bit) & mask`) fed one storage word at
/// a time. O(n + m) instead of the reference's O(n·m).
fn window_counts(bits: &BitVec, m: usize) -> Vec<u64> {
    let n = bits.len();
    debug_assert!(m >= 1 && n >= 1);
    let mask = (1usize << m) - 1;
    let mut counts = vec![0u64; 1 << m];
    // Seed with the m−1 bits preceding the first incoming bit (bits 0..m−1).
    let mut idx = 0usize;
    for j in 0..m - 1 {
        idx = ((idx << 1) | bits.get(j % n) as usize) & mask;
    }
    // Window i is completed by incoming bit (i+m−1) mod n: feed stream
    // positions m−1..n−1 and then the wrap-around 0..m−2, word-at-a-time.
    {
        let mut feed = |from: usize, to: usize| {
            let mut pos = from;
            while pos < to {
                let nbits = (to - pos).min(64);
                let w = bits.word_at(pos);
                for k in 0..nbits {
                    idx = ((idx << 1) | ((w >> k) & 1) as usize) & mask;
                    counts[idx] += 1;
                }
                pos += nbits;
            }
        };
        let split = (m - 1).min(n);
        feed(split, n);
        feed(0, split);
    }
    counts
}

/// Sums adjacent pairs: the (m−1)-bit window at `i` is the m-bit window's
/// high m−1 bits, so `counts_{m−1}[v] = counts_m[2v] + counts_m[2v+1]`.
fn halve_window_counts(counts: &[u64]) -> Vec<u64> {
    counts.chunks(2).map(|pair| pair[0] + pair[1]).collect()
}

/// ψ²_m from a window-count table (SP 800-22 §2.11.4 step 3); `mm == 0`
/// short-circuits to 0 exactly like the reference.
fn psi_squared_from_counts(counts: &[u64], n: usize, mm: usize) -> f64 {
    if mm == 0 {
        return 0.0;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
    2f64.powi(mm as i32) / n as f64 * sum_sq - n as f64
}

/// Bit-at-a-time ψ²_m (the reference path's helper).
fn psi_squared(bits: &BitVec, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    for i in 0..n {
        let mut idx = 0usize;
        for j in 0..m {
            idx = (idx << 1) | bits.get((i + j) % n) as usize;
        }
        counts[idx] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
    2f64.powi(m as i32) / n as f64 * sum_sq - n as f64
}

fn serial_effective_m(n: usize, m: usize) -> usize {
    // Keep m well below log2(n) as the specification requires; the floor of
    // 1 keeps a caller's m = 0 well-defined (ψ² of the empty pattern is 0,
    // so the deltas degenerate cleanly) instead of underflowing.
    let max_m = ((n as f64).log2() as usize).saturating_sub(3).max(3);
    m.clamp(1, max_m)
}

fn serial_p_values(psi_m: f64, psi_m1: f64, psi_m2: f64, m: usize) -> (f64, f64) {
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    (p1, p2)
}

/// 2.11 Serial test (pattern length m; returns the smaller of the two
/// p-values). One word-fed counting pass produces ψ²(m); ψ²(m−1) and
/// ψ²(m−2) are derived from the same counts by pairwise summing.
pub fn serial(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let m = serial_effective_m(n, m);
    if n < 1 << (m + 2) {
        return not_applicable("serial", "bits", 1 << (m + 2), n);
    }
    let counts_m = window_counts(bits, m);
    let counts_m1 = halve_window_counts(&counts_m);
    let psi_m = psi_squared_from_counts(&counts_m, n, m);
    let psi_m1 = psi_squared_from_counts(&counts_m1, n, m - 1);
    let psi_m2 = if m >= 2 {
        psi_squared_from_counts(&halve_window_counts(&counts_m1), n, m - 2)
    } else {
        0.0
    };
    let (p1, p2) = serial_p_values(psi_m, psi_m1, psi_m2, m);
    result("serial", p1.min(p2))
}

/// Bit-at-a-time reference for [`serial`].
pub fn serial_reference(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let m = serial_effective_m(n, m);
    if n < 1 << (m + 2) {
        return not_applicable("serial", "bits", 1 << (m + 2), n);
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let (p1, p2) = serial_p_values(psi_m, psi_m1, psi_m2, m);
    result("serial", p1.min(p2))
}

/// φ(m) from a window-count table (SP 800-22 §2.12.4 step 5); `mm == 0`
/// short-circuits to 0 exactly like the reference.
fn phi_from_counts(counts: &[u64], n: usize, mm: usize) -> f64 {
    if mm == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n as f64;
            p * p.ln()
        })
        .sum()
}

fn approximate_entropy_effective_m(n: usize, m: usize) -> usize {
    let max_m = ((n as f64).log2() as usize).saturating_sub(6).max(2);
    m.min(max_m)
}

/// 2.12 Approximate entropy test (pattern length m). One word-fed counting
/// pass produces the (m+1)-window counts; the m-window counts for φ(m) are
/// derived from it by pairwise summing.
pub fn approximate_entropy(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let m = approximate_entropy_effective_m(n, m);
    if n < 1 << (m + 5) {
        return not_applicable("approximate_entropy", "bits", 1 << (m + 5), n);
    }
    let counts_m1 = window_counts(bits, m + 1);
    let counts_m = halve_window_counts(&counts_m1);
    let ap_en = phi_from_counts(&counts_m, n, m) - phi_from_counts(&counts_m1, n, m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    result("approximate_entropy", igamc(2f64.powi(m as i32 - 1), chi2 / 2.0))
}

/// Bit-at-a-time reference for [`approximate_entropy`].
pub fn approximate_entropy_reference(bits: &BitVec, m: usize) -> TestResult {
    let n = bits.len();
    let m = approximate_entropy_effective_m(n, m);
    if n < 1 << (m + 5) {
        return not_applicable("approximate_entropy", "bits", 1 << (m + 5), n);
    }
    let phi = |mm: usize| -> f64 {
        if mm == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; 1 << mm];
        for i in 0..n {
            let mut idx = 0usize;
            for j in 0..mm {
                idx = (idx << 1) | bits.get((i + j) % n) as usize;
            }
            counts[idx] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    result("approximate_entropy", igamc(2f64.powi(m as i32 - 1), chi2 / 2.0))
}

/// `(Δ, max prefix, min prefix)` of the ±1 walk of each byte value,
/// LSB-first — the per-byte step of the word-parallel cumulative-sums walk.
const fn cusum_byte_table() -> [(i8, i8, i8); 256] {
    let mut table = [(0i8, 0i8, 0i8); 256];
    let mut byte = 0usize;
    while byte < 256 {
        let (mut s, mut max, mut min) = (0i8, -9i8, 9i8);
        let mut k = 0;
        while k < 8 {
            s += if (byte >> k) & 1 == 1 { 1 } else { -1 };
            if s > max {
                max = s;
            }
            if s < min {
                min = s;
            }
            k += 1;
        }
        table[byte] = (s, max, min);
        byte += 1;
    }
    table
}

static CUSUM_TABLE: [(i8, i8, i8); 256] = cusum_byte_table();

fn cumulative_sums_p_value(z: i64, n: usize) -> f64 {
    let z = z as f64;
    let n_f = n as f64;
    let sqrt_n = n_f.sqrt();
    let mut p = 1.0;
    let k_lo = ((-n_f / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n_f / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        p -= std_normal_cdf((4.0 * k as f64 + 1.0) * z / sqrt_n)
            - std_normal_cdf((4.0 * k as f64 - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-n_f / z - 3.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        p += std_normal_cdf((4.0 * k as f64 + 3.0) * z / sqrt_n)
            - std_normal_cdf((4.0 * k as f64 + 1.0) * z / sqrt_n);
    }
    p
}

/// 2.13 Cumulative sums (forward) test: the running-extreme walk advances a
/// byte per step through a 256-entry `(Δ, max prefix, min prefix)` table;
/// the maximum |S| over a byte is attained at the byte's max or min prefix,
/// so only those two candidates are checked against the running extreme.
pub fn cumulative_sums(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("cumulative_sums", "bits", 100, n);
    }
    let mut s = 0i64;
    let mut z = 0i64;
    let full_words = n / 64;
    for &w in &bits.words()[..full_words] {
        for byte in w.to_le_bytes() {
            let (delta, max, min) = CUSUM_TABLE[byte as usize];
            z = z.max((s + max as i64).abs()).max((s + min as i64).abs());
            s += delta as i64;
        }
    }
    for i in full_words * 64..n {
        s += if bits.get(i) { 1 } else { -1 };
        z = z.max(s.abs());
    }
    result("cumulative_sums", cumulative_sums_p_value(z, n))
}

/// Bit-at-a-time reference for [`cumulative_sums`].
pub fn cumulative_sums_reference(bits: &BitVec) -> TestResult {
    let n = bits.len();
    if n < 100 {
        return not_applicable("cumulative_sums", "bits", 100, n);
    }
    let mut s = 0i64;
    let mut z = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        z = z.max(s.abs());
    }
    result("cumulative_sums", cumulative_sums_p_value(z, n))
}

/// One counting pass of the ±1 random walk: everything the two excursion
/// tests need — the cycle count `J`, the per-cycle visit-count buckets for
/// the eight excursion states (|x| ≤ 4, bucketed at `min(visits, 5)`), and
/// the whole-walk visit totals for the 18 variant states (|x| ≤ 9) — without
/// materialising per-cycle state vectors. The reference implementations
/// allocate one `Vec<i64>` per cycle (O(n) heap churn over the walk); this
/// scan keeps O(1) state and produces the *same integers*, so the derived
/// χ²/p-values are bit-identical (pinned by proptest against the references).
struct ExcursionScan {
    /// Number of zero-crossing cycles (a non-empty tail counts as one).
    j: usize,
    /// `bucketed[state][k]` = cycles that visited excursion state
    /// `EXCURSION_STATES[state]` exactly `k` times (`k = 5` means ≥ 5).
    bucketed: [[usize; 6]; 8],
    /// Total visits to variant state `x` over the whole walk, indexed by
    /// [`variant_state_index`].
    totals: [usize; 18],
}

/// The eight states of the random excursions test, in SP 800-22 §2.14 order.
const EXCURSION_STATES: [i64; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];

/// Index of excursion state `x ∈ {±1..±4}` in [`EXCURSION_STATES`].
fn excursion_state_index(x: i64) -> usize {
    if x < 0 { (x + 4) as usize } else { (x + 3) as usize }
}

/// Index of variant state `x ∈ {±1..±9}` (ascending, zero skipped).
fn variant_state_index(x: i64) -> usize {
    if x < 0 { (x + 9) as usize } else { (x + 8) as usize }
}

fn excursion_scan(bits: &BitVec) -> ExcursionScan {
    let mut scan = ExcursionScan { j: 0, bucketed: [[0; 6]; 8], totals: [0; 18] };
    let mut visits = [0usize; 8];
    let mut s = 0i64;
    let mut steps_since_zero = 0usize;
    fn flush(visits: &mut [usize; 8], scan: &mut ExcursionScan) {
        for (state, v) in visits.iter_mut().enumerate() {
            scan.bucketed[state][(*v).min(5)] += 1;
            *v = 0;
        }
        scan.j += 1;
    }
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        steps_since_zero += 1;
        if s == 0 {
            flush(&mut visits, &mut scan);
            steps_since_zero = 0;
        } else {
            if s.abs() <= 4 {
                visits[excursion_state_index(s)] += 1;
            }
            if s.abs() <= 9 {
                scan.totals[variant_state_index(s)] += 1;
            }
        }
    }
    if steps_since_zero > 0 {
        flush(&mut visits, &mut scan);
    }
    scan
}

fn excursion_cycles(bits: &BitVec) -> (Vec<Vec<i64>>, usize) {
    // Partition the random walk into zero-crossing cycles; each cycle records
    // the walk states visited.
    let mut cycles: Vec<Vec<i64>> = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    let mut s = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        current.push(s);
        if s == 0 {
            cycles.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        cycles.push(current);
    }
    let j = cycles.len();
    (cycles, j)
}

/// SP 800-22 §2.14.4: the excursion tests require `J ≥ max(0.005·√n, 500)`
/// zero-crossing cycles; with fewer, the per-cycle visit distribution is not
/// trustworthy and the tests are inapplicable.
fn excursion_min_cycles(n: usize) -> usize {
    (0.005 * (n as f64).sqrt()).ceil().max(500.0) as usize
}

/// χ² of the random excursions test for one state `x` from its per-cycle
/// visit-count buckets (SP 800-22 §2.14.4, step 5). Both the counting scan
/// and the cycle-vector reference funnel through this, so identical counts
/// yield bit-identical statistics.
fn excursion_state_chi2_from_counts(counts: &[usize; 6], j: usize, x: i64) -> f64 {
    let pi = |k: usize| -> f64 {
        let ax = x.abs() as f64;
        match k {
            0 => 1.0 - 1.0 / (2.0 * ax),
            1..=4 => (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(k as i32 - 1),
            _ => (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(4),
        }
    };
    let mut chi2 = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        let expected = j as f64 * pi(k);
        if expected > 0.0 {
            chi2 += (c as f64 - expected).powi(2) / expected;
        }
    }
    chi2
}

/// χ² statistic of the random excursions test for one state `x`, from the
/// reference cycle vectors.
fn excursion_state_chi2(cycles: &[Vec<i64>], j: usize, x: i64) -> f64 {
    let mut counts = [0usize; 6];
    for cycle in cycles {
        let visits = cycle.iter().filter(|&&s| s == x).count();
        counts[visits.min(5)] += 1;
    }
    excursion_state_chi2_from_counts(&counts, j, x)
}

/// p-value of the random excursions *variant* test for one state `x` from
/// its whole-walk visit total (SP 800-22 §2.15.4:
/// `erfc(|ξ(x) − J| / √(2J(4|x| − 2)))`).
fn excursion_variant_state_p_from_total(visits: usize, j: usize, x: i64) -> f64 {
    let denom = (2.0 * j as f64 * (4.0 * x.abs() as f64 - 2.0)).sqrt();
    erfc((visits as f64 - j as f64).abs() / denom)
}

/// p-value of the variant test for one state `x`, from the reference cycle
/// vectors.
fn excursion_variant_state_p(cycles: &[Vec<i64>], j: usize, x: i64) -> f64 {
    let visits: usize = cycles.iter().map(|c| c.iter().filter(|&&s| s == x).count()).sum();
    excursion_variant_state_p_from_total(visits, j, x)
}

/// 2.14 Random excursions test (minimum p-value over the eight states),
/// in counting form: one O(1)-state pass buckets per-cycle visit counts
/// directly, with no per-cycle state vectors. Identical to
/// [`random_excursion_reference`] to the last ulp (proptest-pinned).
pub fn random_excursion(bits: &BitVec) -> TestResult {
    let scan = excursion_scan(bits);
    let required = excursion_min_cycles(bits.len());
    if scan.j < required {
        return not_applicable("random_excursion", "cycles", required, scan.j);
    }
    let mut min_p = 1.0f64;
    for &x in &EXCURSION_STATES {
        let counts = &scan.bucketed[excursion_state_index(x)];
        min_p = min_p.min(igamc(2.5, excursion_state_chi2_from_counts(counts, scan.j, x) / 2.0));
    }
    result("random_excursion", min_p)
}

/// Cycle-vector reference for [`random_excursion`] (materialises the walk's
/// zero-crossing cycles, as the spec describes the procedure).
pub fn random_excursion_reference(bits: &BitVec) -> TestResult {
    let (cycles, j) = excursion_cycles(bits);
    let required = excursion_min_cycles(bits.len());
    if j < required {
        return not_applicable("random_excursion", "cycles", required, j);
    }
    let mut min_p = 1.0f64;
    for &x in &EXCURSION_STATES {
        min_p = min_p.min(igamc(2.5, excursion_state_chi2(&cycles, j, x) / 2.0));
    }
    result("random_excursion", min_p)
}

/// 2.15 Random excursions variant test (minimum p-value over the 18
/// states), in counting form — the variant statistic only needs whole-walk
/// visit totals, so no cycle structure is stored at all. Identical to
/// [`random_excursion_variant_reference`] to the last ulp (proptest-pinned).
pub fn random_excursion_variant(bits: &BitVec) -> TestResult {
    let scan = excursion_scan(bits);
    let required = excursion_min_cycles(bits.len());
    if scan.j < required {
        return not_applicable("random_excursion_variant", "cycles", required, scan.j);
    }
    let mut min_p = 1.0f64;
    for x in (-9i64..=9).filter(|&x| x != 0) {
        let visits = scan.totals[variant_state_index(x)];
        min_p = min_p.min(excursion_variant_state_p_from_total(visits, scan.j, x));
    }
    result("random_excursion_variant", min_p)
}

/// Cycle-vector reference for [`random_excursion_variant`].
pub fn random_excursion_variant_reference(bits: &BitVec) -> TestResult {
    let (cycles, j) = excursion_cycles(bits);
    let required = excursion_min_cycles(bits.len());
    if j < required {
        return not_applicable("random_excursion_variant", "cycles", required, j);
    }
    let mut min_p = 1.0f64;
    for x in (-9i64..=9).filter(|&x| x != 0) {
        min_p = min_p.min(excursion_variant_state_p(&cycles, j, x));
    }
    result("random_excursion_variant", min_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()))
    }

    /// The four stream families the equivalence proptests sweep: random,
    /// biased, constant, and alternating.
    fn stream(kind: u8, n: usize, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        match kind % 4 {
            0 => BitVec::from_bits((0..n).map(|_| rng.gen::<bool>())),
            1 => BitVec::from_bits((0..n).map(|_| rng.gen::<f64>() < 0.8)),
            2 => BitVec::filled(n, seed % 2 == 0),
            _ => BitVec::from_bits((0..n).map(|i| i % 2 == 0)),
        }
    }

    /// Bit-exact comparison of two test results: same name, same
    /// applicability, and p-values identical to the last ulp (NaN == NaN).
    fn assert_identical(word: &TestResult, reference: &TestResult) {
        assert_eq!(word.name, reference.name);
        assert_eq!(word.applicability, reference.applicability);
        assert_eq!(
            word.p_value.to_bits(),
            reference.p_value.to_bits(),
            "{}: word {} vs reference {}",
            word.name,
            word.p_value,
            reference.p_value
        );
    }

    #[test]
    fn sp80022_monobit_example() {
        // SP 800-22 §2.1.8: the 100-bit first-100-digits-of-e example has
        // p-value 0.109599.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = monobit(&bits);
        assert!((r.p_value - 0.109599).abs() < 0.01, "p = {}", r.p_value);
        assert_identical(&r, &monobit_reference(&bits));
    }

    #[test]
    fn sp80022_runs_example() {
        // SP 800-22 §2.3.8 uses the same ε with p-value 0.500798.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = runs(&bits);
        assert!((r.p_value - 0.500798).abs() < 0.02, "p = {}", r.p_value);
        assert_identical(&r, &runs_reference(&bits));
    }

    #[test]
    fn sp80022_cumulative_sums_example() {
        // SP 800-22 §2.13.8: forward cusum p-value 0.219194 for the same ε.
        let eps = "1100100100001111110110101010001000100001011010001100001000110100\
                   110001001100011001100010100010111000";
        let bits = BitVec::from_bit_str(eps).unwrap();
        let r = cumulative_sums(&bits);
        assert!((r.p_value - 0.219194).abs() < 0.03, "p = {}", r.p_value);
        assert_identical(&r, &cumulative_sums_reference(&bits));
    }

    #[test]
    fn sp80022_serial_example() {
        // SP 800-22 §2.11.4 / §2.11.8 example 1: ε = 0011011101, n = 10,
        // m = 3. The cyclic window counts give ψ²₃ = 2.8, ψ²₂ = 1.2,
        // ψ²₁ = 0.4, so ∇ψ²₃ = 1.6 and ∇²ψ²₃ = 0.8, and the p-values are
        // igamc(2, 0.8) = 0.808792 and igamc(1, 0.4) = 0.670320.
        let bits = BitVec::from_bit_str("0011011101").unwrap();
        let n = bits.len();
        // Both the reference helper and the shared-counts path must hit the
        // worked values exactly.
        let counts3 = window_counts(&bits, 3);
        let counts2 = halve_window_counts(&counts3);
        let counts1 = halve_window_counts(&counts2);
        let psi3 = psi_squared_from_counts(&counts3, n, 3);
        let psi2 = psi_squared_from_counts(&counts2, n, 2);
        let psi1 = psi_squared_from_counts(&counts1, n, 1);
        for (word, reference, expected) in [
            (psi3, psi_squared(&bits, 3), 2.8),
            (psi2, psi_squared(&bits, 2), 1.2),
            (psi1, psi_squared(&bits, 1), 0.4),
        ] {
            assert_eq!(word.to_bits(), reference.to_bits());
            assert!((word - expected).abs() < 1e-12, "ψ² = {word}, expected {expected}");
        }
        let (p1, p2) = serial_p_values(psi3, psi2, psi1, 3);
        assert!((p1 - 0.808792).abs() < 1e-4, "p1 = {p1}");
        assert!((p2 - 0.670320).abs() < 1e-4, "p2 = {p2}");
    }

    #[test]
    fn sp80022_approximate_entropy_example() {
        // SP 800-22 §2.12.4 / §2.12.8 example 1: ε = 0100110101, n = 10,
        // m = 3: φ(3) = −1.643418, φ(4) = −1.834372, so ApEn(3) = 0.190954,
        // χ² = 2n(ln 2 − ApEn) = 10.043859, and
        // P-value = igamc(2^(m−1), χ²/2) = 0.261961.
        let bits = BitVec::from_bit_str("0100110101").unwrap();
        let n = bits.len();
        let counts4 = window_counts(&bits, 4);
        let counts3 = halve_window_counts(&counts4);
        let phi3 = phi_from_counts(&counts3, n, 3);
        let phi4 = phi_from_counts(&counts4, n, 4);
        assert!((phi3 - -1.643418).abs() < 1e-6, "phi3 = {phi3}");
        assert!((phi4 - -1.834372).abs() < 1e-6, "phi4 = {phi4}");
        let ap_en = phi3 - phi4;
        assert!((ap_en - 0.190954).abs() < 1e-6, "ApEn = {ap_en}");
        let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
        assert!((chi2 - 10.043859).abs() < 1e-5, "chi2 = {chi2}");
        let p = igamc(2f64.powi(2), chi2 / 2.0);
        assert!((p - 0.261961).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn alternating_sequence_fails_runs_and_serial() {
        let bits = BitVec::from_bits((0..20_000).map(|i| i % 2 == 0));
        assert!(runs(&bits).p_value < 0.001);
        assert!(serial(&bits, 8).p_value < 0.001);
        assert!(approximate_entropy(&bits, 6).p_value < 0.001);
        // But it is perfectly balanced, so monobit passes.
        assert!(monobit(&bits).p_value > 0.9);
    }

    #[test]
    fn periodic_pattern_fails_spectral_and_template_tests() {
        let bits = BitVec::from_bits((0..30_000).map(|i| (i / 3) % 2 == 0));
        assert!(dft(&bits).p_value < 0.01);
        assert!(frequency_within_block(&bits, 128).p_value > 0.01);
    }

    #[test]
    fn random_stream_passes_each_individual_test() {
        let bits = random_bits(120_000, 9);
        for r in [
            monobit(&bits),
            frequency_within_block(&bits, 128),
            runs(&bits),
            longest_run_of_ones(&bits),
            binary_matrix_rank(&bits),
            dft(&bits),
            non_overlapping_template_matching(&bits, 9),
            overlapping_template_matching(&bits, 9),
            linear_complexity(&bits, 500),
            serial(&bits, 14),
            approximate_entropy(&bits, 8),
            cumulative_sums(&bits),
        ] {
            assert!(r.p_value >= 0.001, "{} failed with p = {}", r.name, r.p_value);
        }
    }

    #[test]
    fn excursion_tests_apply_only_to_long_sequences() {
        let short = random_bits(20_000, 4);
        assert!(!random_excursion(&short).is_applicable() || random_excursion(&short).p_value >= 0.0);
        let long = random_bits(600_000, 4);
        let re = random_excursion(&long);
        let rev = random_excursion_variant(&long);
        if re.is_applicable() {
            assert!(re.p_value >= 0.0005, "excursion p {}", re.p_value);
        }
        if rev.is_applicable() {
            assert!(rev.p_value >= 0.0005, "variant p {}", rev.p_value);
        }
        // The counting form must match the cycle-vector reference on an
        // *applicable* stream (J ≈ √(2n/π) ≈ 618 ≥ 500 here), not just on
        // the short-stream skip path the proptests mostly exercise.
        assert_identical(&re, &random_excursion_reference(&long));
        assert_identical(&rev, &random_excursion_variant_reference(&long));
    }

    /// An anti-correlated walk (each bit flips the previous one with
    /// probability `flip`) crosses zero every few steps, so even short
    /// streams reach the excursion tests' J ≥ 500 gate while still visiting
    /// a spread of ±states — the applicable-path fodder for the equivalence
    /// proptest below.
    fn anticorrelated_bits(n: usize, flip: f64, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = false;
        BitVec::from_bits((0..n).map(|_| {
            if rng.gen::<f64>() < flip {
                prev = !prev;
            }
            prev
        }))
    }

    #[test]
    fn berlekamp_massey_known_values() {
        // A maximal-length LFSR sequence of degree 4 has linear complexity 4.
        let seq = [
            true, false, false, false, true, false, false, true, true, false, true, false, true,
            true, true,
        ];
        assert_eq!(berlekamp_massey(&seq), 4);
        // An alternating sequence has linear complexity 2.
        let alt: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        assert!(berlekamp_massey(&alt) <= 2);
    }

    #[test]
    fn packed_berlekamp_massey_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [1usize, 2, 13, 63, 64, 65, 127, 128, 129, 500, 777] {
            for _ in 0..4 {
                let block: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
                let packed = BitVec::from_bits(block.iter().copied());
                assert_eq!(
                    berlekamp_massey_packed(packed.words(), n),
                    berlekamp_massey(&block),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn sp80022_maurers_universal_example() {
        // SP 800-22 §2.9.8: ε = 01011010011101010111 with L = 2, Q = 4,
        // K = 6 gives fn = 1.1949875 and (with the illustration's
        // σ = √variance) a p-value of 0.767189.
        let bits = BitVec::from_bit_str("01011010011101010111").unwrap();
        let fn_stat = maurers_fn_statistic(&bits, 2, 4, 6);
        assert_eq!(fn_stat.to_bits(), maurers_fn_statistic_reference(&bits, 2, 4, 6).to_bits());
        assert!((fn_stat - 1.194_987_5).abs() < 1e-6, "fn = {fn_stat}");
        let expected = 1.537_438_3;
        let variance = 1.338f64;
        let p = erfc(((fn_stat - expected) / (std::f64::consts::SQRT_2 * variance.sqrt())).abs());
        assert!((p - 0.767_189).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn maurers_universal_word_path_matches_reference_on_a_long_stream() {
        let bits = random_bits(400_000, 17);
        assert_identical(&maurers_universal(&bits), &maurers_universal_reference(&bits));
    }

    #[test]
    fn longest_run_matches_reference_on_the_large_block_table() {
        // n >= 750 000 selects the m = 10 000 table (blocks spanning 157
        // chunks); run-of-ones bursts stress the cross-chunk carry.
        let mut rng = StdRng::seed_from_u64(23);
        let bits = BitVec::from_bits((0..750_128).map(|_| rng.gen::<f64>() < 0.9));
        assert_identical(&longest_run_of_ones(&bits), &longest_run_of_ones_reference(&bits));
    }

    #[test]
    fn sp80022_random_excursion_example() {
        // SP 800-22 §2.14.8: ε = 0110110101 has J = 3 cycles and, for state
        // x = +1, χ² = 4.333033 and p-value 0.502529.
        let bits = BitVec::from_bit_str("0110110101").unwrap();
        let (cycles, j) = excursion_cycles(&bits);
        assert_eq!(j, 3);
        let chi2 = excursion_state_chi2(&cycles, j, 1);
        assert!((chi2 - 4.333_033).abs() < 1e-3, "chi2 = {chi2}");
        let p = igamc(2.5, chi2 / 2.0);
        assert!((p - 0.502_529).abs() < 1e-4, "p = {p}");
        // The counting scan reproduces the worked example exactly: same J,
        // same visit buckets, same χ².
        let scan = excursion_scan(&bits);
        assert_eq!(scan.j, 3);
        let counting_chi2 = excursion_state_chi2_from_counts(
            &scan.bucketed[excursion_state_index(1)],
            scan.j,
            1,
        );
        assert_eq!(counting_chi2.to_bits(), chi2.to_bits());
    }

    #[test]
    fn sp80022_random_excursion_variant_example() {
        // SP 800-22 §2.15.8: same ε, state x = +1 visited 4 times over J = 3
        // cycles gives p-value erfc(1/√12) = 0.683091.
        let bits = BitVec::from_bit_str("0110110101").unwrap();
        let (cycles, j) = excursion_cycles(&bits);
        let p = excursion_variant_state_p(&cycles, j, 1);
        assert!((p - 0.683_091).abs() < 1e-4, "p = {p}");
        let scan = excursion_scan(&bits);
        assert_eq!(scan.totals[variant_state_index(1)], 4);
        let counting_p =
            excursion_variant_state_p_from_total(scan.totals[variant_state_index(1)], scan.j, 1);
        assert_eq!(counting_p.to_bits(), p.to_bits());
    }

    #[test]
    fn counting_excursions_match_reference_on_applicable_streams() {
        // Anti-correlated walks cross zero often and visit many ±states.
        // J still depends on the slow drift component, so applicability is
        // asserted only for tuples verified to clear the J ≥ 500 gate
        // (seeded, so the verdict is stable); the rest pin the equivalence
        // on rich near-applicable walks.
        for (n, flip, seed, applicable) in [
            (40_000usize, 0.97, 3u64, true),
            (20_000, 0.995, 4, true),
            (4096, 0.9, 1, false),
            (4095, 0.8, 2, false),
            (10_000, 0.6, 5, false),
        ] {
            let bits = anticorrelated_bits(n, flip, seed);
            let counting = random_excursion(&bits);
            assert_identical(&counting, &random_excursion_reference(&bits));
            assert_identical(
                &random_excursion_variant(&bits),
                &random_excursion_variant_reference(&bits),
            );
            if applicable {
                assert!(counting.is_applicable(), "n={n} flip={flip} seed={seed} crosses often");
            }
        }
    }

    #[test]
    fn inapplicable_results_name_the_failed_requirement() {
        let short = random_bits(1000, 3);
        let r = maurers_universal(&short);
        assert!(r.p_value.is_nan(), "no p-value exists for inapplicable tests");
        assert!(r.passes(crate::Significance::PAPER), "inapplicable passes vacuously");
        match r.applicability {
            Applicability::NotApplicable { requirement, required, actual } => {
                assert_eq!(requirement, "bits");
                assert_eq!(required, 387_840);
                assert_eq!(actual, 1000);
            }
            Applicability::Applicable => panic!("1 kb stream cannot drive Maurer's test"),
        }
        assert!(r.display_p_value().starts_with("n/a"));
        // The excursion gate scales with n per §2.14.4 (0.005·√n caps the
        // constant floor only beyond 10¹⁰ bits).
        assert_eq!(excursion_min_cycles(1_000_000), 500);
        assert_eq!(excursion_min_cycles(100_000_000), 500);
        assert_eq!(excursion_min_cycles(40_000_000_000), 1000);
    }

    #[test]
    fn maurers_universal_needs_long_sequences() {
        assert!(!maurers_universal(&random_bits(50_000, 1)).is_applicable());
        let long = random_bits(400_000, 1);
        let r = maurers_universal(&long);
        assert!(r.is_applicable());
        assert!(r.p_value > 0.001, "universal p {}", r.p_value);
    }

    #[test]
    fn dft_matches_reference_across_stream_families() {
        // The real-input FFT path must reproduce the frozen complex-FFT
        // reference's p-value exactly: the statistic is an integer peak
        // count, so ulp-level magnitude differences must not leak through.
        for (kind, n, seed) in [
            (0u8, 1000usize, 1u64),
            (0, 1024, 2),
            (0, 4096, 3),
            (0, 100_000, 4),
            (1, 30_000, 5),
            (3, 30_000, 6),
        ] {
            let bits = stream(kind, n, seed);
            assert_identical(&dft(&bits), &dft_reference(&bits));
        }
    }

    #[test]
    fn dft_short_input_is_not_applicable_in_both_paths() {
        for n in [0usize, 1, 63, 64, 65, 512, 999] {
            let bits = random_bits(n, 7);
            let word = dft(&bits);
            assert!(!word.is_applicable(), "n={n} should be NotApplicable");
            assert!(word.p_value.is_nan());
            assert_identical(&word, &dft_reference(&bits));
        }
        // The 1000-bit boundary itself is applicable (uses the 512-prefix).
        assert!(dft(&random_bits(1000, 7)).is_applicable());
    }

    #[test]
    fn dft_constant_streams_fail_spectacularly_in_both_paths() {
        // All-zeros and all-ones map to constant ±1 input: all spectral
        // energy in the DC bin, every other peak below threshold.
        for value in [false, true] {
            let bits = BitVec::filled(4096, value);
            let word = dft(&bits);
            assert_identical(&word, &dft_reference(&bits));
        }
    }

    #[test]
    fn dft_plan_cache_serves_repeated_lengths() {
        // Two same-length calls share one cached plan, and the answers stay
        // deterministic per input.
        let a = random_bits(2048, 11);
        let b = random_bits(2048, 12);
        let first = dft(&a);
        let _ = dft(&b);
        let again = dft(&a);
        assert_identical(&first, &again);
    }

    // ---- word-parallel vs reference equivalence (bit-identical p-values) ----

    proptest! {
        #[test]
        fn prop_counting_tests_match_reference(
            kind in 0u8..4,
            len in 0usize..2500,
            delta in 0usize..3,
            seed in any::<u64>(),
        ) {
            // Lengths crossing word boundaries ±1: snap to a multiple of 64,
            // then offset by −1, 0, +1.
            let n = (len / 64 * 64 + delta).saturating_sub(1).min(2500);
            let bits = stream(kind, n, seed);
            assert_identical(&monobit(&bits), &monobit_reference(&bits));
            assert_identical(&runs(&bits), &runs_reference(&bits));
            assert_identical(&cumulative_sums(&bits), &cumulative_sums_reference(&bits));
            for block_len in [8, 100, 128] {
                assert_identical(
                    &frequency_within_block(&bits, block_len),
                    &frequency_within_block_reference(&bits, block_len),
                );
            }
            assert_identical(&longest_run_of_ones(&bits), &longest_run_of_ones_reference(&bits));
            assert_identical(&binary_matrix_rank(&bits), &binary_matrix_rank_reference(&bits));
        }

        #[test]
        fn prop_longest_run_matches_reference_across_chunk_boundaries(
            kind in 0u8..4,
            len in 6272usize..9000,
            seed in any::<u64>(),
        ) {
            // n >= 6272 selects the m = 128 table, so every block spans
            // three 64-bit chunks — exercising the all-ones fast path, the
            // cross-chunk run carry, and the prefix/suffix counts that the
            // short-stream proptest (m = 8 blocks inside one chunk) never
            // reaches. Runs of length ~64k around chunk edges come from the
            // biased and constant stream kinds.
            let bits = stream(kind, len, seed);
            assert_identical(&longest_run_of_ones(&bits), &longest_run_of_ones_reference(&bits));
        }

        #[test]
        fn prop_template_tests_match_reference(
            kind in 0u8..4,
            len in 100usize..9000,
            m in 1usize..13,
            seed in any::<u64>(),
        ) {
            let bits = stream(kind, len, seed);
            assert_identical(
                &non_overlapping_template_matching(&bits, m),
                &non_overlapping_template_matching_reference(&bits, m),
            );
            assert_identical(
                &overlapping_template_matching(&bits, m),
                &overlapping_template_matching_reference(&bits, m),
            );
        }

        #[test]
        fn prop_window_tests_match_reference(
            kind in 0u8..4,
            len in 16usize..4000,
            m in 0usize..16,
            seed in any::<u64>(),
        ) {
            let bits = stream(kind, len, seed);
            assert_identical(&serial(&bits, m), &serial_reference(&bits, m));
            assert_identical(
                &approximate_entropy(&bits, m),
                &approximate_entropy_reference(&bits, m),
            );
        }

        #[test]
        fn prop_linear_complexity_matches_reference(
            kind in 0u8..4,
            len in 0usize..6000,
            block_len in 13usize..530,
            seed in any::<u64>(),
        ) {
            let bits = stream(kind, len, seed);
            assert_identical(
                &linear_complexity(&bits, block_len),
                &linear_complexity_reference(&bits, block_len),
            );
        }

        #[test]
        fn prop_excursion_tests_match_reference(
            kind in 0u8..5,
            len in 0usize..4000,
            delta in 0usize..3,
            seed in any::<u64>(),
        ) {
            // Kinds 0..4 are the standard families (mostly the inapplicable
            // path: a random 4 kb walk has J ≈ 50 ≪ 500, constant/biased
            // walks almost never cross zero; alternating crosses every two
            // steps and IS applicable). Kind 4 is the anti-correlated walk:
            // applicable with a spread of visited states.
            let n = (len / 64 * 64 + delta).saturating_sub(1).min(4000);
            let bits = if kind == 4 {
                anticorrelated_bits(n, 0.6 + (seed % 4) as f64 * 0.1, seed)
            } else {
                stream(kind, n, seed)
            };
            assert_identical(&random_excursion(&bits), &random_excursion_reference(&bits));
            assert_identical(
                &random_excursion_variant(&bits),
                &random_excursion_variant_reference(&bits),
            );
        }

        #[test]
        fn prop_maurers_statistic_matches_reference(
            kind in 0u8..4,
            l in 2usize..7,
            k in 1usize..200,
            seed in any::<u64>(),
        ) {
            // The full test needs ≥ 387 840 bits; pin the split-out statistic
            // on toy parameters instead (the table lookup is shared).
            let q = 2 << l;
            let bits = stream(kind, l * (q + k), seed);
            let word = maurers_fn_statistic(&bits, l, q, k);
            let reference = maurers_fn_statistic_reference(&bits, l, q, k);
            prop_assert_eq!(word.to_bits(), reference.to_bits());
        }
    }
}
