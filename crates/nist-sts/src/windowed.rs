//! Streaming, buffer-reusing windows over a served byte stream.
//!
//! The continuous-validation loop of the RNG service (DR-STRaNGe's
//! system argument: validate what you serve, fence off what fails) taps
//! delivered bytes and runs the word-parallel battery on fixed-size
//! windows. This module owns the windowing: bytes are accumulated into a
//! reused byte buffer, and every time a full window is available it is
//! packed into a reused [`BitVec`] and run through
//! [`crate::run_all_tests_with_threads`] — no per-window allocation beyond
//! the battery's own internals.
//!
//! Windows are defined purely by arrival order: bytes `[k·W, (k+1)·W)` of
//! everything pushed form window `k` (`W` = window bytes). A partial tail
//! window stays pending until enough bytes arrive (or [`WindowedBattery::
//! reset`] discards it, e.g. when a quarantined shard's stale bytes must
//! not leak into its post-readmission health).

use crate::{run_all_tests_with_threads, Significance, TestResult};
use qt_dram_core::{worker_threads, BitVec};

/// The verdict of one completed validation window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Zero-based index of the window within this battery's stream.
    pub index: u64,
    /// The full 15-test battery results for the window, in
    /// [`TEST_NAMES`](crate::TEST_NAMES) order.
    pub results: Vec<TestResult>,
}

impl WindowReport {
    /// `true` if every (applicable) test passes at `alpha` — the window-level
    /// pass bit the shard-health EWMA folds in.
    pub fn passes(&self, alpha: Significance) -> bool {
        self.results.iter().all(|r| r.passes(alpha))
    }

    /// The smallest p-value among the applicable tests (`1.0` if none ran).
    pub fn min_p_value(&self) -> f64 {
        self.results
            .iter()
            .filter(|r| r.is_applicable())
            .map(|r| r.p_value)
            .fold(1.0, f64::min)
    }
}

/// A streaming NIST SP 800-22 battery over fixed-size bit windows.
///
/// Feed it served bytes with [`WindowedBattery::push`]; each time a full
/// window accumulates, the battery runs and the caller's closure receives a
/// [`WindowReport`]. The byte buffer and the packed [`BitVec`] are both
/// reused across windows, so steady-state validation performs no per-window
/// heap allocation in the windowing layer.
#[derive(Debug)]
pub struct WindowedBattery {
    window_bits: usize,
    threads: usize,
    /// Accumulated bytes of the (partial) current window.
    pending: Vec<u8>,
    /// Reused packed window, always `window_bits` long.
    bits: BitVec,
    windows_completed: u64,
}

impl WindowedBattery {
    /// Creates a battery over `window_bits`-bit windows (the service default
    /// is the battery bench's 50 kb), running each window's tests across
    /// [`worker_threads`] workers.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is zero or not a multiple of 8 (windows are
    /// carved from a byte stream).
    pub fn new(window_bits: usize) -> Self {
        Self::with_threads(window_bits, worker_threads())
    }

    /// [`WindowedBattery::new`] with an explicit per-window worker count.
    pub fn with_threads(window_bits: usize, threads: usize) -> Self {
        assert!(
            window_bits > 0 && window_bits % 8 == 0,
            "window must be a positive whole number of bytes, got {window_bits} bits"
        );
        WindowedBattery {
            window_bits,
            threads,
            pending: Vec::with_capacity(window_bits / 8),
            bits: BitVec::zeros(window_bits),
            windows_completed: 0,
        }
    }

    /// The configured window length in bits.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// Bits accumulated toward the next (incomplete) window.
    pub fn pending_bits(&self) -> usize {
        self.pending.len() * 8
    }

    /// Number of full windows validated so far.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Discards the pending partial window (the window index keeps
    /// counting). Used when the stream is known to be discontinuous — e.g.
    /// a shard re-entering service after recharacterisation must not have
    /// pre-quarantine bytes grading its fresh stream.
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Appends served bytes; invokes `on_window` once per window completed
    /// by this push (zero or more times), in stream order.
    pub fn push(&mut self, mut bytes: &[u8], mut on_window: impl FnMut(WindowReport)) {
        let window_bytes = self.window_bits / 8;
        while !bytes.is_empty() {
            let take = (window_bytes - self.pending.len()).min(bytes.len());
            self.pending.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.pending.len() < window_bytes {
                return;
            }
            // Pack the window into the reused BitVec word-by-word (LSB-first
            // bytes, little-endian words — the `BitVec::from_bytes` layout).
            for (word, chunk) in
                self.bits.words_mut().iter_mut().zip(self.pending.chunks(8))
            {
                let mut le = [0u8; 8];
                le[..chunk.len()].copy_from_slice(chunk);
                *word = u64::from_le_bytes(le);
            }
            self.bits.clear_tail();
            let results = run_all_tests_with_threads(&self.bits, self.threads);
            let report = WindowReport { index: self.windows_completed, results };
            self.windows_completed += 1;
            self.pending.clear();
            on_window(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_all_tests_serial;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
    }

    /// Every window report must equal a from-scratch serial battery over the
    /// corresponding byte range, regardless of how the stream is chunked.
    #[test]
    fn windows_match_from_scratch_batteries_for_any_chunking() {
        const WINDOW_BITS: usize = 16_000;
        let stream = random_bytes(3 * WINDOW_BITS / 8 + 100, 7);
        let expected: Vec<Vec<TestResult>> = stream
            .chunks(WINDOW_BITS / 8)
            .filter(|c| c.len() == WINDOW_BITS / 8)
            .map(|c| run_all_tests_serial(&BitVec::from_bytes(c, WINDOW_BITS)))
            .collect();
        assert_eq!(expected.len(), 3);
        for chunking in [1usize, 7, 64, 1999, stream.len()] {
            let mut battery = WindowedBattery::with_threads(WINDOW_BITS, 1);
            let mut seen = Vec::new();
            for chunk in stream.chunks(chunking) {
                battery.push(chunk, |w| seen.push(w));
            }
            assert_eq!(seen.len(), 3, "chunking {chunking}");
            for (report, expected) in seen.iter().zip(&expected) {
                assert_eq!(report.results.len(), expected.len());
                for (a, b) in report.results.iter().zip(expected) {
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.applicability, b.applicability);
                    assert_eq!(a.p_value.to_bits(), b.p_value.to_bits(), "{}", a.name);
                }
            }
            assert_eq!(seen[0].index, 0);
            assert_eq!(seen[2].index, 2);
            assert_eq!(battery.windows_completed(), 3);
            assert_eq!(battery.pending_bits(), 100 * 8);
        }
    }

    #[test]
    fn one_push_can_complete_multiple_windows() {
        let mut battery = WindowedBattery::with_threads(8_000, 1);
        let mut indices = Vec::new();
        battery.push(&random_bytes(3500, 3), |w| indices.push(w.index));
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(battery.pending_bits(), 500 * 8);
    }

    #[test]
    fn reset_discards_the_partial_window_only() {
        let mut battery = WindowedBattery::with_threads(8_000, 1);
        let mut windows = 0;
        battery.push(&random_bytes(1200, 5), |_| windows += 1);
        assert_eq!(windows, 1);
        assert_eq!(battery.pending_bits(), 200 * 8);
        battery.reset();
        assert_eq!(battery.pending_bits(), 0);
        assert_eq!(battery.windows_completed(), 1);
        // The next full window starts clean.
        battery.push(&random_bytes(1000, 6), |w| {
            assert_eq!(w.index, 1);
            windows += 1;
        });
        assert_eq!(windows, 2);
    }

    #[test]
    fn good_windows_pass_and_constant_windows_fail() {
        let mut battery = WindowedBattery::with_threads(16_000, 1);
        let mut verdicts = Vec::new();
        battery.push(&random_bytes(2000, 11), |w| verdicts.push(w.passes(Significance::PAPER)));
        battery.push(&vec![0xFFu8; 2000], |w| {
            assert!(w.min_p_value() < 1e-6);
            verdicts.push(w.passes(Significance::PAPER));
        });
        assert_eq!(verdicts, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "whole number of bytes")]
    fn non_byte_windows_are_rejected() {
        let _ = WindowedBattery::new(50_001);
    }

    #[test]
    fn threaded_windows_match_serial_windows() {
        const WINDOW_BITS: usize = 16_000;
        let stream = random_bytes(2 * WINDOW_BITS / 8, 13);
        let mut serial = WindowedBattery::with_threads(WINDOW_BITS, 1);
        let mut threaded = WindowedBattery::with_threads(WINDOW_BITS, 4);
        let mut a = Vec::new();
        let mut b = Vec::new();
        serial.push(&stream, |w| a.push(w));
        threaded.push(&stream, |w| b.push(w));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            for (rx, ry) in x.results.iter().zip(&y.results) {
                assert_eq!(rx.p_value.to_bits(), ry.p_value.to_bits(), "{}", rx.name);
            }
        }
    }
}
