//! # qt-nist-sts
//!
//! The NIST SP 800-22 statistical test suite for randomness, implemented from
//! the specification (Bassham et al., 2010). The paper validates QUAC-TRNG's
//! output by showing that 1 Mb sequences pass all 15 tests with significance
//! level α = 0.001 (Section 6.2, Table 1) and that ≥ 98.84 % of 1024
//! sequences pass every test (Section 7.1).
//!
//! ## Example
//!
//! ```
//! use qt_nist_sts::{run_all_tests, Significance};
//! use qt_dram_core::BitVec;
//! use rand::{Rng, SeedableRng};
//!
//! // A decent PRNG stream passes the suite at the paper's α = 0.001.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let bits = BitVec::from_bits((0..100_000).map(|_| rng.gen::<bool>()));
//! let results = run_all_tests(&bits);
//! assert!(results.iter().all(|r| r.passes(Significance::PAPER)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod special;
pub mod tests15;
pub mod windowed;

pub use windowed::{WindowReport, WindowedBattery};

use qt_dram_core::BitVec;
use serde::{Deserialize, Serialize};

/// A significance level α for the null hypothesis "the sequence is random".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Significance(pub f64);

impl Significance {
    /// The paper's chosen level, α = 0.001 (Section 6.2).
    pub const PAPER: Significance = Significance(0.001);
    /// NIST's common default, α = 0.01.
    pub const NIST_DEFAULT: Significance = Significance(0.01);
}

/// Whether a test's preconditions were met — and if not, which requirement
/// failed and by how much, so a report can say *why* the test was skipped
/// instead of printing a misleading `p = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Applicability {
    /// The sequence met the test's preconditions; the p-value is meaningful.
    Applicable,
    /// The sequence failed a precondition of SP 800-22 (input-size
    /// recommendation, minimum cycle count, …); no p-value exists.
    NotApplicable {
        /// What the requirement counts ("bits", "cycles", "blocks", …).
        requirement: &'static str,
        /// The spec's minimum for this test.
        required: usize,
        /// What the sequence actually provided.
        actual: usize,
    },
}

impl Applicability {
    /// `true` for [`Applicability::Applicable`].
    pub fn is_applicable(&self) -> bool {
        matches!(self, Applicability::Applicable)
    }
}

/// The outcome of one statistical test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// Test name (matching Table 1's row labels).
    pub name: &'static str,
    /// The p-value (the minimum p-value for tests that produce several).
    /// `NaN` when the test was not applicable — no p-value exists, and
    /// anything pretending to be one (the reference implementation prints
    /// `0.000000`) reads as a catastrophic failure instead of a skip.
    pub p_value: f64,
    /// Whether the test could be applied (long-enough sequence, enough
    /// cycles for the excursion tests, …), with the failed requirement.
    pub applicability: Applicability,
}

impl TestResult {
    /// `true` if the test's preconditions were met.
    pub fn is_applicable(&self) -> bool {
        self.applicability.is_applicable()
    }

    /// Returns `true` if the sequence is considered random by this test at
    /// the given significance level (inapplicable tests pass vacuously, as in
    /// the NIST reference implementation's reporting).
    pub fn passes(&self, alpha: Significance) -> bool {
        !self.is_applicable() || self.p_value >= alpha.0
    }

    /// The p-value formatted for a report: the number when the test ran,
    /// `"n/a (needs ≥ N <requirement>, got M)"` when it did not.
    pub fn display_p_value(&self) -> String {
        match self.applicability {
            Applicability::Applicable => format!("{:.3}", self.p_value),
            Applicability::NotApplicable { requirement, required, actual } => {
                format!("n/a (needs \u{2265} {required} {requirement}, got {actual})")
            }
        }
    }
}

/// The 15 test names in Table 1 order.
pub const TEST_NAMES: [&str; 15] = [
    "monobit",
    "frequency_within_block",
    "runs",
    "longest_run_ones_in_a_block",
    "binary_matrix_rank",
    "dft",
    "non_overlapping_template_matching",
    "overlapping_template_matching",
    "maurers_universal",
    "linear_complexity",
    "serial",
    "approximate_entropy",
    "cumulative_sums",
    "random_excursion",
    "random_excursion_variant",
];

/// Number of worker threads the battery and [`pass_rate`] shard across —
/// the workspace-wide `QUAC_THREADS` convention, shared with the
/// characterisation sweeps through `qt_dram_core`.
pub use qt_dram_core::worker_threads;

/// Runs one of the 15 tests by its [`TEST_NAMES`] index, with the battery's
/// standard parameters (block lengths per Table 1 / SP 800-22 §2 defaults).
fn run_test(bits: &BitVec, index: usize) -> TestResult {
    use tests15::*;
    match index {
        0 => monobit(bits),
        1 => frequency_within_block(bits, 128),
        2 => runs(bits),
        3 => longest_run_of_ones(bits),
        4 => binary_matrix_rank(bits),
        5 => dft(bits),
        6 => non_overlapping_template_matching(bits, 9),
        7 => overlapping_template_matching(bits, 9),
        8 => maurers_universal(bits),
        9 => linear_complexity(bits, 500),
        10 => serial(bits, 16),
        11 => approximate_entropy(bits, 10),
        12 => cumulative_sums(bits),
        13 => random_excursion(bits),
        14 => random_excursion_variant(bits),
        _ => unreachable!("test index {index} out of range"),
    }
}

/// Runs all 15 NIST STS tests on a bitstream and returns one result per test
/// (in [`TEST_NAMES`] order), fanning the tests across [`worker_threads`]
/// scoped workers. Each test is a pure function of the stream, so the result
/// is identical to [`run_all_tests_serial`] for any worker count — which the
/// test suite pins.
pub fn run_all_tests(bits: &BitVec) -> Vec<TestResult> {
    run_all_tests_with_threads(bits, worker_threads())
}

/// Single-threaded reference battery; the parallel path is tested identical.
pub fn run_all_tests_serial(bits: &BitVec) -> Vec<TestResult> {
    (0..TEST_NAMES.len()).map(|i| run_test(bits, i)).collect()
}

/// [`run_all_tests`] with an explicit worker count. Workers pull test
/// indices from a shared queue (the per-test costs differ by orders of
/// magnitude, so static chunking would idle most workers) and write each
/// result into its index slot.
pub fn run_all_tests_with_threads(bits: &BitVec, threads: usize) -> Vec<TestResult> {
    let count = TEST_NAMES.len();
    if threads <= 1 {
        return run_all_tests_serial(bits);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<TestResult>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(count))
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= count {
                            return done;
                        }
                        done.push((i, run_test(bits, i)));
                    }
                })
            })
            .collect();
        for worker in workers {
            for (i, r) in worker.join().expect("battery worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every test index was claimed")).collect()
}

/// Fraction of sequences that pass every test at the given α — the
/// Section 7.1 pass-rate metric, sharding the sequences across
/// [`worker_threads`] scoped workers. Returns `(pass_fraction, minimum
/// acceptable fraction)` where the minimum follows NIST's
/// `(1-α) - 3·sqrt(α(1-α)/k)` rule for `k` sequences.
pub fn pass_rate(sequences: &[BitVec], alpha: Significance) -> (f64, f64) {
    pass_rate_with_threads(sequences, alpha, worker_threads())
}

/// Single-threaded reference for [`pass_rate`]; the sharded path is tested
/// identical for any worker count.
pub fn pass_rate_serial(sequences: &[BitVec], alpha: Significance) -> (f64, f64) {
    pass_rate_with_threads(sequences, alpha, 1)
}

/// [`pass_rate`] with an explicit worker count. The parallelism is across
/// sequences (each worker runs serial batteries on its shard), and the merge
/// is a sum of per-shard pass counts — an integer, so the result is
/// bit-identical for any `threads`.
pub fn pass_rate_with_threads(
    sequences: &[BitVec],
    alpha: Significance,
    threads: usize,
) -> (f64, f64) {
    let k = sequences.len().max(1) as f64;
    let passes = |s: &BitVec| run_all_tests_serial(s).iter().all(|r| r.passes(alpha));
    let passed = if threads <= 1 || sequences.len() <= 1 {
        sequences.iter().filter(|s| passes(s)).count()
    } else {
        let chunk = sequences.len().div_ceil(threads.min(sequences.len()));
        std::thread::scope(|scope| {
            let workers: Vec<_> = sequences
                .chunks(chunk)
                .map(|shard| scope.spawn(move || shard.iter().filter(|s| passes(s)).count()))
                .collect();
            workers.into_iter().map(|w| w.join().expect("pass-rate worker panicked")).sum()
        })
    } as f64;
    let a = 0.005; // NIST's proportion-test alpha for the acceptable-rate bound (footnote 9).
    let min_rate = (1.0 - a) - 3.0 * (a * (1.0 - a) / k).sqrt();
    (passed / k, min_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::from_bits((0..n).map(|_| rng.gen::<bool>()))
    }

    #[test]
    fn all_fifteen_tests_run_and_are_named() {
        let bits = random_bits(60_000, 1);
        let results = run_all_tests(&bits);
        assert_eq!(results.len(), 15);
        for (r, name) in results.iter().zip(TEST_NAMES) {
            assert_eq!(r.name, name);
            if r.is_applicable() {
                assert!((0.0..=1.0).contains(&r.p_value), "{}: p={}", r.name, r.p_value);
            } else {
                // Inapplicable tests report no p-value at all.
                assert!(r.p_value.is_nan(), "{}: p={}", r.name, r.p_value);
            }
        }
        // A 60 kb stream is too short for Maurer's test and (in expectation)
        // for the excursion tests; those must be explicit skips.
        let maurer = results.iter().find(|r| r.name == "maurers_universal").unwrap();
        assert!(!maurer.is_applicable());
    }

    #[test]
    fn good_prng_passes_and_constant_stream_fails() {
        let good = random_bits(100_000, 2);
        assert!(run_all_tests(&good).iter().all(|r| r.passes(Significance::PAPER)));

        let bad = BitVec::ones(100_000);
        let failed = run_all_tests(&bad)
            .iter()
            .filter(|r| !r.passes(Significance::PAPER))
            .count();
        assert!(failed >= 5, "a constant stream should fail many tests, failed {failed}");
    }

    #[test]
    fn heavily_biased_stream_fails_monobit() {
        let mut rng = StdRng::seed_from_u64(3);
        let biased = BitVec::from_bits((0..50_000).map(|_| rng.gen::<f64>() < 0.6));
        let results = run_all_tests(&biased);
        let monobit = results.iter().find(|r| r.name == "monobit").unwrap();
        assert!(!monobit.passes(Significance::PAPER));
    }

    #[test]
    fn pass_rate_of_good_sequences_exceeds_the_nist_bound() {
        let sequences: Vec<BitVec> = (0..20).map(|i| random_bits(30_000, 100 + i)).collect();
        let (rate, min_rate) = pass_rate(&sequences, Significance::PAPER);
        assert!(rate >= min_rate, "rate {rate} min {min_rate}");
        assert!(rate > 0.9);
    }

    /// Bit-exact equality of two batteries (NaN p-values compare equal).
    fn assert_batteries_identical(a: &[TestResult], b: &[TestResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.applicability, y.applicability);
            assert_eq!(x.p_value.to_bits(), y.p_value.to_bits(), "{}", x.name);
        }
    }

    #[test]
    fn parallel_battery_is_identical_to_serial_for_any_worker_count() {
        for (n, seed) in [(0usize, 0u64), (3_000, 5), (60_000, 7)] {
            let bits = random_bits(n, seed);
            let serial = run_all_tests_serial(&bits);
            for threads in [1, 2, 3, 5, 16, 64] {
                let parallel = run_all_tests_with_threads(&bits, threads);
                assert_batteries_identical(&parallel, &serial);
            }
        }
    }

    #[test]
    fn sharded_pass_rate_is_identical_to_serial_for_any_worker_count() {
        let sequences: Vec<BitVec> = (0..9)
            .map(|i| {
                if i % 3 == 0 {
                    BitVec::ones(20_000) // guaranteed failures mix into the count
                } else {
                    random_bits(20_000, 40 + i)
                }
            })
            .collect();
        let serial = pass_rate_serial(&sequences, Significance::PAPER);
        assert!(serial.0 < 1.0, "the constant streams must fail");
        for threads in [1, 2, 3, 4, 9, 32] {
            let sharded = pass_rate_with_threads(&sequences, Significance::PAPER, threads);
            assert_eq!(sharded.0.to_bits(), serial.0.to_bits(), "threads = {threads}");
            assert_eq!(sharded.1.to_bits(), serial.1.to_bits(), "threads = {threads}");
        }
        // Empty input: defined, no division by zero (k clamps to 1, so the
        // bound is the single-sequence one, ≈ 0.78).
        let (rate, bound) = pass_rate_with_threads(&[], Significance::PAPER, 4);
        assert_eq!(rate, 0.0);
        assert!(bound > 0.7 && bound < 1.0);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
