//! Event-driven single-channel DDR4 memory system ("ramulator-lite").
//!
//! Serves a trace of last-level-cache misses with an FR-FCFS-like policy
//! (row hits proceed with a column command; misses pay precharge +
//! activation), enforces the bank/bus timing constraints that matter for
//! bandwidth accounting, and reports how much of the data bus was left idle —
//! the budget QUAC-TRNG iterations can be injected into (Section 7.3).

use qt_dram_core::{DramGeometry, RowAddr, TimingParams, TransferRate};
use qt_workloads::{MemoryRequest, RequestKind};
use serde::{Deserialize, Serialize};

/// Configuration of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// DRAM transfer rate.
    pub rate: TransferRate,
    /// DDR4 timing parameters.
    pub timing: TimingParams,
    /// Module geometry (banks per channel).
    pub geom: DramGeometry,
    /// Core clock frequency in GHz (3.2 GHz in Section 7.3).
    pub core_freq_ghz: f64,
}

impl MemorySystemConfig {
    /// The Section 7.3 configuration: DDR4-2400, 3.2 GHz core.
    pub fn paper_system() -> Self {
        MemorySystemConfig {
            rate: TransferRate::ddr4_2400(),
            timing: TimingParams::ddr4_2400(),
            geom: DramGeometry::ddr4_4gb_x8_module(),
            core_freq_ghz: 3.2,
        }
    }
}

/// Utilisation statistics of one simulated channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Total simulated wall-clock time in nanoseconds.
    pub total_ns: f64,
    /// Time the data bus carried application bursts, in nanoseconds.
    pub data_bus_busy_ns: f64,
    /// Number of requests served.
    pub served_requests: usize,
    /// Number of requests that hit in an open row.
    pub row_hits: usize,
    /// Average request latency (arrival to data burst completion), in
    /// nanoseconds.
    pub avg_latency_ns: f64,
}

impl UtilizationReport {
    /// Fraction of time the data bus was busy with application traffic.
    pub fn bus_utilisation(&self) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            (self.data_bus_busy_ns / self.total_ns).clamp(0.0, 1.0)
        }
    }

    /// Fraction of time the data bus was idle and available to QUAC-TRNG.
    pub fn idle_fraction(&self) -> f64 {
        1.0 - self.bus_utilisation()
    }

    /// Row-buffer hit rate observed by the controller.
    pub fn row_hit_rate(&self) -> f64 {
        if self.served_requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.served_requests as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<RowAddr>,
    ready_at_ns: f64,
}

/// The event-driven memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemorySystemConfig,
    banks: Vec<BankState>,
    data_bus_free_at: f64,
    data_bus_busy_ns: f64,
    served: usize,
    row_hits: usize,
    latency_sum: f64,
    last_completion_ns: f64,
}

impl MemorySystem {
    /// Creates an idle memory system.
    pub fn new(cfg: MemorySystemConfig) -> Self {
        let banks = vec![
            BankState { open_row: None, ready_at_ns: 0.0 };
            cfg.geom.banks_per_rank()
        ];
        MemorySystem {
            cfg,
            banks,
            data_bus_free_at: 0.0,
            data_bus_busy_ns: 0.0,
            served: 0,
            row_hits: 0,
            latency_sum: 0.0,
            last_completion_ns: 0.0,
        }
    }

    /// The configuration of this system.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.cfg
    }

    /// Serves one request and returns its completion time in nanoseconds.
    pub fn serve(&mut self, req: &MemoryRequest) -> f64 {
        let t = &self.cfg.timing;
        let arrival_ns = req.arrival_cycle as f64 / self.cfg.core_freq_ghz;
        let flat = req.bank_group.index() * self.cfg.geom.banks_per_group + req.bank.index();
        let bank = &mut self.banks[flat];

        let mut ready = arrival_ns.max(bank.ready_at_ns);
        let hit = bank.open_row == Some(req.row);
        if hit {
            self.row_hits += 1;
        } else {
            // Precharge (if a row is open) then activate the new row.
            if bank.open_row.is_some() {
                ready += t.t_rp;
            }
            ready += t.t_rcd;
            bank.open_row = Some(req.row);
        }

        // Column command, then the burst occupies the shared data bus.
        let column_latency = match req.kind {
            RequestKind::Read => t.t_cl,
            RequestKind::Write => t.t_cwl,
        };
        let burst = t.burst_ns(self.cfg.rate);
        let bus_start = (ready + column_latency).max(self.data_bus_free_at);
        let completion = bus_start + burst;

        self.data_bus_free_at = completion;
        self.data_bus_busy_ns += burst;
        bank.ready_at_ns = ready + t.t_ras.max(column_latency + burst)
            + if req.kind == RequestKind::Write { t.t_wr } else { 0.0 };

        self.served += 1;
        self.latency_sum += completion - arrival_ns;
        self.last_completion_ns = self.last_completion_ns.max(completion);
        completion
    }

    /// Serves a whole trace that spans `core_cycles` core cycles and returns
    /// the utilisation report for that window.
    pub fn run_trace(&mut self, requests: &[MemoryRequest], core_cycles: u64) -> UtilizationReport {
        for req in requests {
            self.serve(req);
        }
        let window_ns = core_cycles as f64 / self.cfg.core_freq_ghz;
        let total_ns = window_ns.max(self.last_completion_ns);
        UtilizationReport {
            total_ns,
            data_bus_busy_ns: self.data_bus_busy_ns,
            served_requests: self.served,
            row_hits: self.row_hits,
            avg_latency_ns: if self.served == 0 { 0.0 } else { self.latency_sum / self.served as f64 },
        }
    }
}

/// Random-number throughput available from the idle intervals of one channel,
/// given the channel's peak QUAC-TRNG rate when it has the bus to itself
/// (Figure 12's injection model). A small switching overhead discounts very
/// fragmented idle time.
pub fn idle_injection_throughput_gbps(
    report: &UtilizationReport,
    peak_trng_gbps: f64,
    injection_efficiency: f64,
) -> f64 {
    report.idle_fraction() * peak_trng_gbps * injection_efficiency.clamp(0.0, 1.0)
}

/// A rate budget for injecting QUAC-TRNG work into a channel's idle DRAM
/// cycles (Section 7.3): the sustained random-byte rate the controller may
/// draw without displacing application traffic. The RNG service's workers
/// pace themselves against this budget; [`IdleBudget::unlimited`] disables
/// pacing (a dedicated channel, or a micro-benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdleBudget {
    /// Sustained random-number rate available to the TRNG, in Gb/s.
    pub gbps: f64,
}

impl IdleBudget {
    /// Budget measured from a channel's utilisation report under a co-running
    /// workload, via the idle-injection model of Figure 12.
    pub fn from_report(
        report: &UtilizationReport,
        peak_trng_gbps: f64,
        injection_efficiency: f64,
    ) -> Self {
        IdleBudget {
            gbps: idle_injection_throughput_gbps(report, peak_trng_gbps, injection_efficiency),
        }
    }

    /// An explicit rate in Gb/s (clamped to be non-negative).
    pub fn from_gbps(gbps: f64) -> Self {
        IdleBudget { gbps: gbps.max(0.0) }
    }

    /// No pacing: the channel is dedicated to TRNG work.
    pub fn unlimited() -> Self {
        IdleBudget { gbps: f64::INFINITY }
    }

    /// Returns `true` if this budget never throttles.
    pub fn is_unlimited(&self) -> bool {
        self.gbps.is_infinite()
    }

    /// Bytes the budget admits over `duration`.
    pub fn bytes_in(&self, duration: std::time::Duration) -> usize {
        if self.is_unlimited() {
            return usize::MAX;
        }
        (self.gbps * 1e9 / 8.0 * duration.as_secs_f64()) as usize
    }

    /// The wall-clock time the budget requires to emit `bytes` random bytes —
    /// the pacing delay a worker owes after producing a batch. A zero-rate
    /// budget saturates to ~1 hour per call rather than an infinite wait, so
    /// a shutdown request can still interrupt the sleep.
    pub fn time_for_bytes(&self, bytes: usize) -> std::time::Duration {
        if self.is_unlimited() || bytes == 0 {
            return std::time::Duration::ZERO;
        }
        let secs = (bytes as f64 * 8.0) / (self.gbps * 1e9);
        std::time::Duration::from_secs_f64(secs.min(3600.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_workloads::{TraceGenerator, SPEC2006_WORKLOADS};

    fn report_for(name: &str, cycles: u64) -> UtilizationReport {
        let cfg = MemorySystemConfig::paper_system();
        let profile = SPEC2006_WORKLOADS.iter().find(|w| w.name == name).unwrap().clone();
        let trace = TraceGenerator::new(profile, cfg.geom, 11).generate_for_cycles(cycles);
        MemorySystem::new(cfg).run_trace(&trace, cycles)
    }

    #[test]
    fn empty_trace_leaves_the_bus_idle() {
        let cfg = MemorySystemConfig::paper_system();
        let report = MemorySystem::new(cfg).run_trace(&[], 1_000_000);
        assert_eq!(report.served_requests, 0);
        assert_eq!(report.bus_utilisation(), 0.0);
        assert_eq!(report.idle_fraction(), 1.0);
    }

    #[test]
    fn memory_bound_workloads_use_more_bus_than_compute_bound() {
        let cycles = 500_000;
        let mcf = report_for("mcf", cycles);
        let namd = report_for("namd", cycles);
        assert!(mcf.bus_utilisation() > 4.0 * namd.bus_utilisation(),
            "mcf {} vs namd {}", mcf.bus_utilisation(), namd.bus_utilisation());
        assert!(namd.idle_fraction() > 0.9);
        assert!(mcf.bus_utilisation() > 0.1 && mcf.bus_utilisation() < 0.9);
    }

    #[test]
    fn row_hit_rate_reflects_workload_locality() {
        let cycles = 500_000;
        let libquantum = report_for("libquantum", cycles);
        let omnetpp = report_for("omnetpp", cycles);
        assert!(libquantum.row_hit_rate() > omnetpp.row_hit_rate());
    }

    #[test]
    fn latency_is_positive_and_bounded() {
        let r = report_for("gcc", 300_000);
        assert!(r.avg_latency_ns > 10.0);
        assert!(r.avg_latency_ns < 10_000.0, "avg latency {}", r.avg_latency_ns);
        assert!(r.served_requests > 0);
    }

    #[test]
    fn idle_injection_scales_with_idle_fraction() {
        let r = UtilizationReport {
            total_ns: 1000.0,
            data_bus_busy_ns: 400.0,
            served_requests: 10,
            row_hits: 5,
            avg_latency_ns: 50.0,
        };
        let tp = idle_injection_throughput_gbps(&r, 3.44, 1.0);
        assert!((tp - 0.6 * 3.44).abs() < 1e-9);
        let tp_eff = idle_injection_throughput_gbps(&r, 3.44, 0.9);
        assert!(tp_eff < tp);
    }

    #[test]
    fn idle_budget_round_trips_bytes_and_time() {
        let budget = IdleBudget::from_gbps(2.0);
        let one_sec = std::time::Duration::from_secs(1);
        // 2 Gb/s = 250 MB/s.
        assert_eq!(budget.bytes_in(one_sec), 250_000_000);
        let t = budget.time_for_bytes(250_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9, "{t:?}");
        assert_eq!(budget.time_for_bytes(0), std::time::Duration::ZERO);

        let unlimited = IdleBudget::unlimited();
        assert!(unlimited.is_unlimited());
        assert_eq!(unlimited.bytes_in(one_sec), usize::MAX);
        assert_eq!(unlimited.time_for_bytes(1 << 30), std::time::Duration::ZERO);

        // Zero-rate budgets stall, but with a bounded (interruptible) wait.
        let stalled = IdleBudget::from_gbps(0.0);
        assert_eq!(stalled.bytes_in(one_sec), 0);
        assert_eq!(stalled.time_for_bytes(1).as_secs(), 3600);
        // Negative rates are clamped rather than producing negative waits.
        assert_eq!(IdleBudget::from_gbps(-1.0).gbps, 0.0);
    }

    #[test]
    fn idle_budget_tracks_the_injection_model() {
        let r = UtilizationReport {
            total_ns: 1000.0,
            data_bus_busy_ns: 400.0,
            served_requests: 10,
            row_hits: 5,
            avg_latency_ns: 50.0,
        };
        let budget = IdleBudget::from_report(&r, 3.44, 0.95);
        assert!((budget.gbps - idle_injection_throughput_gbps(&r, 3.44, 0.95)).abs() < 1e-12);
        assert!(budget.gbps > 0.0 && !budget.is_unlimited());
    }

    #[test]
    fn every_workload_leaves_some_idle_bandwidth() {
        // Figure 12: even the most memory-intensive workloads leave idle
        // intervals worth > 3 Gb/s of TRNG throughput on a 4-channel system.
        for w in SPEC2006_WORKLOADS.iter().take(6) {
            let cfg = MemorySystemConfig::paper_system();
            let trace = TraceGenerator::new(w.clone(), cfg.geom, 5).generate_for_cycles(300_000);
            let report = MemorySystem::new(cfg).run_trace(&trace, 300_000);
            assert!(report.idle_fraction() > 0.05, "{} idle {}", w.name, report.idle_fraction());
        }
    }
}
