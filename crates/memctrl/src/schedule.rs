//! Tight DDR4 command scheduling of QUAC-TRNG iterations.
//!
//! One QUAC-TRNG iteration consists of (i) initialising four segment rows,
//! (ii) the QUAC command sequence, and (iii) reading the sense amplifiers
//! back to the controller (Section 7.2). The three evaluated configurations
//! differ in how the initialisation is done (DRAM writes vs. in-DRAM
//! RowClone copies) and how many banks run iterations concurrently
//! (1 vs. 4 banks in different bank groups).

use qt_dram_core::{DramGeometry, TimingParams, TransferRate, ROWS_PER_SEGMENT};
use serde::{Deserialize, Serialize};

/// How the four segment rows are initialised before QUAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitMethod {
    /// The memory controller writes the data pattern over the data bus
    /// (baseline; bandwidth-hungry).
    WriteBased,
    /// In-DRAM RowClone-style copies from two reserved all-0/all-1 rows
    /// (ComputeDRAM), which never touch the data bus.
    RowClone,
}

/// Configuration of the QUAC-TRNG command schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuacScheduleConfig {
    /// Segment initialisation method.
    pub init: InitMethod,
    /// Number of banks (in distinct bank groups) running iterations
    /// concurrently.
    pub banks: usize,
    /// Number of cache blocks read back per segment (the controller only
    /// needs the high-entropy blocks; reading all 128 is the conservative
    /// default).
    pub read_blocks: usize,
}

impl QuacScheduleConfig {
    /// The paper's "One Bank" configuration.
    pub fn one_bank(geom: &DramGeometry) -> Self {
        QuacScheduleConfig { init: InitMethod::WriteBased, banks: 1, read_blocks: geom.cache_blocks_per_row() }
    }

    /// The paper's "BGP" configuration (bank-group parallelism, write-based
    /// initialisation).
    pub fn bgp(geom: &DramGeometry) -> Self {
        QuacScheduleConfig {
            init: InitMethod::WriteBased,
            banks: geom.bank_groups,
            read_blocks: geom.cache_blocks_per_row(),
        }
    }

    /// The paper's "RC + BGP" configuration (RowClone initialisation plus
    /// bank-group parallelism) — the headline 3.44 Gb/s configuration.
    pub fn rc_bgp(geom: &DramGeometry) -> Self {
        QuacScheduleConfig {
            init: InitMethod::RowClone,
            banks: geom.bank_groups,
            read_blocks: geom.cache_blocks_per_row(),
        }
    }
}

/// The outcome of tightly scheduling one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationSchedule {
    /// End-to-end latency of one iteration across all participating banks,
    /// in nanoseconds.
    pub latency_ns: f64,
    /// Time the shared data bus is busy during the iteration, in nanoseconds.
    pub data_bus_busy_ns: f64,
    /// Number of DDR4 commands issued.
    pub commands: usize,
    /// Number of banks participating.
    pub banks: usize,
}

impl IterationSchedule {
    /// Fraction of the iteration during which the data bus is occupied.
    pub fn data_bus_utilisation(&self) -> f64 {
        (self.data_bus_busy_ns / self.latency_ns).clamp(0.0, 1.0)
    }

    /// Random-number throughput in Gb/s for a given number of random bits
    /// produced per iteration.
    pub fn throughput_gbps(&self, bits_per_iteration: f64) -> f64 {
        bits_per_iteration / self.latency_ns
    }
}

/// Latency of initialising one row by writing every column over the bus.
fn write_init_row_ns(timing: &TimingParams, rate: TransferRate, geom: &DramGeometry) -> (f64, f64, usize) {
    let burst = timing.burst_ns(rate);
    let per_column = timing.t_ccd_l.max(burst);
    let columns = geom.columns_per_row();
    let latency = timing.t_rcd + columns as f64 * per_column + timing.t_wr + timing.t_rp;
    let bus = columns as f64 * burst;
    (latency, bus, 2 + columns)
}

/// Latency of initialising one row with an in-DRAM copy (ACT–PRE–ACT with
/// violated timings, then restore and precharge); no data-bus traffic.
fn rowclone_row_ns(timing: &TimingParams) -> (f64, f64, usize) {
    let gap = TimingParams::quac_violated_gap_ns();
    (2.0 * gap + timing.t_ras + timing.t_rp, 0.0, 4)
}

/// Latency of the QUAC command sequence itself (ACT–PRE–ACT with violated
/// timings, then tRCD before the sense amplifiers can be read).
fn quac_ns(timing: &TimingParams) -> (f64, usize) {
    let gap = TimingParams::quac_violated_gap_ns();
    (2.0 * gap + timing.t_rcd, 3)
}

/// Latency and bus time of reading `blocks` cache blocks from the row buffer.
fn read_ns(timing: &TimingParams, rate: TransferRate, blocks: usize) -> (f64, f64, usize) {
    let burst = timing.burst_ns(rate);
    let per_column = timing.t_ccd_l.max(burst);
    let latency = timing.t_cl + blocks as f64 * per_column;
    let bus = blocks as f64 * burst;
    (latency, bus, blocks)
}

/// Tightly schedules one QUAC-TRNG iteration and returns its latency and
/// data-bus occupancy.
///
/// For multi-bank configurations, per-bank command sequences overlap (banks
/// sit in different bank groups, so consecutive ACTs are only tRRD_S apart),
/// but every data burst shares the single channel data bus; the iteration
/// latency is therefore the maximum of the per-bank critical path and the
/// serialized data-bus time.
pub fn quac_iteration(
    cfg: QuacScheduleConfig,
    timing: &TimingParams,
    rate: TransferRate,
    geom: &DramGeometry,
) -> IterationSchedule {
    assert!(cfg.banks >= 1, "at least one bank must participate");
    let (init_row_lat, init_row_bus, init_row_cmds) = match cfg.init {
        InitMethod::WriteBased => write_init_row_ns(timing, rate, geom),
        InitMethod::RowClone => rowclone_row_ns(timing),
    };
    let (quac_lat, quac_cmds) = quac_ns(timing);
    let (read_lat, read_bus, read_cmds) = read_ns(timing, rate, cfg.read_blocks);

    // Per-bank critical path: initialise four rows, QUAC, read, close.
    let per_bank_latency =
        ROWS_PER_SEGMENT as f64 * init_row_lat + quac_lat + read_lat + timing.t_rp;
    let per_bank_bus = ROWS_PER_SEGMENT as f64 * init_row_bus + read_bus;
    let per_bank_commands = ROWS_PER_SEGMENT * init_row_cmds + quac_cmds + read_cmds + 1;

    // Bank-group interleaving staggers per-bank schedules by tRRD_S; the data
    // bus serializes all bursts.
    let stagger = (cfg.banks as f64 - 1.0) * timing.t_rrd_s;
    let total_bus = cfg.banks as f64 * per_bank_bus;
    let latency = (per_bank_latency + stagger).max(total_bus + quac_lat + timing.t_rp);

    IterationSchedule {
        latency_ns: latency,
        data_bus_busy_ns: total_bus,
        commands: cfg.banks * per_bank_commands,
        banks: cfg.banks,
    }
}

/// Latency from "a 256-bit random number is requested" to "it is delivered",
/// assuming the segment is already initialised and only one SHA-256 input
/// block must be read (the Table 2 latency metric). `sha_latency_ns` is the
/// post-processing hash latency.
pub fn random_number_latency_ns(
    timing: &TimingParams,
    rate: TransferRate,
    blocks_for_256_bits: usize,
    sha_latency_ns: f64,
) -> f64 {
    let gap = TimingParams::quac_violated_gap_ns();
    let (read_lat, _, _) = read_ns(timing, rate, blocks_for_256_bits);
    2.0 * gap + timing.t_rcd + read_lat + sha_latency_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TimingParams, TransferRate, DramGeometry) {
        (TimingParams::ddr4_2400(), TransferRate::ddr4_2400(), DramGeometry::ddr4_4gb_x8_module())
    }

    #[test]
    fn one_bank_iteration_is_a_few_microseconds() {
        let (t, r, g) = setup();
        let s = quac_iteration(QuacScheduleConfig::one_bank(&g), &t, r, &g);
        // Dominated by write-based initialisation of 4 × 8 KiB rows.
        assert!(s.latency_ns > 2500.0 && s.latency_ns < 5000.0, "latency {}", s.latency_ns);
        assert_eq!(s.banks, 1);
    }

    #[test]
    fn rc_bgp_iteration_is_about_two_microseconds() {
        let (t, r, g) = setup();
        let s = quac_iteration(QuacScheduleConfig::rc_bgp(&g), &t, r, &g);
        // The paper reports 1940 ns per RC+BGP iteration.
        assert!(s.latency_ns > 1400.0 && s.latency_ns < 2600.0, "latency {}", s.latency_ns);
        assert_eq!(s.banks, 4);
    }

    #[test]
    fn configuration_ordering_matches_figure_11() {
        let (t, r, g) = setup();
        let bits_per_bank = 7.0 * 256.0;
        let one = quac_iteration(QuacScheduleConfig::one_bank(&g), &t, r, &g);
        let bgp = quac_iteration(QuacScheduleConfig::bgp(&g), &t, r, &g);
        let rc = quac_iteration(QuacScheduleConfig::rc_bgp(&g), &t, r, &g);
        let tp_one = one.throughput_gbps(bits_per_bank);
        let tp_bgp = bgp.throughput_gbps(4.0 * bits_per_bank);
        let tp_rc = rc.throughput_gbps(4.0 * bits_per_bank);
        assert!(tp_bgp > tp_one, "BGP {tp_bgp} should beat One Bank {tp_one}");
        assert!(tp_rc > 3.0 * tp_bgp, "RC+BGP {tp_rc} should far exceed BGP {tp_bgp}");
        // Rough magnitudes from Figure 11 (Gb/s).
        assert!(tp_one > 0.3 && tp_one < 0.8, "One Bank {tp_one}");
        assert!(tp_rc > 2.5 && tp_rc < 5.5, "RC+BGP {tp_rc}");
    }

    #[test]
    fn rowclone_initialisation_removes_data_bus_traffic() {
        let (t, r, g) = setup();
        let bgp = quac_iteration(QuacScheduleConfig::bgp(&g), &t, r, &g);
        let rc = quac_iteration(QuacScheduleConfig::rc_bgp(&g), &t, r, &g);
        assert!(rc.data_bus_busy_ns < bgp.data_bus_busy_ns / 3.0);
        assert!(rc.data_bus_utilisation() < 1.0);
    }

    #[test]
    fn faster_bus_shrinks_rc_bgp_latency() {
        let (t, _, g) = setup();
        let slow = quac_iteration(QuacScheduleConfig::rc_bgp(&g), &t, TransferRate::ddr4_2400(), &g);
        let fast = quac_iteration(
            QuacScheduleConfig::rc_bgp(&g),
            &TimingParams::for_speed_grade(qt_dram_core::SpeedGrade::Projected(9600)),
            TransferRate::from_mts(9600).unwrap(),
            &g,
        );
        assert!(fast.latency_ns < slow.latency_ns * 0.55, "slow {} fast {}", slow.latency_ns, fast.latency_ns);
    }

    #[test]
    fn random_number_latency_is_a_few_hundred_ns() {
        let (t, r, _) = setup();
        let l = random_number_latency_ns(&t, r, 1, 12.6);
        // Table 2 reports 274 ns for QUAC-TRNG (which reads several blocks);
        // a single-block read plus hash should be well under that.
        assert!(l > 20.0 && l < 300.0, "latency {l}");
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let (t, r, g) = setup();
        let cfg = QuacScheduleConfig { init: InitMethod::RowClone, banks: 0, read_blocks: 1 };
        let _ = quac_iteration(cfg, &t, r, &g);
    }
}
