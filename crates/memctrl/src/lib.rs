//! # qt-memctrl
//!
//! Memory-controller-level modelling for QUAC-TRNG:
//!
//! * [`schedule`] — tight DDR4 command scheduling of one QUAC-TRNG iteration
//!   under the paper's three configurations (One Bank, BGP, RC + BGP,
//!   Section 7.2), yielding per-iteration latency and data-bus occupancy.
//! * [`system`] — a cycle-level (event-driven) single-channel DDR4 memory
//!   system in the spirit of Ramulator: FR-FCFS-like scheduling of a request
//!   trace, bank timing state machines, and data-bus utilisation accounting,
//!   used to find the idle intervals QUAC-TRNG can steal (Section 7.3,
//!   Figure 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schedule;
pub mod system;

pub use schedule::{InitMethod, IterationSchedule, QuacScheduleConfig};
pub use system::{IdleBudget, MemorySystem, MemorySystemConfig, UtilizationReport};
