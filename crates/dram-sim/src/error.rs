//! Error types for the DRAM simulator.

use qt_dram_core::{RowAddr, Segment};
use std::fmt;

/// Errors produced by the behavioural DRAM simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum DramSimError {
    /// A command targeted a row outside the bank.
    RowOutOfRange {
        /// The offending row.
        row: RowAddr,
        /// Number of rows in the bank.
        rows_per_bank: usize,
    },
    /// A command targeted a segment outside the bank.
    SegmentOutOfRange {
        /// The offending segment.
        segment: Segment,
        /// Number of segments in the bank.
        segments_per_bank: usize,
    },
    /// A column command was issued while no row (or sense-amplifier content)
    /// was available.
    NoOpenRow,
    /// A command was issued with a timestamp earlier than the previous one.
    TimeWentBackwards {
        /// The previous command time in nanoseconds.
        previous_ns: f64,
        /// The offending command time in nanoseconds.
        attempted_ns: f64,
    },
    /// A bank reference did not exist in the module.
    NoSuchBank {
        /// Bank-group index.
        bank_group: usize,
        /// Bank index within the group.
        bank: usize,
    },
}

impl fmt::Display for DramSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramSimError::RowOutOfRange { row, rows_per_bank } => {
                write!(f, "row {row} out of range (bank has {rows_per_bank} rows)")
            }
            DramSimError::SegmentOutOfRange { segment, segments_per_bank } => {
                write!(f, "segment {segment} out of range (bank has {segments_per_bank} segments)")
            }
            DramSimError::NoOpenRow => write!(f, "column command issued with no open row"),
            DramSimError::TimeWentBackwards { previous_ns, attempted_ns } => write!(
                f,
                "command time {attempted_ns} ns is earlier than previous command at {previous_ns} ns"
            ),
            DramSimError::NoSuchBank { bank_group, bank } => {
                write!(f, "bank group {bank_group} bank {bank} does not exist")
            }
        }
    }
}

impl std::error::Error for DramSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DramSimError::RowOutOfRange { row: RowAddr::new(99), rows_per_bank: 64 };
        assert!(e.to_string().contains("R99"));
        let e = DramSimError::NoOpenRow;
        assert!(e.to_string().contains("no open row"));
        let e = DramSimError::TimeWentBackwards { previous_ns: 10.0, attempted_ns: 5.0 };
        assert!(e.to_string().contains("earlier"));
        let e = DramSimError::NoSuchBank { bank_group: 9, bank: 0 };
        assert!(e.to_string().contains("bank group 9"));
        let e = DramSimError::SegmentOutOfRange {
            segment: Segment::new(10_000),
            segments_per_bank: 8192,
        };
        assert!(e.to_string().contains("SEG10000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramSimError>();
    }
}
