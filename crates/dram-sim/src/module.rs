//! A whole DRAM module: a grid of banks sharing one process-variation
//! profile, an analog QUAC model, failure models, and operating conditions.

use crate::bank::{BankSim, CommandEffect};
use crate::error::DramSimError;
use qt_dram_analog::failures::{FailureModel, RetentionModel};
use qt_dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use qt_dram_core::{
    BitVec, ColumnAddr, DataPattern, DramGeometry, RowAddr, Segment, TimingParams,
    CACHE_BLOCK_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies one bank within the module (bank group × bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankRef {
    /// Bank-group index.
    pub bank_group: usize,
    /// Bank index within the group.
    pub bank: usize,
}

/// The result of a QUAC operation driven through the module interface.
#[derive(Debug, Clone, PartialEq)]
pub struct QuacOutcome {
    /// The segment the operation targeted.
    pub segment: Segment,
    /// The rows that ended up simultaneously open.
    pub opened_rows: Vec<RowAddr>,
    /// The sense-amplifier contents after the operation (one bit per
    /// bitline) — the raw entropy source of QUAC-TRNG.
    pub sense_amps: BitVec,
}

/// Behavioural simulator of one DRAM module (single rank).
#[derive(Debug)]
pub struct DramModuleSim {
    geom: DramGeometry,
    timing: TimingParams,
    analog: QuacAnalogModel,
    failures: FailureModel,
    retention: RetentionModel,
    banks: Vec<BankSim>,
    conditions: OperatingConditions,
    rng: StdRng,
    /// Per-bank local time cursor used by the convenience operations.
    cursors: Vec<f64>,
}

impl DramModuleSim {
    /// Creates a module simulator from an explicit variation profile.
    pub fn new(geom: DramGeometry, variation: ModuleVariation) -> Self {
        let timing = TimingParams::ddr4_2400();
        let bank_count = geom.banks_per_rank();
        let banks = (0..bank_count).map(|_| BankSim::new(geom, timing)).collect();
        DramModuleSim {
            geom,
            timing,
            analog: QuacAnalogModel::new(geom, variation.clone()),
            failures: FailureModel::new(variation.clone()),
            retention: RetentionModel::new(variation),
            banks,
            conditions: OperatingConditions::nominal(),
            rng: StdRng::seed_from_u64(0x514A_C0DE),
            cursors: vec![0.0; bank_count],
        }
    }

    /// Creates a module simulator with a freshly generated variation profile.
    pub fn with_seed(geom: DramGeometry, seed: u64) -> Self {
        Self::new(geom, ModuleVariation::generate(&geom, seed))
    }

    /// The module geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geom
    }

    /// The analog QUAC model backing this module.
    pub fn analog_model(&self) -> &QuacAnalogModel {
        &self.analog
    }

    /// The reduced-timing failure model backing this module.
    pub fn failure_model(&self) -> &FailureModel {
        &self.failures
    }

    /// The DDR4 timing parameters the module expects.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The current operating conditions.
    pub fn conditions(&self) -> OperatingConditions {
        self.conditions
    }

    /// Sets the operating conditions (temperature, age).
    pub fn set_conditions(&mut self, conditions: OperatingConditions) {
        self.conditions = conditions;
    }

    /// Re-seeds the thermal-noise RNG (useful for reproducible experiments).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Returns the reference of a bank.
    ///
    /// # Panics
    ///
    /// Panics if the indices are outside the geometry.
    pub fn bank_ref(&self, bank_group: usize, bank: usize) -> BankRef {
        assert!(bank_group < self.geom.bank_groups && bank < self.geom.banks_per_group);
        BankRef { bank_group, bank }
    }

    fn bank_index(&self, bank: BankRef) -> Result<usize, DramSimError> {
        if bank.bank_group >= self.geom.bank_groups || bank.bank >= self.geom.banks_per_group {
            return Err(DramSimError::NoSuchBank { bank_group: bank.bank_group, bank: bank.bank });
        }
        Ok(bank.bank_group * self.geom.banks_per_group + bank.bank)
    }

    /// Immutable access to a bank's state.
    pub fn bank(&self, bank: BankRef) -> Result<&BankSim, DramSimError> {
        let idx = self.bank_index(bank)?;
        Ok(&self.banks[idx])
    }

    // ------------------------------------------------------------------
    // Raw command interface (explicit timestamps)
    // ------------------------------------------------------------------

    /// Issues an `ACT` to a bank at an explicit time.
    pub fn activate_at(
        &mut self,
        bank: BankRef,
        row: RowAddr,
        at_ns: f64,
    ) -> Result<CommandEffect, DramSimError> {
        let idx = self.bank_index(bank)?;
        self.banks[idx].activate(row, at_ns, &self.analog, &self.failures, self.conditions, &mut self.rng)
    }

    /// Issues a `PRE` to a bank at an explicit time.
    pub fn precharge_at(&mut self, bank: BankRef, at_ns: f64) -> Result<CommandEffect, DramSimError> {
        let idx = self.bank_index(bank)?;
        self.banks[idx].precharge(at_ns)
    }

    /// Issues a `RD` of one cache block at an explicit time.
    pub fn read_at(
        &mut self,
        bank: BankRef,
        column: ColumnAddr,
        at_ns: f64,
    ) -> Result<(BitVec, CommandEffect), DramSimError> {
        let idx = self.bank_index(bank)?;
        self.banks[idx].read(column, at_ns, &self.failures, &mut self.rng)
    }

    /// Issues a `WR` of one cache block at an explicit time.
    pub fn write_at(
        &mut self,
        bank: BankRef,
        column: ColumnAddr,
        data: &BitVec,
        at_ns: f64,
    ) -> Result<CommandEffect, DramSimError> {
        let idx = self.bank_index(bank)?;
        self.banks[idx].write(column, data, at_ns)
    }

    // ------------------------------------------------------------------
    // Convenience operations with an internally managed timeline
    // ------------------------------------------------------------------

    fn cursor(&mut self, bank: BankRef) -> Result<(usize, f64), DramSimError> {
        let idx = self.bank_index(bank)?;
        Ok((idx, self.cursors[idx].max(self.banks[idx].now_ns())))
    }

    /// The bank-local time cursor used by the convenience operations: the
    /// later of the last issued command and the completion time of the last
    /// convenience operation. External drivers (e.g. the SoftMC host) should
    /// start their schedules at this time.
    pub fn bank_time(&self, bank: BankRef) -> Result<f64, DramSimError> {
        let idx = self.bank_index(bank)?;
        Ok(self.cursors[idx].max(self.banks[idx].now_ns()))
    }

    /// Advances a bank's time cursor to at least `to_ns` (used by external
    /// drivers after running their own schedules).
    pub fn advance_bank_time(&mut self, bank: BankRef, to_ns: f64) -> Result<(), DramSimError> {
        let idx = self.bank_index(bank)?;
        self.cursors[idx] = self.cursors[idx].max(to_ns);
        Ok(())
    }

    fn bump_cursor(&mut self, idx: usize, to: f64) {
        self.cursors[idx] = to;
    }

    /// Fills a whole row with the given data using nominal-timing commands.
    pub fn fill_row(&mut self, bank: BankRef, row: RowAddr, data: &BitVec) -> Result<(), DramSimError> {
        let (idx, mut t) = self.cursor(bank)?;
        self.banks[idx].activate(row, t, &self.analog, &self.failures, self.conditions, &mut self.rng)?;
        t += self.timing.t_rcd;
        for col in 0..self.geom.columns_per_row() {
            let start = col * CACHE_BLOCK_BITS;
            let block = data.slice(start, start + CACHE_BLOCK_BITS);
            self.banks[idx].write(ColumnAddr::new(col), &block, t)?;
            t += self.timing.t_ccd_l;
        }
        t += self.timing.t_wr;
        self.banks[idx].precharge(t.max(self.timing.t_ras))?;
        let done = t.max(self.timing.t_ras) + self.timing.t_rp;
        self.bump_cursor(idx, done);
        Ok(())
    }

    /// Initialises all four rows of a segment according to a data pattern
    /// (step 1 of the QUAC-TRNG iteration, Figure 6).
    pub fn fill_segment(
        &mut self,
        bank: BankRef,
        segment: Segment,
        pattern: DataPattern,
    ) -> Result<(), DramSimError> {
        self.check_segment(segment)?;
        for (i, row) in segment.rows().iter().enumerate() {
            let data = pattern.fill(i).to_row(self.geom.row_bits);
            self.fill_row(bank, *row, &data)?;
        }
        Ok(())
    }

    fn check_segment(&self, segment: Segment) -> Result<(), DramSimError> {
        if !segment.is_valid(&self.geom) {
            return Err(DramSimError::SegmentOutOfRange {
                segment,
                segments_per_bank: self.geom.segments_per_bank(),
            });
        }
        Ok(())
    }

    /// Performs one QUAC operation (ACT → PRE → ACT with violated tRAS and
    /// tRP, Algorithm 1) on a segment and returns the resulting
    /// sense-amplifier contents.
    pub fn quac(&mut self, bank: BankRef, segment: Segment) -> Result<QuacOutcome, DramSimError> {
        self.check_segment(segment)?;
        let (idx, t) = self.cursor(bank)?;
        let gap = TimingParams::quac_violated_gap_ns();
        let (first, last) = segment.quac_act_pair();

        self.banks[idx].activate(first, t, &self.analog, &self.failures, self.conditions, &mut self.rng)?;
        self.banks[idx].precharge(t + gap)?;
        let effect = self.banks[idx].activate(
            last,
            t + 2.0 * gap,
            &self.analog,
            &self.failures,
            self.conditions,
            &mut self.rng,
        )?;
        let opened = match effect {
            CommandEffect::QuacActivate { opened, .. } => opened,
            other => panic!("QUAC command sequence produced unexpected effect {other:?}"),
        };
        let sense_amps = self.banks[idx]
            .sense_amps()
            .expect("QUAC leaves sense amplifiers latched")
            .data
            .clone();
        self.bump_cursor(idx, t + 2.0 * gap + self.timing.t_rcd);
        Ok(QuacOutcome { segment, opened_rows: opened, sense_amps })
    }

    /// Reads back the full row buffer after an operation, obeying nominal
    /// column timings (step 3 of the QUAC-TRNG iteration).
    pub fn read_row_buffer(&mut self, bank: BankRef) -> Result<BitVec, DramSimError> {
        let (idx, mut t) = self.cursor(bank)?;
        let mut out = BitVec::zeros(0);
        for col in 0..self.geom.columns_per_row() {
            let (block, _) = self.banks[idx].read(ColumnAddr::new(col), t, &self.failures, &mut self.rng)?;
            out.extend_from(&block);
            t += self.timing.t_ccd_l;
        }
        self.bump_cursor(idx, t);
        Ok(out)
    }

    /// Closes the bank (nominal precharge) and advances its cursor past tRP.
    pub fn close_bank(&mut self, bank: BankRef) -> Result<(), DramSimError> {
        let (idx, t) = self.cursor(bank)?;
        let at = t.max(self.timing.t_ras);
        self.banks[idx].precharge(at)?;
        self.bump_cursor(idx, at + self.timing.t_rp);
        Ok(())
    }

    /// Reads a row's stored contents with nominal timing (activate, read all
    /// columns, precharge).
    pub fn read_row(&mut self, bank: BankRef, row: RowAddr) -> Result<BitVec, DramSimError> {
        let (idx, t) = self.cursor(bank)?;
        self.banks[idx].activate(row, t, &self.analog, &self.failures, self.conditions, &mut self.rng)?;
        self.bump_cursor(idx, t + self.timing.t_rcd);
        let data = self.read_row_buffer(bank)?;
        self.close_bank(bank)?;
        Ok(data)
    }

    /// Copies one row onto another using the in-DRAM copy command sequence
    /// (ACT → PRE → ACT with violated timings to a non-QUAC-pair row), as
    /// used by QUAC-TRNG to initialise segments quickly (Section 7.2).
    pub fn rowclone(
        &mut self,
        bank: BankRef,
        source: RowAddr,
        destination: RowAddr,
    ) -> Result<(), DramSimError> {
        let (idx, t) = self.cursor(bank)?;
        let gap = TimingParams::quac_violated_gap_ns();
        self.banks[idx].activate(source, t, &self.analog, &self.failures, self.conditions, &mut self.rng)?;
        self.banks[idx].precharge(t + gap)?;
        let effect = self.banks[idx].activate(
            destination,
            t + 2.0 * gap,
            &self.analog,
            &self.failures,
            self.conditions,
            &mut self.rng,
        )?;
        debug_assert!(
            matches!(effect, CommandEffect::RowCloneCopy { .. }),
            "row-clone sequence produced {effect:?}"
        );
        // Allow the destination row to restore, then precharge.
        let done = t + 2.0 * gap + self.timing.t_ras;
        self.banks[idx].precharge(done)?;
        self.bump_cursor(idx, done + self.timing.t_rp);
        Ok(())
    }

    /// Performs one full Algorithm-1 iteration: initialise the segment with a
    /// data pattern, QUAC it, and read back every sense amplifier.
    pub fn quac_randomness_iteration(
        &mut self,
        bank: BankRef,
        segment: Segment,
        pattern: DataPattern,
    ) -> Result<BitVec, DramSimError> {
        self.fill_segment(bank, segment, pattern)?;
        self.quac(bank, segment)?;
        let data = self.read_row_buffer(bank)?;
        self.close_bank(bank)?;
        Ok(data)
    }

    /// Pauses refresh for `pause_s` seconds on the given rows, letting
    /// retention failures accumulate (the D-PUF / Keller+ entropy source).
    /// Returns the total number of flipped cells.
    pub fn pause_refresh(
        &mut self,
        bank: BankRef,
        rows: &[RowAddr],
        pause_s: f64,
    ) -> Result<usize, DramSimError> {
        let idx = self.bank_index(bank)?;
        let mut flipped = 0usize;
        for &row in rows {
            let mut data = self.banks[idx].row_data(row);
            for b in 0..self.geom.row_bits {
                // Retention failures discharge cells: only stored ones decay.
                if data.get(b) {
                    let p = self.retention.failure_probability(row, b, pause_s, self.conditions.temperature_c);
                    if self.rng.gen::<f64>() < p {
                        data.set(b, false);
                        flipped += 1;
                    }
                }
            }
            self.banks[idx].set_row_data(row, data);
        }
        Ok(flipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DramModuleSim {
        DramModuleSim::with_seed(DramGeometry::tiny_test(), 99)
    }

    #[test]
    fn fill_and_read_round_trip() {
        let mut s = sim();
        let bank = s.bank_ref(0, 1);
        let row = RowAddr::new(9);
        let data = BitVec::from_bits((0..s.geometry().row_bits).map(|i| i % 5 == 0));
        s.fill_row(bank, row, &data).unwrap();
        let back = s.read_row(bank, row).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn quac_outcome_has_four_rows_and_row_width_data() {
        let mut s = sim();
        let bank = s.bank_ref(1, 0);
        let seg = Segment::new(4);
        s.fill_segment(bank, seg, DataPattern::best_average()).unwrap();
        let out = s.quac(bank, seg).unwrap();
        assert_eq!(out.opened_rows.len(), 4);
        assert_eq!(out.sense_amps.len(), s.geometry().row_bits);
        assert_eq!(out.segment, seg);
    }

    #[test]
    fn algorithm1_iteration_returns_row_buffer() {
        let mut s = sim();
        let bank = s.bank_ref(0, 0);
        let seg = Segment::new(7);
        let data = s.quac_randomness_iteration(bank, seg, DataPattern::best_average()).unwrap();
        assert_eq!(data.len(), s.geometry().row_bits);
        let ones = data.count_ones();
        assert!(ones > 0 && ones < data.len());
    }

    #[test]
    fn rowclone_copies_row_contents() {
        let mut s = sim();
        let bank = s.bank_ref(0, 0);
        let src = RowAddr::new(32);
        let dst = RowAddr::new(37); // different segment, same subarray
        let data = BitVec::from_bits((0..s.geometry().row_bits).map(|i| i % 3 == 1));
        s.fill_row(bank, src, &data).unwrap();
        s.rowclone(bank, src, dst).unwrap();
        assert_eq!(s.read_row(bank, dst).unwrap(), data);
        // Source keeps its data.
        assert_eq!(s.read_row(bank, src).unwrap(), data);
    }

    #[test]
    fn banks_are_independent() {
        let mut s = sim();
        let a = s.bank_ref(0, 0);
        let b = s.bank_ref(1, 1);
        let row = RowAddr::new(3);
        let ones = BitVec::ones(s.geometry().row_bits);
        s.fill_row(a, row, &ones).unwrap();
        // Bank B's same row is untouched.
        assert_eq!(s.read_row(b, row).unwrap().count_ones(), 0);
        assert_eq!(s.read_row(a, row).unwrap().count_ones(), s.geometry().row_bits);
    }

    #[test]
    fn refresh_pause_flips_only_charged_cells() {
        let mut s = sim();
        let bank = s.bank_ref(0, 0);
        let row = RowAddr::new(20);
        s.fill_row(bank, row, &BitVec::ones(s.geometry().row_bits)).unwrap();
        // A very long pause flips a noticeable number of cells; a zero pause
        // flips none.
        let none = s.pause_refresh(bank, &[RowAddr::new(21)], 0.0).unwrap();
        assert_eq!(none, 0);
        let flipped = s.pause_refresh(bank, &[row], 100_000.0).unwrap();
        assert!(flipped > 0);
        let back = s.read_row(bank, row).unwrap();
        assert_eq!(back.count_zeros(), flipped);
    }

    #[test]
    fn invalid_bank_and_segment_are_rejected() {
        let mut s = sim();
        let bad_bank = BankRef { bank_group: 9, bank: 0 };
        assert!(matches!(
            s.quac(bad_bank, Segment::new(0)),
            Err(DramSimError::NoSuchBank { .. })
        ));
        let bank = s.bank_ref(0, 0);
        assert!(matches!(
            s.quac(bank, Segment::new(1 << 20)),
            Err(DramSimError::SegmentOutOfRange { .. })
        ));
    }

    #[test]
    fn conditions_can_be_changed() {
        let mut s = sim();
        assert_eq!(s.conditions().temperature_c, 50.0);
        s.set_conditions(OperatingConditions::at_temperature(85.0));
        assert_eq!(s.conditions().temperature_c, 85.0);
    }
}
