//! The hypothetical hierarchical-wordline row decoder of Section 4.2.
//!
//! The decoder latches the one-hot encodings of the two least-significant row
//! address bits (`A0/A0b`, `A1/A1b`). A precharge that respects tRAS resets
//! the latches; a precharge issued too early (violated tRAS) leaves them set,
//! so a subsequent activation with the *inverted* low bits ends up asserting
//! all four local-wordline select lines S0–S3 — the mechanism behind QUAC.

use qt_dram_core::RowAddr;
use serde::{Deserialize, Serialize};

/// Which of the four local wordlines of a segment are asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LwlSelect {
    asserted: [bool; 4],
}

impl LwlSelect {
    /// Returns the asserted local wordline indices (0–3).
    pub fn asserted(&self) -> Vec<usize> {
        (0..4).filter(|&i| self.asserted[i]).collect()
    }

    /// Number of asserted local wordlines.
    pub fn count(&self) -> usize {
        self.asserted.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if local wordline `i` is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn is_asserted(&self, i: usize) -> bool {
        self.asserted[i]
    }
}

/// Latch state of the low-order row-address decoder (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RowDecoder {
    /// Latch for `Addr[0] == 1`.
    a0: bool,
    /// Latch for `Addr[0] == 0`.
    a0b: bool,
    /// Latch for `Addr[1] == 1`.
    a1: bool,
    /// Latch for `Addr[1] == 0`.
    a1b: bool,
}

impl RowDecoder {
    /// A decoder with all latches reset (the state after a proper precharge).
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the low two bits of an activated row address. Latches are
    /// *set-only*: they accumulate until a proper precharge resets them.
    pub fn activate(&mut self, row: RowAddr) {
        let low = row.lwl_select();
        if low & 0b01 == 0 {
            self.a0b = true;
        } else {
            self.a0 = true;
        }
        if low & 0b10 == 0 {
            self.a1b = true;
        } else {
            self.a1 = true;
        }
    }

    /// A precharge that respects tRAS resets all latches; a violated
    /// precharge leaves them untouched (Section 4.2).
    pub fn precharge(&mut self, t_ras_respected: bool) {
        if t_ras_respected {
            *self = Self::default();
        }
    }

    /// The local-wordline select lines implied by the current latch state:
    /// `S_i` is asserted when both of its address-bit product terms are set
    /// (S0 = A0b·A1b, S1 = A0·A1b, S2 = A0b·A1, S3 = A0·A1).
    pub fn lwl_select(&self) -> LwlSelect {
        LwlSelect {
            asserted: [
                self.a0b && self.a1b,
                self.a0 && self.a1b,
                self.a0b && self.a1,
                self.a0 && self.a1,
            ],
        }
    }

    /// Returns `true` if any latch is set (at least one wordline driver is
    /// enabled).
    pub fn any_latched(&self) -> bool {
        self.a0 || self.a0b || self.a1 || self.a1b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_activation_asserts_one_lwl() {
        for low in 0..4usize {
            let mut d = RowDecoder::new();
            d.activate(RowAddr::new(low));
            let s = d.lwl_select();
            assert_eq!(s.count(), 1, "low bits {low}");
            assert!(s.is_asserted(low));
        }
    }

    #[test]
    fn proper_precharge_resets_latches() {
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(0));
        assert!(d.any_latched());
        d.precharge(true);
        assert!(!d.any_latched());
        assert_eq!(d.lwl_select().count(), 0);
    }

    #[test]
    fn violated_precharge_keeps_latches() {
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(0));
        d.precharge(false);
        assert!(d.any_latched());
        assert_eq!(d.lwl_select().count(), 1);
    }

    #[test]
    fn act0_violatedpre_act3_asserts_all_four_lwls() {
        // The QUAC sequence from Figure 4: ACT R0, (violated) PRE, ACT R3.
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(0));
        d.precharge(false);
        d.activate(RowAddr::new(3));
        let s = d.lwl_select();
        assert_eq!(s.count(), 4);
        assert_eq!(s.asserted(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn act1_violatedpre_act2_also_asserts_all_four() {
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(1));
        d.precharge(false);
        d.activate(RowAddr::new(2));
        assert_eq!(d.lwl_select().count(), 4);
    }

    #[test]
    fn non_inverted_pair_asserts_only_two_lwls() {
        // Rows 0 (00) and 1 (01) share Addr[1]=0, so only S0 and S1 assert.
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(0));
        d.precharge(false);
        d.activate(RowAddr::new(1));
        let s = d.lwl_select();
        assert_eq!(s.count(), 2);
        assert!(s.is_asserted(0) && s.is_asserted(1));
        assert!(!s.is_asserted(2) && !s.is_asserted(3));
    }

    #[test]
    fn row_addresses_above_three_use_low_bits() {
        let mut d = RowDecoder::new();
        d.activate(RowAddr::new(44)); // low bits 00
        d.precharge(false);
        d.activate(RowAddr::new(47)); // low bits 11
        assert_eq!(d.lwl_select().count(), 4);
    }
}
