//! Behavioural model of one DRAM bank.
//!
//! The bank tracks open rows, sense-amplifier contents, the hierarchical
//! wordline decoder latches, and the timestamps of the most recent commands.
//! The *gap* between commands decides whether an operation behaves nominally
//! or triggers one of the reduced-timing phenomena (QUAC, RowClone copy,
//! tRP-disturbed activation, tRCD-corrupted read).

use crate::decoder::RowDecoder;
use crate::error::DramSimError;
use qt_dram_analog::failures::FailureModel;
use qt_dram_analog::{OperatingConditions, QuacAnalogModel};
use qt_dram_core::{
    BitVec, ColumnAddr, DataPattern, DramGeometry, RowAddr, Segment, TimingParams,
    CACHE_BLOCK_BITS, ROWS_PER_SEGMENT,
};
use rand::Rng;
use std::collections::HashMap;

/// Contents of the bank's sense amplifiers (one full row buffer).
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmpState {
    /// The latched data, one bit per bitline.
    pub data: BitVec,
    /// The row whose activation produced this data, if it was a single-row
    /// activation.
    pub source_row: Option<RowAddr>,
}

/// What a command did when it was applied to the bank.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandEffect {
    /// A nominal activation latched one row into the sense amplifiers.
    NormalActivate {
        /// The activated row.
        row: RowAddr,
    },
    /// A QUAC sequence opened all four rows of a segment and the sense
    /// amplifiers resolved (partly) non-deterministically.
    QuacActivate {
        /// The affected segment.
        segment: Segment,
        /// The rows that ended up open.
        opened: Vec<RowAddr>,
    },
    /// An interrupted-precharge activation copied the previously open row
    /// into the newly activated row (in-DRAM copy, ComputeDRAM/RowClone).
    RowCloneCopy {
        /// The source row (previously open).
        source: RowAddr,
        /// The destination row (newly activated).
        destination: RowAddr,
    },
    /// An activation on not-fully-precharged bitlines flipped some cells
    /// (the Talukder+ entropy source).
    TrpDisturbedActivate {
        /// The activated row.
        row: RowAddr,
        /// How many cells flipped.
        flipped_bits: usize,
    },
    /// A precharge that respected tRAS closed the bank.
    PrechargeComplete,
    /// A precharge issued before tRAS elapsed: the row stays open and the
    /// decoder latches are not reset.
    PrechargeInterrupted,
    /// A read that respected tRCD returned sense-amplifier data unchanged.
    ReadNominal {
        /// The column that was read.
        column: ColumnAddr,
    },
    /// A read issued before tRCD elapsed returned partially random data
    /// (the D-RaNGe entropy source).
    ReadTrcdViolated {
        /// The column that was read.
        column: ColumnAddr,
        /// How many bits of the returned cache block were corrupted.
        corrupted_bits: usize,
    },
    /// A write updated the sense amplifiers and every open row.
    Write {
        /// The column that was written.
        column: ColumnAddr,
    },
}

/// Behavioural state of one DRAM bank.
#[derive(Debug, Clone)]
pub struct BankSim {
    geom: DramGeometry,
    timing: TimingParams,
    rows: HashMap<usize, BitVec>,
    decoder: RowDecoder,
    open_rows: Vec<RowAddr>,
    sense_amps: Option<SenseAmpState>,
    last_act: Option<(RowAddr, f64)>,
    last_pre: Option<(f64, bool)>,
    now: f64,
}

impl BankSim {
    /// Creates an idle, precharged bank whose cells all store zero.
    pub fn new(geom: DramGeometry, timing: TimingParams) -> Self {
        BankSim {
            geom,
            timing,
            rows: HashMap::new(),
            decoder: RowDecoder::new(),
            open_rows: Vec::new(),
            sense_amps: None,
            last_act: None,
            last_pre: None,
            now: 0.0,
        }
    }

    /// The rows currently open (0, 1, or 4 under QUAC).
    pub fn open_rows(&self) -> &[RowAddr] {
        &self.open_rows
    }

    /// The current sense-amplifier contents, if a row is open.
    pub fn sense_amps(&self) -> Option<&SenseAmpState> {
        self.sense_amps.as_ref()
    }

    /// The bank-local simulated time of the last command, in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now
    }

    /// The timing parameters this bank obeys (or has violated against it).
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Returns a copy of the stored data of a row (all zeros if never
    /// written).
    pub fn row_data(&self, row: RowAddr) -> BitVec {
        self.rows
            .get(&row.index())
            .cloned()
            .unwrap_or_else(|| BitVec::zeros(self.geom.row_bits))
    }

    /// Directly sets a row's stored data (used for test setup and for
    /// initialisation paths that bypass the command interface).
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the row width.
    pub fn set_row_data(&mut self, row: RowAddr, data: BitVec) {
        assert_eq!(data.len(), self.geom.row_bits, "row data must match row width");
        self.rows.insert(row.index(), data);
    }

    fn check_row(&self, row: RowAddr) -> Result<(), DramSimError> {
        if row.index() >= self.geom.rows_per_bank() {
            return Err(DramSimError::RowOutOfRange { row, rows_per_bank: self.geom.rows_per_bank() });
        }
        Ok(())
    }

    fn advance(&mut self, at_ns: f64) -> Result<(), DramSimError> {
        if at_ns < self.now {
            return Err(DramSimError::TimeWentBackwards { previous_ns: self.now, attempted_ns: at_ns });
        }
        self.now = at_ns;
        Ok(())
    }

    /// Applies an `ACT` command at the given time.
    ///
    /// The outcome depends on the history: a normal activation latches the
    /// row; an activation that follows an interrupted precharge within the
    /// tRP window triggers QUAC (if the two activations form a QUAC pair) or
    /// an in-DRAM copy; an activation that merely violates tRP disturbs the
    /// newly activated row.
    pub fn activate<R: Rng + ?Sized>(
        &mut self,
        row: RowAddr,
        at_ns: f64,
        analog: &QuacAnalogModel,
        failures: &FailureModel,
        conditions: OperatingConditions,
        rng: &mut R,
    ) -> Result<CommandEffect, DramSimError> {
        self.check_row(row)?;
        self.advance(at_ns)?;

        let trp_violated = match self.last_pre {
            // A small tolerance absorbs floating-point error in nominal
            // schedules that re-activate exactly at tRP.
            Some((pre_time, _)) => self.timing.violates_t_rp(at_ns - pre_time + 1e-6),
            None => false,
        };
        let pre_interrupted = matches!(self.last_pre, Some((_, false)));
        let prev_row = self.last_act.map(|(r, _)| r);

        // If the precharge had time to complete (tRP respected), the decoder
        // latches were eventually reset regardless of the tRAS interruption.
        if !trp_violated {
            self.decoder.precharge(true);
            self.open_rows.clear();
        }

        self.decoder.activate(row);
        let effect = if trp_violated && pre_interrupted {
            let lwl = self.decoder.lwl_select();
            let prev = prev_row.expect("interrupted precharge implies a prior activation");
            if lwl.count() == ROWS_PER_SEGMENT && Segment::containing(prev) == Segment::containing(row)
            {
                self.apply_quac(Segment::containing(row), analog, conditions, rng)
            } else {
                self.apply_rowclone(prev, row)
            }
        } else if trp_violated {
            let pre_time = self.last_pre.map(|(t, _)| t).unwrap_or(at_ns);
            let fraction = ((at_ns - pre_time) / self.timing.t_rp).clamp(0.0, 1.0);
            self.apply_trp_disturbed(row, fraction, failures, rng)
        } else {
            self.apply_normal_activate(row)
        };

        self.last_act = Some((row, at_ns));
        self.last_pre = None;
        Ok(effect)
    }

    fn apply_normal_activate(&mut self, row: RowAddr) -> CommandEffect {
        let data = self.row_data(row);
        self.sense_amps = Some(SenseAmpState { data, source_row: Some(row) });
        self.open_rows = vec![row];
        CommandEffect::NormalActivate { row }
    }

    fn apply_quac<R: Rng + ?Sized>(
        &mut self,
        segment: Segment,
        analog: &QuacAnalogModel,
        conditions: OperatingConditions,
        rng: &mut R,
    ) -> CommandEffect {
        let rows = segment.rows();
        let stored: Vec<BitVec> = rows.iter().map(|&r| self.row_data(r)).collect();
        let mut result = BitVec::zeros(self.geom.row_bits);
        for b in 0..self.geom.row_bits {
            // The per-bitline "pattern" is the actual data stored in the four
            // cells on this bitline.
            let fills = [
                fill_of(stored[0].get(b)),
                fill_of(stored[1].get(b)),
                fill_of(stored[2].get(b)),
                fill_of(stored[3].get(b)),
            ];
            let pattern = DataPattern::new(fills);
            let p = analog.one_probability(segment, b, pattern, conditions);
            result.set(b, rng.gen::<f64>() < p);
        }
        // The sense amplifiers drive the bitlines, restoring the (random)
        // resolved value into all four open rows.
        for &r in &rows {
            self.rows.insert(r.index(), result.clone());
        }
        self.sense_amps = Some(SenseAmpState { data: result, source_row: None });
        self.open_rows = rows.to_vec();
        CommandEffect::QuacActivate { segment, opened: rows.to_vec() }
    }

    fn apply_rowclone(&mut self, source: RowAddr, destination: RowAddr) -> CommandEffect {
        // The sense amplifiers still hold the source row's data; activating
        // the destination row before the precharge completes makes the
        // amplifiers restore that data into the destination row.
        let data = match &self.sense_amps {
            Some(sa) => sa.data.clone(),
            None => self.row_data(source),
        };
        self.rows.insert(destination.index(), data.clone());
        self.sense_amps = Some(SenseAmpState { data, source_row: Some(destination) });
        self.open_rows = vec![destination];
        CommandEffect::RowCloneCopy { source, destination }
    }

    fn apply_trp_disturbed<R: Rng + ?Sized>(
        &mut self,
        row: RowAddr,
        trp_fraction: f64,
        failures: &FailureModel,
        rng: &mut R,
    ) -> CommandEffect {
        let mut data = self.row_data(row);
        let mut flipped = 0usize;
        for b in 0..self.geom.row_bits {
            let p = failures.trp_flip_probability(row, b, trp_fraction);
            if p > 0.0 && rng.gen::<f64>() < p {
                data.set(b, !data.get(b));
                flipped += 1;
            }
        }
        self.rows.insert(row.index(), data.clone());
        self.sense_amps = Some(SenseAmpState { data, source_row: Some(row) });
        self.open_rows = vec![row];
        CommandEffect::TrpDisturbedActivate { row, flipped_bits: flipped }
    }

    /// Applies a `PRE` command at the given time. A precharge issued before
    /// tRAS has elapsed since the last activation interrupts charge
    /// restoration and fails to reset the decoder latches.
    pub fn precharge(&mut self, at_ns: f64) -> Result<CommandEffect, DramSimError> {
        self.advance(at_ns)?;
        let t_ras_respected = match self.last_act {
            Some((_, act_time)) => !self.timing.violates_t_ras(at_ns - act_time + 1e-6),
            None => true,
        };
        self.decoder.precharge(t_ras_respected);
        self.last_pre = Some((at_ns, t_ras_respected));
        if t_ras_respected {
            self.open_rows.clear();
            self.sense_amps = None;
            Ok(CommandEffect::PrechargeComplete)
        } else {
            Ok(CommandEffect::PrechargeInterrupted)
        }
    }

    /// Applies a `RD` command for one cache block at the given time.
    /// Reads issued before tRCD has elapsed since the activation return
    /// partially random data (without modifying the stored row).
    pub fn read<R: Rng + ?Sized>(
        &mut self,
        column: ColumnAddr,
        at_ns: f64,
        failures: &FailureModel,
        rng: &mut R,
    ) -> Result<(BitVec, CommandEffect), DramSimError> {
        self.advance(at_ns)?;
        let sa = self.sense_amps.as_ref().ok_or(DramSimError::NoOpenRow)?;
        let (row, act_time) = self.last_act.ok_or(DramSimError::NoOpenRow)?;
        let start = column.index() * CACHE_BLOCK_BITS;
        let block = sa.data.slice(start, (start + CACHE_BLOCK_BITS).min(sa.data.len()));

        let gap = at_ns - act_time;
        // A small tolerance absorbs floating-point error in schedules that
        // issue the read exactly at tRCD.
        if !self.timing.violates_t_rcd(gap + 1e-6) {
            return Ok((block, CommandEffect::ReadNominal { column }));
        }
        // tRCD violated: some cells in the block resolve randomly.
        let fraction = (gap / self.timing.t_rcd).clamp(0.0, 1.0);
        let mut corrupted = 0usize;
        let mut out = block.clone();
        for i in 0..out.len() {
            let bitline = start + i;
            let p_random = failures.trcd_read_one_probability(row, bitline, fraction);
            // Symmetric treatment: the failure probability describes how far
            // the cell is from a reliable read; a metastable cell returns a
            // coin flip.
            let entropy_like = 4.0 * p_random * (1.0 - p_random);
            if rng.gen::<f64>() < entropy_like {
                let new_bit = rng.gen::<bool>();
                if new_bit != out.get(i) {
                    corrupted += 1;
                }
                out.set(i, new_bit);
            }
        }
        Ok((out, CommandEffect::ReadTrcdViolated { column, corrupted_bits: corrupted }))
    }

    /// Applies a `WR` command for one cache block: the data is latched into
    /// the sense amplifiers and therefore written into *every* open row —
    /// the effect the paper uses to verify that QUAC really opens four rows
    /// (Section 4.2).
    pub fn write(
        &mut self,
        column: ColumnAddr,
        data: &BitVec,
        at_ns: f64,
    ) -> Result<CommandEffect, DramSimError> {
        self.advance(at_ns)?;
        let start = column.index() * CACHE_BLOCK_BITS;
        let sa = self.sense_amps.as_mut().ok_or(DramSimError::NoOpenRow)?;
        sa.data.copy_bits_from(start, data);
        let sa_data = sa.data.clone();
        for &row in &self.open_rows {
            let mut row_data = self
                .rows
                .get(&row.index())
                .cloned()
                .unwrap_or_else(|| BitVec::zeros(self.geom.row_bits));
            row_data.copy_bits_from(start, data);
            self.rows.insert(row.index(), row_data);
        }
        // Keep the sense amps authoritative.
        self.sense_amps = Some(SenseAmpState { data: sa_data, source_row: None });
        Ok(CommandEffect::Write { column })
    }
}

fn fill_of(bit: bool) -> qt_dram_core::RowFill {
    if bit {
        qt_dram_core::RowFill::Ones
    } else {
        qt_dram_core::RowFill::Zeros
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::ModuleVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        bank: BankSim,
        analog: QuacAnalogModel,
        failures: FailureModel,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let geom = DramGeometry::tiny_test();
        let variation = ModuleVariation::generate(&geom, 42);
        Fixture {
            bank: BankSim::new(geom, TimingParams::ddr4_2400()),
            analog: QuacAnalogModel::new(geom, variation.clone()),
            failures: FailureModel::new(variation),
            rng: StdRng::seed_from_u64(7),
        }
    }

    fn cond() -> OperatingConditions {
        OperatingConditions::nominal()
    }

    #[test]
    fn normal_activate_read_write_cycle() {
        let mut f = fixture();
        let row = RowAddr::new(8);
        let mut data = BitVec::zeros(f.bank.geom.row_bits);
        data.set(5, true);
        f.bank.set_row_data(row, data);

        let effect = f
            .bank
            .activate(row, 0.0, &f.analog, &f.failures, cond(), &mut f.rng)
            .unwrap();
        assert_eq!(effect, CommandEffect::NormalActivate { row });
        assert_eq!(f.bank.open_rows(), &[row]);

        // Read after tRCD: nominal, bit 5 of column 0 is set.
        let (block, effect) = f
            .bank
            .read(ColumnAddr::new(0), 20.0, &f.failures, &mut f.rng)
            .unwrap();
        assert_eq!(effect, CommandEffect::ReadNominal { column: ColumnAddr::new(0) });
        assert!(block.get(5));

        // Write a block and see it land in the open row.
        let new_block = BitVec::ones(CACHE_BLOCK_BITS);
        f.bank.write(ColumnAddr::new(1), &new_block, 30.0).unwrap();
        let stored = f.bank.row_data(row);
        assert_eq!(stored.slice(512, 1024).count_ones(), CACHE_BLOCK_BITS);

        // Proper precharge closes the bank.
        let effect = f.bank.precharge(80.0).unwrap();
        assert_eq!(effect, CommandEffect::PrechargeComplete);
        assert!(f.bank.open_rows().is_empty());
    }

    #[test]
    fn quac_sequence_opens_all_four_rows_and_randomises_sense_amps() {
        let mut f = fixture();
        let segment = Segment::new(3);
        // Conflicting data: row 0 zeros, rows 1-3 ones ("0111").
        for (i, row) in segment.rows().iter().enumerate() {
            let fill = i != 0;
            f.bank.set_row_data(*row, BitVec::filled(f.bank.geom.row_bits, fill));
        }
        let (r_first, r_last) = segment.quac_act_pair();
        let gap = TimingParams::quac_violated_gap_ns();

        f.bank.activate(r_first, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        let e = f.bank.precharge(gap).unwrap();
        assert_eq!(e, CommandEffect::PrechargeInterrupted);
        let e = f
            .bank
            .activate(r_last, 2.0 * gap, &f.analog, &f.failures, cond(), &mut f.rng)
            .unwrap();
        match e {
            CommandEffect::QuacActivate { segment: s, opened } => {
                assert_eq!(s, segment);
                assert_eq!(opened.len(), 4);
            }
            other => panic!("expected QUAC, got {other:?}"),
        }
        assert_eq!(f.bank.open_rows().len(), 4);

        // The sense amplifiers hold neither all-zeros nor all-ones: the
        // conflicting pattern produced a mixed (partly random) outcome.
        let sa = f.bank.sense_amps().unwrap();
        let ones = sa.data.count_ones();
        assert!(ones > 0 && ones < sa.data.len(), "ones = {ones}");

        // All four rows were overwritten with the sense-amp value.
        for row in segment.rows() {
            assert_eq!(f.bank.row_data(row), sa.data);
        }
    }

    #[test]
    fn quac_repeats_give_different_outcomes() {
        let mut f = fixture();
        let segment = Segment::new(5);
        let gap = TimingParams::quac_violated_gap_ns();
        let mut outcomes = Vec::new();
        let mut t = 0.0;
        for _ in 0..2 {
            for (i, row) in segment.rows().iter().enumerate() {
                let fill = i != 0;
                f.bank.set_row_data(*row, BitVec::filled(f.bank.geom.row_bits, fill));
            }
            let (r_first, r_last) = segment.quac_act_pair();
            f.bank.activate(r_first, t, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
            f.bank.precharge(t + gap).unwrap();
            f.bank.activate(r_last, t + 2.0 * gap, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
            outcomes.push(f.bank.sense_amps().unwrap().data.clone());
            f.bank.precharge(t + 100.0).unwrap();
            t += 200.0;
        }
        assert_ne!(outcomes[0], outcomes[1], "two QUAC operations should differ");
    }

    #[test]
    fn write_while_quac_open_updates_all_four_rows() {
        // The verification experiment of Section 4.2.
        let mut f = fixture();
        let segment = Segment::new(1);
        for (i, row) in segment.rows().iter().enumerate() {
            f.bank.set_row_data(*row, BitVec::filled(f.bank.geom.row_bits, i == 0));
        }
        let (r_first, r_last) = segment.quac_act_pair();
        let gap = TimingParams::quac_violated_gap_ns();
        f.bank.activate(r_first, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        f.bank.precharge(gap).unwrap();
        f.bank.activate(r_last, 2.0 * gap, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();

        let marker = BitVec::from_bits((0..CACHE_BLOCK_BITS).map(|i| i % 3 == 0));
        f.bank.write(ColumnAddr::new(2), &marker, 30.0).unwrap();
        for row in segment.rows() {
            let stored = f.bank.row_data(row);
            assert_eq!(stored.slice(1024, 1536), marker, "row {row} not updated");
        }
    }

    #[test]
    fn interrupted_precharge_then_non_pair_row_copies_data() {
        let mut f = fixture();
        let src = RowAddr::new(16); // segment 4, low bits 00
        let dst = RowAddr::new(21); // segment 5, low bits 01 — same subarray
        let mut data = BitVec::zeros(f.bank.geom.row_bits);
        for i in (0..data.len()).step_by(7) {
            data.set(i, true);
        }
        f.bank.set_row_data(src, data.clone());

        let gap = TimingParams::quac_violated_gap_ns();
        f.bank.activate(src, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        f.bank.precharge(gap).unwrap();
        let e = f.bank.activate(dst, 2.0 * gap, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        assert_eq!(e, CommandEffect::RowCloneCopy { source: src, destination: dst });
        assert_eq!(f.bank.row_data(dst), data);
    }

    #[test]
    fn trp_violation_after_proper_precharge_disturbs_cells() {
        let mut f = fixture();
        let row = RowAddr::new(40);
        f.bank.set_row_data(row, BitVec::ones(f.bank.geom.row_bits));
        // Nominal activate, wait out tRAS, precharge properly, then reactivate
        // far too early (tRP violated).
        f.bank.activate(row, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        f.bank.precharge(40.0).unwrap();
        let e = f.bank.activate(row, 41.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        match e {
            CommandEffect::TrpDisturbedActivate { row: r, .. } => assert_eq!(r, row),
            other => panic!("expected tRP disturbance, got {other:?}"),
        }
    }

    #[test]
    fn trcd_violated_read_corrupts_some_bits_without_touching_the_array() {
        let mut f = fixture();
        let row = RowAddr::new(12);
        f.bank.set_row_data(row, BitVec::zeros(f.bank.geom.row_bits));
        f.bank.activate(row, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        // Read immediately (tRCD violated).
        let (_block, effect) = f.bank.read(ColumnAddr::new(0), 3.0, &f.failures, &mut f.rng).unwrap();
        assert!(matches!(effect, CommandEffect::ReadTrcdViolated { .. }));
        // The stored row is unchanged.
        assert_eq!(f.bank.row_data(row).count_ones(), 0);
    }

    #[test]
    fn errors_for_bad_usage() {
        let mut f = fixture();
        assert!(matches!(
            f.bank.read(ColumnAddr::new(0), 0.0, &f.failures, &mut f.rng),
            Err(DramSimError::NoOpenRow)
        ));
        assert!(matches!(
            f.bank.activate(RowAddr::new(1 << 20), 0.0, &f.analog, &f.failures, cond(), &mut f.rng),
            Err(DramSimError::RowOutOfRange { .. })
        ));
        f.bank.activate(RowAddr::new(0), 10.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        assert!(matches!(
            f.bank.precharge(5.0),
            Err(DramSimError::TimeWentBackwards { .. })
        ));
    }

    #[test]
    fn waiting_out_trp_after_interrupted_precharge_avoids_quac() {
        let mut f = fixture();
        let segment = Segment::new(2);
        let (r_first, r_last) = segment.quac_act_pair();
        let gap = TimingParams::quac_violated_gap_ns();
        f.bank.activate(r_first, 0.0, &f.analog, &f.failures, cond(), &mut f.rng).unwrap();
        f.bank.precharge(gap).unwrap();
        // Wait long enough for the precharge to complete before reactivating.
        let e = f
            .bank
            .activate(r_last, gap + 50.0, &f.analog, &f.failures, cond(), &mut f.rng)
            .unwrap();
        assert_eq!(e, CommandEffect::NormalActivate { row: r_last });
        assert_eq!(f.bank.open_rows().len(), 1);
    }
}
