//! # qt-dram-sim
//!
//! A behavioural DDR4 chip/module simulator with *timing-violation
//! semantics*: issuing standard DDR4 commands with reduced timings triggers
//! the same phenomena the paper observes on real SK Hynix chips —
//! quadruple row activation (QUAC, Section 4), RowClone-style in-DRAM copy
//! (ComputeDRAM), reduced-tRCD read failures (D-RaNGe), reduced-tRP
//! activation failures (Talukder+), and retention failures.
//!
//! The simulator is *functional*, not cycle-accurate: commands carry explicit
//! nanosecond timestamps (as they would on the DDR4 command bus), and each
//! bank reacts according to the gap between commands. Cycle-level scheduling
//! and bandwidth accounting live in `qt-memctrl`.
//!
//! ## Example: a QUAC operation opens four rows
//!
//! ```
//! use qt_dram_sim::DramModuleSim;
//! use qt_dram_core::{DramGeometry, Segment, DataPattern, TimingParams};
//!
//! let mut sim = DramModuleSim::with_seed(DramGeometry::tiny_test(), 11);
//! let bank = sim.bank_ref(0, 0);
//! let segment = Segment::new(2);
//!
//! // Initialise the segment with the paper's best pattern and QUAC it.
//! sim.fill_segment(bank, segment, DataPattern::best_average()).unwrap();
//! let outcome = sim.quac(bank, segment).unwrap();
//! assert_eq!(outcome.opened_rows.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod decoder;
pub mod error;
pub mod module;

pub use bank::{BankSim, CommandEffect, SenseAmpState};
pub use decoder::{LwlSelect, RowDecoder};
pub use error::DramSimError;
pub use module::{BankRef, DramModuleSim, QuacOutcome};
