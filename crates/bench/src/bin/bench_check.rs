//! Perf-regression gate over `BENCH_RESULTS.json`.
//!
//! ```text
//! bench_check <fresh.json> <committed-baseline.json>
//! ```
//!
//! Compares every benchmark present in both reports and exits non-zero if
//! any named hot path regressed by more than the threshold (default 25%,
//! override with `BENCH_REGRESSION_THRESHOLD`, e.g. `0.25`).
//!
//! The two reports are usually measured on *different machines* (a dev box
//! committed the baseline, CI measured the fresh run), so raw ns ratios
//! would flag a uniformly slower runner as a regression of everything.
//! Ratios are therefore normalised by their median: a real regression is a
//! hot path that got slower *relative to the rest of the suite*, which is
//! machine-independent to first order. A wide absolute raw-ratio bound
//! (default 4×, `BENCH_ABS_RATIO_BOUND`) backstops the median against
//! suite-majority regressions it would otherwise absorb.

use criterion::{json_number, json_string};
use std::process::ExitCode;

/// One `(name, ns_per_iter)` pair per entry of a report, parsed with the
/// writer's own helpers (vendored criterion).
///
/// `include_carried` controls whether entries tagged `"carried":true` — the
/// JSON merge's copied-forward-not-measured marker — count. The *fresh*
/// report must exclude them: a deleted benchmark would otherwise reappear
/// with ratio exactly 1.0, dodging the MISSING check and skewing the median
/// normalisation. The *baseline* must include them: a carried entry there
/// still holds a real historical measurement, and dropping it would
/// silently remove that hot path from the gate after a filtered run is
/// committed.
fn parse_results(text: &str, include_carried: bool) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = json_string(line, "name") else {
            continue;
        };
        let Some(ns) = json_number(line, "ns_per_iter") else {
            continue;
        };
        if ns > 0.0 && (include_carried || !line.contains("\"carried\":true")) {
            out.push((name, ns));
        }
    }
    out
}

/// How far a *raw* fresh/baseline ratio may drift before it fails even when
/// the median normalisation would absorb it. The median cancels uniform
/// machine-speed differences (runners rarely differ by more than ~3×), but
/// it is blind to a regression that hits the majority of the suite — e.g. a
/// slowed shared primitive shifts the median itself. The absolute bound
/// closes that blind spot; override with `BENCH_ABS_RATIO_BOUND`.
const DEFAULT_ABS_RATIO_BOUND: f64 = 4.0;

/// The benchmark the absolute-throughput floor gates: sustained steady-state
/// generation, the headline number of the reproduction.
const GBPS_GATED_BENCH: &str = "generate_bytes_64KiB";

/// Fraction of the committed baseline's Gb/s the fresh run must reach. The
/// floor is *relative to the committed baseline* so it ratchets forward when
/// a faster baseline is committed, yet tolerates slower CI runners; override
/// the whole floor with an absolute `BENCH_GBPS_FLOOR` (e.g. `0.8`).
const DEFAULT_GBPS_FLOOR_FRACTION: f64 = 0.75;

/// Extracts the `gbps` field of the named benchmark from a raw report.
fn gbps_of(text: &str, bench: &str) -> Option<f64> {
    text.lines()
        .find(|line| json_string(line, "name").as_deref() == Some(bench))
        .and_then(|line| json_number(line, "gbps"))
}

/// The generation-throughput floor: fails when the fresh run's sustained
/// Gb/s drops below `floor_override`, or — absent an override — below
/// `fraction` of the committed baseline's Gb/s. Unlike the median-normalised
/// ratios this is an *absolute* bound: a stream generator that silently
/// halves its throughput is broken even if the whole suite slowed in
/// lockstep. Returns `Some((fresh_gbps, floor, failed?))` when a verdict is
/// possible. Pure so the rule is unit-testable.
fn gbps_floor_verdict(
    fresh_gbps: Option<f64>,
    baseline_gbps: Option<f64>,
    fraction: f64,
    floor_override: Option<f64>,
) -> Option<(f64, f64, bool)> {
    let fresh = fresh_gbps?;
    let floor = floor_override.or_else(|| Some(baseline_gbps? * fraction))?;
    Some((fresh, floor, fresh < floor))
}

/// The continuous-validation overhead gate: the on/off pair of the RNG
/// service bench, measured in the *same* fresh run (same machine, same
/// build), must stay within `overhead` of each other — the acceptance bound
/// of the validation tap ("validation-on overhead < 10%"). Returns
/// `Some((on_over_off_ratio, regressed?))` when both entries are present,
/// `None` otherwise. Pure so the rule is unit-testable.
fn validation_overhead(fresh: &[(String, f64)], overhead: f64) -> Option<(f64, bool)> {
    let ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let on = ns("rng_service_continuous_validation_on")?;
    let off = ns("rng_service_continuous_validation_off")?;
    let ratio = on / off;
    Some((ratio, ratio > 1.0 + overhead))
}

/// The environmental-drift overhead gate: the drift-off/under-drift pair of
/// the RNG service bench, measured in the *same* fresh run, must stay within
/// `overhead` of each other — the degraded-mode acceptance bound ("serving
/// through an active drift pulse costs < 15%"). Returns
/// `Some((drift_over_off_ratio, regressed?))` when both entries are present,
/// `None` otherwise. Pure so the rule is unit-testable.
fn drift_overhead(fresh: &[(String, f64)], overhead: f64) -> Option<(f64, bool)> {
    let ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let under = ns("rng_service_under_drift")?;
    let off = ns("rng_service_drift_off")?;
    let ratio = under / off;
    Some((ratio, ratio > 1.0 + overhead))
}

/// The entropy-mesh overhead gate: the mesh-failover-on/off pair of the RNG
/// service bench, measured in the *same* fresh run, must stay within
/// `overhead` of each other — the mesh acceptance bound ("tiered placement
/// and cross-tier failover machinery cost < 15% at steady state"). Returns
/// `Some((on_over_off_ratio, regressed?))` when both entries are present,
/// `None` otherwise. Pure so the rule is unit-testable.
fn mesh_overhead(fresh: &[(String, f64)], overhead: f64) -> Option<(f64, bool)> {
    let ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let on = ns("rng_service_mesh_failover_on")?;
    let off = ns("rng_service_mesh_failover_off")?;
    let ratio = on / off;
    Some((ratio, ratio > 1.0 + overhead))
}

/// The metrics-export overhead gate: the export-on/off pair of the RNG
/// service bench, measured in the *same* fresh run, must stay within
/// `overhead` of each other — the acceptance bound of the stats export ("a
/// Prometheus render per round trip costs < 5%"). Returns
/// `Some((on_over_off_ratio, regressed?))` when both entries are present,
/// `None` otherwise. Pure so the rule is unit-testable.
fn export_overhead(fresh: &[(String, f64)], overhead: f64) -> Option<(f64, bool)> {
    let ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let on = ns("rng_service_export_on")?;
    let off = ns("rng_service_export_off")?;
    let ratio = on / off;
    Some((ratio, ratio > 1.0 + overhead))
}

/// The async-facade overhead gate: the facade/blocking pair of the RNG
/// service bench, measured in the *same* fresh run, must stay within
/// `overhead` of each other — the front-door acceptance bound ("redeeming a
/// ticket through `block_on(AsyncTicket)` costs < 10% over `Ticket::wait`").
/// Returns `Some((facade_over_blocking_ratio, regressed?))` when both
/// entries are present, `None` otherwise. Pure so the rule is unit-testable.
fn facade_overhead(fresh: &[(String, f64)], overhead: f64) -> Option<(f64, bool)> {
    let ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let facade = ns("rng_service_async_facade")?;
    let blocking = ns("rng_service_async_blocking")?;
    let ratio = facade / blocking;
    Some((ratio, ratio > 1.0 + overhead))
}

/// Per-benchmark verdicts: `(name, fresh/baseline ratio normalised by the
/// suite median, regressed?)`, plus the median itself (printed so a
/// suite-wide shift is visible to humans even when no entry fails). An
/// entry regresses if its normalised ratio exceeds `1 + threshold` *or*
/// its raw ratio exceeds `abs_bound`. Pure so the decision rule is
/// unit-testable.
fn verdicts(
    fresh: &[(String, f64)],
    baseline: &[(String, f64)],
    threshold: f64,
    abs_bound: f64,
) -> (Vec<(String, f64, bool)>, f64) {
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (name, base_ns) in baseline {
        if let Some((_, fresh_ns)) = fresh.iter().find(|(n, _)| n == name) {
            ratios.push((name.clone(), fresh_ns / base_ns));
        }
    }
    if ratios.is_empty() {
        return (Vec::new(), 1.0);
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = sorted[sorted.len() / 2];
    let rows = ratios
        .into_iter()
        .map(|(name, ratio)| {
            let normalised = ratio / median;
            (
                name,
                normalised,
                normalised > 1.0 + threshold || ratio > abs_bound,
            )
        })
        .collect();
    (rows, median)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh_path, baseline_path] = &args[..] else {
        eprintln!("usage: bench_check <fresh.json> <committed-baseline.json>");
        return ExitCode::from(2);
    };
    let threshold = std::env::var("BENCH_REGRESSION_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    let abs_bound = std::env::var("BENCH_ABS_RATIO_BOUND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_ABS_RATIO_BOUND);
    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("bench_check: cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(fresh_text), Some(baseline_text)) = (read(fresh_path), read(baseline_path)) else {
        return ExitCode::from(2);
    };
    let fresh = parse_results(&fresh_text, false);
    let baseline = parse_results(&baseline_text, true);
    let (rows, median) = verdicts(&fresh, &baseline, threshold, abs_bound);
    if rows.is_empty() {
        eprintln!("bench_check: no common benchmarks between {fresh_path} and {baseline_path}");
        return ExitCode::from(2);
    }
    // Names in the committed baseline but missing from the fresh run mean a
    // hot path silently disappeared — fail loudly.
    let mut failed = false;
    for (name, _) in &baseline {
        if !fresh.iter().any(|(n, _)| n == name) {
            eprintln!("MISSING   {name} (in baseline but not measured)");
            failed = true;
        }
    }
    println!("suite median fresh/baseline ratio: {median:.3} (normalisation factor)");
    println!("{:<42}{:>18}", "benchmark", "normalised ratio");
    for (name, ratio, regressed) in &rows {
        let flag = if *regressed { "  <-- REGRESSION" } else { "" };
        println!("{name:<42}{ratio:>18.3}{flag}");
        failed |= regressed;
    }
    // Paired bound, fresh-run only (same machine on both sides): the
    // continuous-validation tap must stay within its overhead budget.
    let overhead_budget = std::env::var("BENCH_VALIDATION_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    if let Some((ratio, over)) = validation_overhead(&fresh, overhead_budget) {
        let flag = if over { "  <-- OVER BUDGET" } else { "" };
        println!(
            "validation-on / validation-off:          {ratio:>18.3}{flag} (budget {:.0}%)",
            overhead_budget * 100.0
        );
        failed |= over;
    }
    // Paired bound, fresh-run only: serving through an active drift pulse
    // (one shard's bytes paying the full fault-injection mask cost) must
    // stay within its overhead budget.
    let drift_budget = std::env::var("BENCH_DRIFT_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.15);
    if let Some((ratio, over)) = drift_overhead(&fresh, drift_budget) {
        let flag = if over { "  <-- OVER BUDGET" } else { "" };
        println!(
            "under-drift / drift-off:                 {ratio:>18.3}{flag} (budget {:.0}%)",
            drift_budget * 100.0
        );
        failed |= over;
    }
    // Paired bound, fresh-run only: routing the same workload through the
    // entropy mesh (tiered placement, cross-tier failover armed) must stay
    // within its overhead budget.
    let mesh_budget = std::env::var("BENCH_MESH_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.15);
    if let Some((ratio, over)) = mesh_overhead(&fresh, mesh_budget) {
        let flag = if over { "  <-- OVER BUDGET" } else { "" };
        println!(
            "mesh-failover-on / failover-off:         {ratio:>18.3}{flag} (budget {:.0}%)",
            mesh_budget * 100.0
        );
        failed |= over;
    }
    // Paired bound, fresh-run only: a stats snapshot + Prometheus text
    // render per client round trip must stay within its overhead budget.
    let export_budget = std::env::var("BENCH_EXPORT_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    if let Some((ratio, over)) = export_overhead(&fresh, export_budget) {
        let flag = if over { "  <-- OVER BUDGET" } else { "" };
        println!(
            "export-on / export-off:                  {ratio:>18.3}{flag} (budget {:.0}%)",
            export_budget * 100.0
        );
        failed |= over;
    }
    // Paired bound, fresh-run only: redeeming every ticket through the
    // async front door (waker registration + delivery-side wake + one
    // park/unpark) must stay within its overhead budget.
    let facade_budget = std::env::var("BENCH_FACADE_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    if let Some((ratio, over)) = facade_overhead(&fresh, facade_budget) {
        let flag = if over { "  <-- OVER BUDGET" } else { "" };
        println!(
            "async-facade / blocking-wait:            {ratio:>18.3}{flag} (budget {:.0}%)",
            facade_budget * 100.0
        );
        failed |= over;
    }
    // Absolute generation-throughput floor, fresh-run only: sustained Gb/s
    // must not fall below 75% of the committed baseline (or the explicit
    // BENCH_GBPS_FLOOR).
    let floor_override = std::env::var("BENCH_GBPS_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    if let Some((fresh_gbps, floor, under)) = gbps_floor_verdict(
        gbps_of(&fresh_text, GBPS_GATED_BENCH),
        gbps_of(&baseline_text, GBPS_GATED_BENCH),
        DEFAULT_GBPS_FLOOR_FRACTION,
        floor_override,
    ) {
        let flag = if under { "  <-- UNDER FLOOR" } else { "" };
        println!(
            "{GBPS_GATED_BENCH} throughput:     {fresh_gbps:>14.3} Gb/s{flag} (floor {floor:.3} Gb/s)",
        );
        failed |= under;
    }
    if failed {
        eprintln!(
            "bench_check: regression beyond {:.0}% (median-normalised) — investigate or refresh \
             the committed BENCH_RESULTS.json with `just bench-json`",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_check: all hot paths within {:.0}% of the committed baseline",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn parses_report_lines_with_carried_entries_fresh_vs_baseline() {
        let text = r#"{
  "results": [
    {"name":"a","ns_per_iter":100.0,"samples":10},
    {"name":"b","ns_per_iter":250.5,"samples":10,"gbps":1.0},
    {"name":"stale","ns_per_iter":99.0,"samples":10,"carried":true}
  ]
}"#;
        // Fresh side: the carried entry was not measured this run and must
        // not count (a deleted benchmark would otherwise reappear with
        // ratio exactly 1.0 and dodge the MISSING check).
        assert_eq!(
            parse_results(text, false),
            results(&[("a", 100.0), ("b", 250.5)])
        );
        // Baseline side: a carried entry is still a real historical
        // measurement — dropping it would un-gate that hot path after a
        // filtered `just nist-bench` refresh is committed.
        assert_eq!(
            parse_results(text, true),
            results(&[("a", 100.0), ("b", 250.5), ("stale", 99.0)])
        );
    }

    #[test]
    fn uniform_machine_slowdown_is_not_a_regression() {
        // Fresh run measured on a runner uniformly 2x slower: the median
        // normalisation cancels it.
        let base = results(&[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        let fresh = results(&[("a", 200.0), ("b", 400.0), ("c", 600.0)]);
        let (rows, median) = verdicts(&fresh, &base, 0.25, DEFAULT_ABS_RATIO_BOUND);
        assert!((median - 2.0).abs() < 1e-12);
        assert!(rows.iter().all(|(_, _, r)| !r));
    }

    #[test]
    fn suite_majority_regression_trips_the_absolute_bound() {
        // A slowed shared primitive regresses most of the suite; the median
        // absorbs it (normalised ratios ~1) but the raw 5x exceeds the
        // absolute bound, so the gate still fails.
        let base = results(&[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        let fresh = results(&[("a", 500.0), ("b", 1000.0), ("c", 1500.0)]);
        let (rows, _) = verdicts(&fresh, &base, 0.25, DEFAULT_ABS_RATIO_BOUND);
        assert!(
            rows.iter().all(|(_, _, r)| *r),
            "5x across the board must fail"
        );
    }

    #[test]
    fn single_hot_path_regression_is_flagged() {
        let base = results(&[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        let fresh = results(&[("a", 100.0), ("b", 200.0), ("c", 600.0)]);
        let (rows, _) = verdicts(&fresh, &base, 0.25, DEFAULT_ABS_RATIO_BOUND);
        assert!(!rows.iter().find(|(n, _, _)| n == "a").unwrap().2);
        assert!(
            rows.iter().find(|(n, _, _)| n == "c").unwrap().2,
            "2x on c must flag"
        );
    }

    #[test]
    fn validation_overhead_gate_pairs_the_on_off_benches() {
        let fresh = results(&[
            ("rng_service_continuous_validation_off", 1000.0),
            ("rng_service_continuous_validation_on", 1050.0),
        ]);
        let (ratio, over) = validation_overhead(&fresh, 0.10).unwrap();
        assert!((ratio - 1.05).abs() < 1e-12);
        assert!(!over, "5% overhead is within the 10% budget");
        let fresh = results(&[
            ("rng_service_continuous_validation_off", 1000.0),
            ("rng_service_continuous_validation_on", 1200.0),
        ]);
        assert!(
            validation_overhead(&fresh, 0.10).unwrap().1,
            "20% overhead must fail"
        );
        // Missing either side: no verdict (e.g. a filtered `-- nist` run).
        assert!(validation_overhead(&results(&[("a", 1.0)]), 0.10).is_none());
    }

    #[test]
    fn export_overhead_gate_pairs_the_on_off_benches() {
        let fresh = results(&[
            ("rng_service_export_off", 1000.0),
            ("rng_service_export_on", 1030.0),
        ]);
        let (ratio, over) = export_overhead(&fresh, 0.05).unwrap();
        assert!((ratio - 1.03).abs() < 1e-12);
        assert!(!over, "3% overhead is within the 5% budget");
        let fresh = results(&[
            ("rng_service_export_off", 1000.0),
            ("rng_service_export_on", 1100.0),
        ]);
        assert!(
            export_overhead(&fresh, 0.05).unwrap().1,
            "10% overhead must fail"
        );
        // Missing either side (e.g. a filtered run): no verdict.
        assert!(export_overhead(&results(&[("a", 1.0)]), 0.05).is_none());
    }

    #[test]
    fn facade_overhead_gate_pairs_the_async_blocking_benches() {
        let fresh = results(&[
            ("rng_service_async_blocking", 1000.0),
            ("rng_service_async_facade", 1060.0),
        ]);
        let (ratio, over) = facade_overhead(&fresh, 0.10).unwrap();
        assert!((ratio - 1.06).abs() < 1e-12);
        assert!(!over, "6% overhead is within the 10% budget");
        let fresh = results(&[
            ("rng_service_async_blocking", 1000.0),
            ("rng_service_async_facade", 1150.0),
        ]);
        assert!(
            facade_overhead(&fresh, 0.10).unwrap().1,
            "15% overhead must fail"
        );
        // Missing either side (e.g. a filtered run): no verdict.
        assert!(facade_overhead(&results(&[("a", 1.0)]), 0.10).is_none());
    }

    #[test]
    fn mesh_overhead_gate_pairs_the_on_off_benches() {
        let fresh = results(&[
            ("rng_service_mesh_failover_off", 1000.0),
            ("rng_service_mesh_failover_on", 1080.0),
        ]);
        let (ratio, over) = mesh_overhead(&fresh, 0.15).unwrap();
        assert!((ratio - 1.08).abs() < 1e-12);
        assert!(!over, "8% overhead is within the 15% budget");
        let fresh = results(&[
            ("rng_service_mesh_failover_off", 1000.0),
            ("rng_service_mesh_failover_on", 1250.0),
        ]);
        assert!(
            mesh_overhead(&fresh, 0.15).unwrap().1,
            "25% overhead must fail"
        );
        // Missing either side (e.g. a filtered run): no verdict.
        assert!(mesh_overhead(&results(&[("a", 1.0)]), 0.15).is_none());
    }

    #[test]
    fn drift_overhead_gate_pairs_the_off_under_benches() {
        let fresh = results(&[
            ("rng_service_drift_off", 1000.0),
            ("rng_service_under_drift", 1100.0),
        ]);
        let (ratio, over) = drift_overhead(&fresh, 0.15).unwrap();
        assert!((ratio - 1.10).abs() < 1e-12);
        assert!(!over, "10% overhead is within the 15% budget");
        let fresh = results(&[
            ("rng_service_drift_off", 1000.0),
            ("rng_service_under_drift", 1300.0),
        ]);
        assert!(
            drift_overhead(&fresh, 0.15).unwrap().1,
            "30% overhead must fail"
        );
        // Missing either side (e.g. a filtered run): no verdict.
        assert!(drift_overhead(&results(&[("a", 1.0)]), 0.15).is_none());
    }

    #[test]
    fn gbps_floor_tracks_the_committed_baseline() {
        // Fresh at 0.8 Gb/s against a 1.0 Gb/s baseline: floor is 0.75, ok.
        let (fresh, floor, under) = gbps_floor_verdict(Some(0.8), Some(1.0), 0.75, None).unwrap();
        assert!((fresh - 0.8).abs() < 1e-12 && (floor - 0.75).abs() < 1e-12);
        assert!(!under);
        // Fresh at 0.5 Gb/s: under the floor, must fail.
        assert!(
            gbps_floor_verdict(Some(0.5), Some(1.0), 0.75, None)
                .unwrap()
                .2
        );
        // An explicit override wins over the baseline-derived floor.
        let (_, floor, under) = gbps_floor_verdict(Some(0.7), Some(1.0), 0.75, Some(0.6)).unwrap();
        assert!((floor - 0.6).abs() < 1e-12 && !under);
        // No fresh measurement (filtered run) or no baseline gbps: no verdict.
        assert!(gbps_floor_verdict(None, Some(1.0), 0.75, None).is_none());
        assert!(gbps_floor_verdict(Some(0.8), None, 0.75, None).is_none());
        // ... unless the override supplies the floor without a baseline.
        assert!(
            gbps_floor_verdict(Some(0.8), None, 0.75, Some(0.9))
                .unwrap()
                .2
        );
    }

    #[test]
    fn gbps_is_extracted_from_the_named_entry_only() {
        let text = r#"{
  "results": [
    {"name":"other","ns_per_iter":10.0,"samples":10,"gbps":99.0},
    {"name":"generate_bytes_64KiB","ns_per_iter":650004.0,"samples":10,"bits_per_iter":524288,"gbps":0.8066}
  ]
}"#;
        assert!((gbps_of(text, GBPS_GATED_BENCH).unwrap() - 0.8066).abs() < 1e-12);
        assert!(gbps_of(text, "missing").is_none());
        // An entry without a gbps field yields no measurement.
        assert!(gbps_of(
            "{\"name\":\"generate_bytes_64KiB\",\"ns_per_iter\":1.0}",
            GBPS_GATED_BENCH
        )
        .is_none());
    }

    #[test]
    fn benchmarks_missing_from_either_side_are_ignored_in_ratios() {
        let base = results(&[("a", 100.0), ("gone", 50.0)]);
        let fresh = results(&[("a", 110.0), ("new", 10.0)]);
        let (rows, _) = verdicts(&fresh, &base, 0.25, DEFAULT_ABS_RATIO_BOUND);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "a");
        assert!(!rows[0].2);
    }
}
