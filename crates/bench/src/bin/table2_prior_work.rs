//! Reproduces Table 2 (comparison with prior DRAM-based TRNGs) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::table2();
}
