//! Reproduces Figure 13 (throughput vs DDR4 transfer rate) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure13();
}
