//! Reproduces Figure 10 (cache-block entropy within the best segment) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure10();
}
