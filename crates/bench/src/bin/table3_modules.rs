//! Reproduces Table 3 (module population and 30-day stability) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::table3();
}
