//! Reproduces Table 1 and the Section 7.1 NIST STS experiment of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::table1(if qt_bench::full_resolution() { 1_000_000 } else { 200_000 });
}
