//! Reproduces Figure 11 (throughput per configuration) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure11();
}
