//! Reproduces Figure 12 (TRNG throughput in idle DRAM cycles under SPEC2006) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure12();
}
