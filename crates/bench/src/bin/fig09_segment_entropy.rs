//! Reproduces Figure 9 (spatial distribution of segment entropy) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure09();
}
