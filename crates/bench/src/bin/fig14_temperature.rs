//! Reproduces Figure 14 (temperature sensitivity) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::figure14();
}
