//! Reproduces Section 9 (system integration costs) of the QUAC-TRNG paper. Set QUAC_FULL=1 for denser sweeps.
fn main() {
    let _ = qt_bench::section9();
}
