//! # qt-bench
//!
//! Reproduction harness: one function (and one binary) per table and figure
//! of the paper's evaluation, plus Criterion micro-benchmarks of the
//! performance-critical software paths.
//!
//! Each `fig*`/`table*` function prints the same rows or series the paper
//! reports and returns them as data so integration tests can assert on the
//! shapes. By default the harnesses run on a *sampled* characterisation
//! (subset of segments / strided bitlines) so every binary finishes in
//! seconds; set `QUAC_FULL=1` for denser sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qt_baselines::{DRange, Talukder, LOW_THROUGHPUT_TRNGS};
use qt_dram_analog::{OperatingConditions, PAPER_MODULES};
use qt_dram_core::{DataPattern, DramGeometry, TransferRate};
use qt_memctrl::system::{idle_injection_throughput_gbps, MemorySystem, MemorySystemConfig};
use qt_nist_sts::{run_all_tests, Significance};
use qt_workloads::{TraceGenerator, SPEC2006_WORKLOADS};
use quac_trng::cache::CharacterizationCache;
use quac_trng::characterize::{
    chip_temperature_study, ordered_parallel_map, worker_threads, CharacterizationConfig,
    ModuleCharacterization, PatternStats,
};
use quac_trng::integration::integration_costs;
use quac_trng::pipeline::QuacTrng;
use quac_trng::throughput::ThroughputModel;

/// Returns `true` when the user asked for the dense (slow) sweeps.
pub fn full_resolution() -> bool {
    std::env::var("QUAC_FULL").map(|v| v == "1").unwrap_or(false)
}

fn sweep_config() -> CharacterizationConfig {
    if full_resolution() {
        CharacterizationConfig { segment_stride: 16, bitline_stride: 8, conditions: OperatingConditions::nominal() }
    } else {
        CharacterizationConfig { segment_stride: 512, bitline_stride: 64, conditions: OperatingConditions::nominal() }
    }
}

fn module_subset() -> &'static [qt_dram_analog::ModuleProfile] {
    if full_resolution() {
        PAPER_MODULES
    } else {
        &PAPER_MODULES[..4]
    }
}

/// Characterises a paper module through the persistent store: repeated
/// figure/table runs with the same module and configuration load the stored
/// result (bit-identical to a fresh sweep) instead of re-sweeping — the
/// difference between minutes and milliseconds at `QUAC_FULL=1` density.
/// Set `QUAC_CACHE_DIR=off` to force fresh sweeps.
fn characterize_cached(
    module: &qt_dram_analog::ModuleProfile,
    cfg: &CharacterizationConfig,
) -> ModuleCharacterization {
    let model = module.analog_model();
    CharacterizationCache::load_or_characterize_env(
        module.name,
        &model,
        DataPattern::best_average(),
        cfg,
    )
}

/// Figure 8: average and maximum cache-block entropy per data pattern,
/// averaged over the module population. Returns `(pattern, avg, max)` rows.
///
/// Modules are sharded across [`worker_threads`] scoped workers (each worker
/// runs its module's sweep single-threaded, keeping the total thread count
/// bounded), and each sweep goes through the persistent `.quac-cache/` store
/// — repeated figure runs load the per-pattern statistics f64-exactly
/// instead of re-sweeping, like the other characterisation-backed figures.
/// The module-order fold makes the output independent of the worker count.
pub fn figure08() -> Vec<(String, f64, f64)> {
    let cfg = sweep_config();
    let patterns = DataPattern::figure8_patterns();
    let mut rows: Vec<(String, f64, f64)> = patterns.iter().map(|p| (p.to_string(), 0.0, 0.0f64)).collect();
    let modules = module_subset();
    let per_module: Vec<Vec<PatternStats>> = ordered_parallel_map(
        modules,
        worker_threads(),
        |module| {
            CharacterizationCache::load_or_pattern_sweep_env(
                module.name,
                &module.analog_model(),
                &patterns,
                &cfg,
                1,
            )
        },
    );
    for stats in &per_module {
        for (i, s) in stats.iter().enumerate() {
            rows[i].1 += s.avg_cache_block_entropy / modules.len() as f64;
            rows[i].2 = rows[i].2.max(s.max_cache_block_entropy);
        }
    }
    println!("# Figure 8: cache-block entropy per data pattern (bits)");
    println!("{:<10}{:>12}{:>12}", "pattern", "avg CB", "max CB");
    for (p, avg, max) in &rows {
        println!("{p:<10}{avg:>12.2}{max:>12.2}");
    }
    rows
}

/// Figure 9: segment entropy across the bank for each module in the subset.
/// Returns `(module, Vec<(segment, entropy)>)`.
pub fn figure09() -> Vec<(String, Vec<(usize, f64)>)> {
    let cfg = sweep_config();
    let mut out = Vec::new();
    println!("# Figure 9: segment entropy across the bank (pattern 0111)");
    for module in module_subset() {
        let ch = characterize_cached(module, &cfg);
        let avg = ch.average_segment_entropy();
        println!(
            "{:<5} segments={:<6} avg={:8.1}  max={:8.1} (best segment {})",
            module.name,
            ch.segment_entropy.len(),
            avg,
            ch.best_segment_entropy,
            ch.best_segment.index()
        );
        out.push((module.name.to_string(), ch.segment_entropy));
    }
    out
}

/// Figure 10: per-cache-block entropy of the highest-entropy segment,
/// averaged over the module subset. Returns one value per cache block.
pub fn figure10() -> Vec<f64> {
    let cfg = sweep_config();
    let modules = module_subset();
    let blocks = DramGeometry::ddr4_4gb_x8_module().cache_blocks_per_row();
    let mut avg = vec![0.0f64; blocks];
    for module in modules {
        let ch = characterize_cached(module, &cfg);
        for (i, e) in ch.best_segment_cache_blocks.iter().enumerate() {
            avg[i] += e / modules.len() as f64;
        }
    }
    println!("# Figure 10: cache-block entropy within the best segment (bits)");
    for (i, e) in avg.iter().enumerate() {
        if i % 8 == 0 {
            println!("CB {i:>3}: {e:7.2}");
        }
    }
    avg
}

/// Table 1: NIST STS p-values for a VNC-corrected raw stream and a SHA-256
/// post-processed stream. Returns `(test name, vnc p, sha p)` rows.
pub fn table1(stream_bits: usize) -> Vec<(String, f64, f64)> {
    let mut trng = QuacTrng::for_module(&PAPER_MODULES[0], 0xA11CE);
    let sha_bits = trng.generate_bits(stream_bits);
    let vnc_bits = trng.generate_vnc_bits(stream_bits * 4);
    let sha_results = run_all_tests(&sha_bits);
    let vnc_results = run_all_tests(&vnc_bits);
    println!("# Table 1: NIST STS results (alpha = 0.001)");
    println!("{:<36}{:>10}{:>10}", "test", "VNC", "SHA-256");
    let mut rows = Vec::new();
    for (v, s) in vnc_results.iter().zip(&sha_results) {
        let short = |r: &qt_nist_sts::TestResult| {
            if r.is_applicable() { format!("{:.3}", r.p_value) } else { "n/a".to_string() }
        };
        println!("{:<36}{:>10}{:>10}", s.name, short(v), short(s));
        assert!(s.passes(Significance::PAPER), "SHA-256 stream failed {}", s.name);
        rows.push((s.name.to_string(), v.p_value, s.p_value));
    }
    rows
}

/// Figure 11: per-channel throughput of the three configurations, averaged
/// over the module population (using each module's Table 3 maximum segment
/// entropy). Returns `(config, avg, max, min)` in Gb/s.
pub fn figure11() -> Vec<(String, f64, f64, f64)> {
    let names = ["One Bank", "BGP", "RC + BGP"];
    let mut agg = [(0.0f64, f64::MIN, f64::MAX); 3];
    for module in PAPER_MODULES {
        let model = ThroughputModel::new(module.geometry(), module.table3_max_segment_entropy);
        for (i, cfg) in model.figure11().iter().enumerate() {
            agg[i].0 += cfg.throughput_gbps / PAPER_MODULES.len() as f64;
            agg[i].1 = agg[i].1.max(cfg.throughput_gbps);
            agg[i].2 = agg[i].2.min(cfg.throughput_gbps);
        }
    }
    println!("# Figure 11: QUAC-TRNG throughput per configuration (Gb/s per channel)");
    println!("{:<12}{:>10}{:>10}{:>10}", "config", "avg", "max", "min");
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        println!("{:<12}{:>10.2}{:>10.2}{:>10.2}", name, agg[i].0, agg[i].1, agg[i].2);
        rows.push((name.to_string(), agg[i].0, agg[i].1, agg[i].2));
    }
    rows
}

/// Figure 12: TRNG throughput available in idle DRAM cycles for each
/// SPEC2006 workload on the 4-channel system. Returns `(workload, Gb/s)`.
pub fn figure12() -> Vec<(String, f64)> {
    let cfg = MemorySystemConfig::paper_system();
    let cycles: u64 = if full_resolution() { 2_000_000 } else { 400_000 };
    let peak_per_channel = ThroughputModel::new(
        DramGeometry::ddr4_4gb_x8_module(),
        qt_dram_analog::profiles::average_of_max_segment_entropy(),
    )
    .scaled_throughput_gbps(TransferRate::ddr4_2400());
    println!("# Figure 12: TRNG throughput in idle DRAM cycles (4 channels, Gb/s)");
    let mut rows = Vec::new();
    let mut sum = 0.0;
    for w in SPEC2006_WORKLOADS {
        let trace = TraceGenerator::new(w.clone(), cfg.geom, 0xF16).generate_for_cycles(cycles);
        let report = MemorySystem::new(cfg).run_trace(&trace, cycles);
        let tp = 4.0 * idle_injection_throughput_gbps(&report, peak_per_channel, 0.95);
        println!("{:<12}{:>8.2}", w.name, tp);
        sum += tp;
        rows.push((w.name.to_string(), tp));
    }
    println!("{:<12}{:>8.2}", "Average", sum / SPEC2006_WORKLOADS.len() as f64);
    rows
}

/// Table 2: throughput and 256-bit latency of QUAC-TRNG and all prior DRAM
/// TRNGs on the 4-channel system. Returns `(name, Gb/s, ns)` rows.
pub fn table2() -> Vec<(String, f64, f64)> {
    let rate = TransferRate::ddr4_2400();
    let quac = ThroughputModel::new(
        DramGeometry::ddr4_4gb_x8_module(),
        qt_dram_analog::profiles::average_of_max_segment_entropy(),
    );
    let mut rows = vec![(
        "QUAC-TRNG".to_string(),
        quac.system_throughput_gbps(4, rate),
        quac.random_number_latency_ns(rate),
    )];
    for cmp in [
        Talukder::basic().comparison_row(rate),
        Talukder::enhanced_default().comparison_row(rate),
        DRange::basic().comparison_row(rate),
        DRange::enhanced_default().comparison_row(rate),
    ] {
        rows.push((cmp.name, 4.0 * cmp.throughput_gbps_per_channel, cmp.latency_256bit_ns));
    }
    for low in LOW_THROUGHPUT_TRNGS {
        let r = low.comparison_row();
        rows.push((r.name, 4.0 * r.throughput_gbps_per_channel, r.latency_256bit_ns));
    }
    println!("# Table 2: DRAM-based TRNG comparison (4-channel system)");
    println!("{:<22}{:>16}{:>18}", "mechanism", "throughput Gb/s", "256-bit latency ns");
    for (name, tp, lat) in &rows {
        println!("{name:<22}{tp:>16.3}{lat:>18.1}");
    }
    rows
}

/// Figure 13: throughput vs. DDR4 transfer rate for QUAC-TRNG and the four
/// baseline configurations (4-channel totals). Returns
/// `(mechanism, Vec<(MT/s, Gb/s)>)`.
pub fn figure13() -> Vec<(String, Vec<(u32, f64)>)> {
    let quac = ThroughputModel::new(
        DramGeometry::ddr4_4gb_x8_module(),
        qt_dram_analog::profiles::average_of_max_segment_entropy(),
    );
    let rates = TransferRate::figure13_sweep();
    let mut series: Vec<(String, Vec<(u32, f64)>)> = vec![
        ("QUAC-TRNG".into(), vec![]),
        ("Talukder+-Enhanced".into(), vec![]),
        ("D-RaNGe-Enhanced".into(), vec![]),
        ("Talukder+-Basic".into(), vec![]),
        ("D-RaNGe-Basic".into(), vec![]),
    ];
    for &rate in &rates {
        series[0].1.push((rate.mts(), quac.system_throughput_gbps(4, rate)));
        series[1].1.push((rate.mts(), 4.0 * Talukder::enhanced_default().throughput_gbps_per_channel(rate)));
        series[2].1.push((rate.mts(), 4.0 * DRange::enhanced_default().throughput_gbps_per_channel(rate)));
        series[3].1.push((rate.mts(), 4.0 * Talukder::basic().throughput_gbps_per_channel(rate)));
        series[4].1.push((rate.mts(), 4.0 * DRange::basic().throughput_gbps_per_channel(rate)));
    }
    println!("# Figure 13: throughput vs transfer rate (4 channels, Gb/s)");
    print!("{:<22}", "mechanism");
    for r in &rates {
        print!("{:>10}", r.mts());
    }
    println!();
    for (name, points) in &series {
        print!("{name:<22}");
        for (_, tp) in points {
            print!("{tp:>10.2}");
        }
        println!();
    }
    series
}

/// Figure 14: maximum and average segment entropy at 50/65/85 °C for trend-1
/// and trend-2 chips. Returns `(trend, temperature, max, avg)` rows.
pub fn figure14() -> Vec<(&'static str, f64, f64, f64)> {
    let cfg = CharacterizationConfig {
        segment_stride: if full_resolution() { 64 } else { 1024 },
        bitline_stride: 64,
        conditions: OperatingConditions::nominal(),
    };
    let modules = &PAPER_MODULES[..5];
    let mut rows = Vec::new();
    println!("# Figure 14: segment entropy vs temperature (per chip, bits)");
    for &temp in &OperatingConditions::figure14_temperatures() {
        let mut trend = [(0.0f64, 0.0f64, 0usize); 2];
        for module in modules {
            let model = module.analog_model();
            for chip in 0..model.variation().chip_count() {
                let idx = if model.variation().chip_follows_trend1(chip) { 0 } else { 1 };
                let (max, avg) = chip_temperature_study(&model, chip, DataPattern::best_average(), temp, &cfg);
                trend[idx].0 = trend[idx].0.max(max);
                trend[idx].1 += avg;
                trend[idx].2 += 1;
            }
        }
        for (i, name) in ["Trend 1", "Trend 2"].iter().enumerate() {
            let avg = trend[i].1 / trend[i].2.max(1) as f64;
            println!("{name} @ {temp:>4.0} C: max={:8.1} avg={avg:8.1}", trend[i].0);
            rows.push((*name, temp, trend[i].0, avg));
        }
    }
    rows
}

/// Table 3: per-module average and maximum segment entropy (simulated) next
/// to the paper's values, plus the 30-day re-characterisation. Returns
/// `(module, sim avg, sim max, paper avg, paper max, sim avg after 30 days)`.
pub fn table3() -> Vec<(String, f64, f64, f64, f64, Option<f64>)> {
    let cfg = sweep_config();
    let mut rows = Vec::new();
    println!("# Table 3: module population (segment entropy, bits)");
    println!(
        "{:<5}{:>10}{:>10}{:>12}{:>12}{:>14}",
        "mod", "sim avg", "sim max", "paper avg", "paper max", "sim avg +30d"
    );
    for module in module_subset() {
        let ch = characterize_cached(module, &cfg);
        let aged_cfg = cfg.with_conditions(OperatingConditions::nominal().aged(30.0));
        let aged = characterize_cached(module, &aged_cfg);
        let aged_avg = module.table3_avg_after_30_days.map(|_| aged.average_segment_entropy());
        println!(
            "{:<5}{:>10.1}{:>10.1}{:>12.1}{:>12.1}{:>14}",
            module.name,
            ch.average_segment_entropy(),
            ch.best_segment_entropy,
            module.table3_avg_segment_entropy,
            module.table3_max_segment_entropy,
            aged_avg.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
        rows.push((
            module.name.to_string(),
            ch.average_segment_entropy(),
            ch.best_segment_entropy,
            module.table3_avg_segment_entropy,
            module.table3_max_segment_entropy,
            aged_avg,
        ));
    }
    rows
}

/// Section 9: integration cost summary. Returns the cost structure after
/// printing it.
pub fn section9() -> quac_trng::integration::IntegrationCosts {
    let costs = integration_costs(&DramGeometry::ddr4_8gb_x8_module());
    println!("# Section 9: system integration costs");
    println!("reserved DRAM:        {} KiB ({:.4} % of module)", costs.reserved_bytes / 1024, costs.reserved_fraction * 100.0);
    println!("controller storage:   {} bits", costs.controller_storage_bits);
    println!("controller area:      {:.4} mm^2 ({:.3} % of a 7 nm CPU die)", costs.controller_area_mm2, costs.cpu_area_fraction * 100.0);
    costs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_and_table2_shapes_hold() {
        let fig11 = figure11();
        assert!(fig11[2].1 > fig11[1].1 && fig11[1].1 > fig11[0].1);
        let table2 = table2();
        let quac = table2.iter().find(|r| r.0 == "QUAC-TRNG").unwrap().1;
        for (name, tp, _) in &table2 {
            if name != "QUAC-TRNG" {
                assert!(quac > *tp, "QUAC ({quac}) should beat {name} ({tp})");
            }
        }
    }

    #[test]
    fn figure13_quac_scales_and_wins_at_12gts() {
        let series = figure13();
        let quac = &series[0].1;
        assert!(quac.last().unwrap().1 > 2.5 * quac.first().unwrap().1);
        let talukder_enh = &series[1].1;
        let drange_enh = &series[2].1;
        let last = quac.len() - 1;
        assert!(quac[last].1 > talukder_enh[last].1);
        assert!(quac[last].1 > drange_enh[last].1);
    }

    #[test]
    fn section9_costs_match_paper() {
        let c = section9();
        assert_eq!(c.reserved_bytes, 192 * 1024);
    }
}
