//! Criterion micro-benchmarks of the performance-critical software paths:
//! SHA-256 and Von Neumann post-processing, word-packed QUAC sampling, one
//! full QUAC-TRNG iteration, sustained byte generation, the analog entropy
//! model (serial and thread-sharded characterisation), the NIST test
//! battery, and the cycle-level memory system.
//!
//! Run `BENCH_JSON=BENCH_RESULTS.json cargo bench` (or `just bench-json`)
//! to refresh the machine-readable perf trajectory at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_crypto::{digest_many_into, Sha256, VonNeumannCorrector, BATCH_LANES};
use qt_dram_analog::{
    BitSlicedSampler, ModuleVariation, NoiseRng, OperatingConditions, PackedSampler,
    QuacAnalogModel,
};
use qt_dram_core::{BitVec, DataPattern, DramGeometry, Segment};
use qt_memctrl::system::{MemorySystem, MemorySystemConfig};
use qt_nist_sts::run_all_tests;
use qt_workloads::{TraceGenerator, SPEC2006_WORKLOADS};
use quac_trng::characterize::{
    characterize_module_serial, characterize_module_with_threads, CharacterizationConfig,
};
use quac_trng::pipeline::QuacTrng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_cfg() -> CharacterizationConfig {
    CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    }
}

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xA5u8; 4096];
    c.throughput_bits(4096 * 8)
        .bench_function("sha256_4KiB", |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    // The generation hot path's conditioning shape: one lane-width batch of
    // short compact-row messages through the SoA multi-lane compressor,
    // vs the same messages through the scalar hasher. The per-message size
    // (90 bytes) is the tiny module's packed metastable row.
    let messages: Vec<Vec<u8>> = (0..BATCH_LANES)
        .map(|i| (0..90).map(|j| (i * 91 + j) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    let mut digests = Vec::new();
    let batch_bits = (BATCH_LANES * 90 * 8) as u64;
    c.throughput_bits(batch_bits)
        .bench_function("sha256_batch16_90B", |b| {
            b.iter(|| {
                digests.clear();
                digest_many_into(std::hint::black_box(&refs), &mut digests);
                digests.len()
            })
        });
    c.throughput_bits(batch_bits)
        .bench_function("sha256_scalar16_90B", |b| {
            b.iter(|| {
                refs.iter()
                    .map(|m| Sha256::digest(std::hint::black_box(m))[0] as usize)
                    .sum::<usize>()
            })
        });
}

fn bench_vnc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let bits = BitVec::from_bits((0..65_536).map(|_| rng.gen::<f64>() < 0.8));
    // The word-wise production path vs. the pair-at-a-time reference it is
    // property-tested against.
    c.throughput_bits(65_536)
        .bench_function("von_neumann_64Kb", |b| {
            b.iter(|| VonNeumannCorrector::correct(std::hint::black_box(&bits)))
        });
    c.throughput_bits(65_536)
        .bench_function("von_neumann_64Kb_pairwise_reference", |b| {
            b.iter(|| VonNeumannCorrector::correct_pairwise(std::hint::black_box(&bits)))
        });
}

fn bench_packed_sampling(c: &mut Criterion) {
    // A full-size 64 Ki-bitline row of a paper module's best pattern: the
    // per-QUAC sampling work of the steady-state loop in isolation.
    let geom = DramGeometry::ddr4_4gb_x8_module();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let probs = model.bitline_probabilities(
        Segment::new(100),
        DataPattern::best_average(),
        OperatingConditions::nominal(),
    );
    let sampler = PackedSampler::new(&probs);
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = BitVec::zeros(probs.len());
    c.throughput_bits(probs.len() as u64)
        .bench_function("packed_sampling_64k_row", |b| {
            b.iter(|| sampler.sample_into(std::hint::black_box(&mut out), &mut rng))
        });
    // The production bit-sliced path on the same row: bulk-drawn plane words
    // and a compact (metastable-only) result, no per-bit RNG draws.
    let bitsliced = BitSlicedSampler::new(&probs);
    let mut noise = NoiseRng::new(7);
    let mut compact = BitVec::zeros(bitsliced.metastable_bits());
    c.throughput_bits(probs.len() as u64)
        .bench_function("bitsliced_sampling_64k_row", |b| {
            b.iter(|| bitsliced.sample_compact_into(std::hint::black_box(&mut compact), &mut noise))
        });
}

fn bench_bitvec_extract(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let bits = BitVec::from_bits((0..65_536).map(|_| rng.gen::<bool>()));
    let mut buf = Vec::new();
    c.throughput_bits(32_768)
        .bench_function("bitvec_extract_bytes_32Kb", |b| {
            b.iter(|| {
                bits.extract_bytes_into(512, 512 + 32_768, std::hint::black_box(&mut buf));
                buf.len()
            })
        });
}

fn bench_quac_iteration(c: &mut Criterion) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let mut trng = QuacTrng::from_model(model, tiny_cfg(), 9);
    let bits_out = (trng.numbers_per_iteration() * 256) as u64;
    c.throughput_bits(bits_out)
        .bench_function("quac_trng_iteration", |b| b.iter(|| trng.iteration()));
}

fn bench_generate_bytes(c: &mut Criterion) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 11));
    // Honest steady state: one out-of-band fill warms the output deque and
    // every scratch buffer, and the measured loop reuses a caller buffer
    // (`fill_bytes`), so the number is sustained Gb/s — no first-call
    // allocation, no per-iteration 64 KiB Vec.
    let mut trng = QuacTrng::from_model(model.clone(), tiny_cfg(), 13);
    let mut buf = vec![0u8; 65_536];
    trng.fill_bytes(&mut buf);
    c.throughput_bits(65_536 * 8)
        .bench_function("generate_bytes_64KiB", |b| {
            b.iter(|| trng.fill_bytes(std::hint::black_box(&mut buf)))
        });
    // Cold-start companion: a pristine generator (characterised, but empty
    // buffer and untouched scratch) delivering its first 64 KiB. The delta
    // against steady state is the first-fill overhead a service pays per
    // shard spin-up; cloning the prototype is a few µs and included.
    let pristine = QuacTrng::from_model(model, tiny_cfg(), 13);
    c.throughput_bits(65_536 * 8)
        .bench_function("generate_bytes_64KiB_cold_start", |b| {
            b.iter(|| {
                let mut fresh = pristine.clone();
                let mut out = vec![0u8; 65_536];
                fresh.fill_bytes(&mut out);
                out
            })
        });
}

fn bench_segment_entropy(c: &mut Criterion) {
    let geom = DramGeometry::ddr4_4gb_x8_module();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    c.bench_function("segment_entropy_64k_bitlines", |b| {
        b.iter(|| {
            model.segment_entropy(
                std::hint::black_box(Segment::new(100)),
                DataPattern::best_average(),
                OperatingConditions::nominal(),
                16,
            )
        })
    });
}

fn bench_characterisation(c: &mut Criterion) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 17));
    let cfg = tiny_cfg();
    c.bench_function("characterize_module_tiny_serial", |b| {
        b.iter(|| characterize_module_serial(&model, DataPattern::best_average(), &cfg))
    });
    let threads = quac_trng::characterize::worker_threads();
    c.bench_function("characterize_module_tiny_parallel", |b| {
        b.iter(|| {
            characterize_module_with_threads(&model, DataPattern::best_average(), &cfg, threads)
        })
    });
}

fn bench_rng_service(c: &mut Criterion) {
    // The acceptance bench of the service layer: 4 concurrent clients, 2
    // channel shards, aggregate delivered Gb/s. Each iteration pushes
    // 4 × 16 KiB through the full submit → schedule → batch → generate →
    // deliver path.
    use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let service = RngService::start(
        QuacTrng::shards(&model, &ch, 17, SHARDS),
        RngServiceConfig::default(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    c.throughput_bits(total_bits)
        .bench_function("rng_service_4clients_2shards_64KiB", |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        service
                            .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait().expect("bench completion"));
                }
            })
        });
    service.shutdown();
}

fn bench_rng_service_validation(c: &mut Criterion) {
    // The continuous-validation acceptance bench: the same 4-client × 16 KiB
    // round trip as `rng_service_4clients_2shards_64KiB`, once with the
    // validator tap off and once on (50 kb windows, lossy tap, 2% sampled
    // coverage — the budget a core-constrained host like the CI container
    // runs, since grading costs several times generation per byte; hosts
    // with spare cores set `target_coverage: 1.0` and the validator rides a
    // free core). The pair is gated in `bench_check`: validation-on must
    // stay within 10% of validation-off — the tap itself is a quota check
    // plus an occasional copy + bounded try_send.
    use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig, ValidationConfig};
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    let sampled_on = qt_rng_service::ValidationConfig {
        target_coverage: 0.02,
        ..ValidationConfig::enabled()
    };
    for (name, validation) in [
        (
            "rng_service_continuous_validation_off",
            ValidationConfig::default(),
        ),
        ("rng_service_continuous_validation_on", sampled_on),
    ] {
        let service = RngService::start(
            QuacTrng::shards(&model, &ch, 17, SHARDS),
            RngServiceConfig {
                validation,
                ..RngServiceConfig::default()
            },
        );
        // Warm the validation loop into its lossy steady state (tap queue
        // saturated, validator grinding its backlog) before measuring, so
        // the samples reflect sustained operation rather than the cheap
        // first seconds while the bounded queue is still filling.
        for _ in 0..32 {
            let tickets: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    service
                        .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                        .expect("warmup submission")
                })
                .collect();
            for t in tickets {
                std::hint::black_box(t.wait().expect("warmup completion"));
            }
        }
        c.throughput_bits(total_bits).bench_function(name, |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        service
                            .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait().expect("bench completion"));
                }
            })
        });
        service.shutdown();
    }
}

fn bench_rng_service_drift(c: &mut Criterion) {
    // Degraded-mode companion to the continuous-validation pair: the same
    // 4-client × 16 KiB round trip, once on clean shards and once with one
    // shard inside an active environmental-drift pulse
    // (`quac_trng::fault::FaultInjector::drift`). The health policy is set
    // to never trip (no failure streak or EWMA can fence a shard), so the
    // pair isolates the *mechanical* per-byte cost of the drift corrupt
    // path — threshold lookup per 64-byte step plus OR-mask generation —
    // from quarantine/failover dynamics, which `tests/chaos_campaigns.rs`
    // covers functionally. The pair is gated in `bench_check`: under-drift
    // must stay within 15% of drift-off.
    use qt_dram_analog::{TemperatureRamp, TemperatureTrend};
    use qt_rng_service::{
        ClientId, HealthPolicy, Priority, RngService, RngServiceConfig, ValidationConfig,
    };
    use quac_trng::fault::{DriftInjector, FaultInjector};
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    // Validation on at the same sampled coverage as the validation pair,
    // but with thresholds no stream can cross: the drifting shard keeps
    // serving for the whole measurement instead of tripping into
    // quarantine partway through (which would leave the bench measuring
    // placement on one shard, not the drift path).
    let never_trip = ValidationConfig {
        target_coverage: 0.02,
        policy: HealthPolicy {
            min_pass_ewma: 0.0,
            max_consecutive_failures: u32::MAX,
            ..ValidationConfig::enabled().policy
        },
        ..ValidationConfig::enabled()
    };
    // A pulse far longer than any bench run (256 GiB) with a sensitivity
    // that saturates the OR-mask threshold within the first ~2 KiB of the
    // stream: every measured byte pays the full drift cost, and the
    // overhead cannot fade mid-measurement the way a short, realistic
    // pulse's would.
    let drift = DriftInjector::excursion(
        TemperatureRamp::nominal_to(85.0),
        TemperatureTrend::Decreasing,
        1 << 38,
        1e6,
    );
    for (name, fault) in [
        ("rng_service_drift_off", None),
        (
            "rng_service_under_drift",
            Some(FaultInjector::drift(drift, 0x00D7)),
        ),
    ] {
        let mut shards = QuacTrng::shards(&model, &ch, 17, SHARDS);
        if let Some(fault) = fault {
            shards[1].inject_fault(fault);
        }
        let service = RngService::start(
            shards,
            RngServiceConfig {
                validation: never_trip,
                ..RngServiceConfig::default()
            },
        );
        // Warm past the threshold ramp-in and into the validator's lossy
        // steady state before measuring.
        for _ in 0..32 {
            let tickets: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    service
                        .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                        .expect("warmup submission")
                })
                .collect();
            for t in tickets {
                std::hint::black_box(t.wait().expect("warmup completion"));
            }
        }
        c.throughput_bits(total_bits).bench_function(name, |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        service
                            .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait().expect("bench completion"));
                }
            })
        });
        service.shutdown();
    }
}

fn bench_rng_service_mesh(c: &mut Criterion) {
    // Entropy-mesh acceptance pair: the same 4-client × 16 KiB round trip
    // with mixed priorities, once through the stock least-loaded service and
    // once through the mesh policy stack (tiered placement over backend
    // kinds, cross-tier quarantine failover armed). Both sides serve from
    // the same two QUAC shards so the pair isolates the control-plane cost
    // of the mesh — the per-admission tier scan plus backend-kind
    // bookkeeping — from backend speed differences, which
    // `tests/mesh.rs` covers functionally. The pair is gated in
    // `bench_check`: failover-on must stay within 15% of failover-off.
    use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
    use quac_trng::EntropyBackend;
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    for (name, mesh) in [
        ("rng_service_mesh_failover_off", false),
        ("rng_service_mesh_failover_on", true),
    ] {
        let shards = QuacTrng::shards(&model, &ch, 17, SHARDS);
        let service = if mesh {
            RngService::start_mesh(
                shards
                    .into_iter()
                    .map(|s| Box::new(s) as Box<dyn EntropyBackend>)
                    .collect(),
                RngServiceConfig::default(),
            )
        } else {
            RngService::start(shards, RngServiceConfig::default())
        };
        // Warm both variants into placement steady state before measuring.
        for _ in 0..32 {
            let tickets: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    service
                        .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                        .expect("warmup submission")
                })
                .collect();
            for t in tickets {
                std::hint::black_box(t.wait().expect("warmup completion"));
            }
        }
        c.throughput_bits(total_bits).bench_function(name, |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        // Half the clients latency-sensitive: the mesh side
                        // walks the High tier order on every admission.
                        let priority = if client % 2 == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        };
                        service
                            .submit(ClientId(client), priority, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait().expect("bench completion"));
                }
            })
        });
        service.shutdown();
    }
}

fn bench_nist_suite(c: &mut Criterion) {
    use qt_nist_sts::tests15::{
        approximate_entropy, linear_complexity, non_overlapping_template_matching,
        overlapping_template_matching, serial,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let bits = BitVec::from_bits((0..50_000).map(|_| rng.gen::<bool>()));
    // The full battery — the "validate what we serve" hot path; Gb/s lands
    // in BENCH_RESULTS.json so the validation rate is comparable against the
    // generation rate (paper: 3.44 Gb/s per channel).
    c.throughput_bits(50_000)
        .bench_function("nist_sts_50kb", |b| {
            b.iter(|| run_all_tests(std::hint::black_box(&bits)))
        });
    // The three historical worst offenders, benched separately so a future
    // regression in one of them is attributable from the JSON alone.
    c.throughput_bits(50_000)
        .bench_function("nist_serial_approx_entropy_50kb", |b| {
            b.iter(|| {
                (
                    serial(std::hint::black_box(&bits), 16),
                    approximate_entropy(std::hint::black_box(&bits), 10),
                )
            })
        });
    c.throughput_bits(50_000)
        .bench_function("nist_template_matching_50kb", |b| {
            b.iter(|| {
                (
                    non_overlapping_template_matching(std::hint::black_box(&bits), 9),
                    overlapping_template_matching(std::hint::black_box(&bits), 9),
                )
            })
        });
    c.throughput_bits(50_000)
        .bench_function("nist_linear_complexity_50kb", |b| {
            b.iter(|| linear_complexity(std::hint::black_box(&bits), 500))
        });
    // The excursion tests only apply to long walks (J ≥ 500 cycles needs
    // ~600 kb of random stream); benched at 1 Mb — the paper's sequence
    // length — where the counting rewrite's allocation-free pass matters.
    let mut rng = StdRng::seed_from_u64(6);
    let long = BitVec::from_bits((0..1_000_000).map(|_| rng.gen::<bool>()));
    c.throughput_bits(1_000_000)
        .bench_function("nist_excursions_1Mb", |b| {
            b.iter(|| {
                (
                    qt_nist_sts::tests15::random_excursion(std::hint::black_box(&long)),
                    qt_nist_sts::tests15::random_excursion_variant(std::hint::black_box(&long)),
                )
            })
        });
    // The spectral test: real-input FFT production path vs the frozen
    // complex-FFT reference, on the paper's 1 Mb sequence length. The pair
    // makes the real-FFT speedup attributable from the JSON alone.
    c.throughput_bits(1_000_000)
        .bench_function("nist_dft_1Mb", |b| {
            b.iter(|| qt_nist_sts::tests15::dft(std::hint::black_box(&long)))
        });
    c.throughput_bits(1_000_000)
        .bench_function("nist_dft_1Mb_complex_reference", |b| {
            b.iter(|| qt_nist_sts::tests15::dft_reference(std::hint::black_box(&long)))
        });
}

fn bench_rng_service_export(c: &mut Criterion) {
    // The metrics-export acceptance pair: the same 4-client × 16 KiB round
    // trip, once bare and once with a full stats snapshot + Prometheus text
    // rendering per iteration — a scrape on every round trip, far denser
    // than any real scrape interval. Gated in `bench_check`: export-on must
    // stay within 5% of export-off, since a snapshot is one lock + clone
    // and the rendering never touches the service at all.
    use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    for (name, export) in [
        ("rng_service_export_off", false),
        ("rng_service_export_on", true),
    ] {
        let service = RngService::start(
            QuacTrng::shards(&model, &ch, 17, SHARDS),
            RngServiceConfig::default(),
        );
        c.throughput_bits(total_bits).bench_function(name, |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        service
                            .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait().expect("bench completion"));
                }
                if export {
                    std::hint::black_box(qt_rng_service::export::prometheus_text(&service.stats()));
                }
            })
        });
        service.shutdown();
    }
}

fn bench_rng_service_facade(c: &mut Criterion) {
    // The async-front-door acceptance pair: the same 4-client × 16 KiB
    // round trip, once through the blocking `Ticket::wait` and once through
    // `block_on(AsyncTicket)` — every redemption pays the waker
    // registration, the delivery-side wake, and one thread park/unpark.
    // Gated in `bench_check`: the facade must stay within 10% of the
    // blocking path, since a poll is one lock and a wake is one unpark.
    use qt_rng_service::facade::{block_on, AsyncTicket};
    use qt_rng_service::{ClientId, Priority, RngService, RngServiceConfig};
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const BYTES_PER_CLIENT: usize = 16 << 10;
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let ch = quac_trng::characterize::characterize_module(
        &model,
        DataPattern::best_average(),
        &tiny_cfg(),
    );
    let total_bits = (CLIENTS as u64) * (BYTES_PER_CLIENT as u64) * 8;
    for (name, facade) in [
        ("rng_service_async_blocking", false),
        ("rng_service_async_facade", true),
    ] {
        let service = RngService::start(
            QuacTrng::shards(&model, &ch, 17, SHARDS),
            RngServiceConfig::default(),
        );
        c.throughput_bits(total_bits).bench_function(name, |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        service
                            .submit(ClientId(client), Priority::Normal, BYTES_PER_CLIENT)
                            .expect("bench submission")
                    })
                    .collect();
                for t in tickets {
                    if facade {
                        std::hint::black_box(
                            block_on(AsyncTicket::from(t)).expect("bench completion"),
                        );
                    } else {
                        std::hint::black_box(t.wait().expect("bench completion"));
                    }
                }
            })
        });
        service.shutdown();
    }
}

fn bench_memory_system(c: &mut Criterion) {
    let cfg = MemorySystemConfig::paper_system();
    let trace = TraceGenerator::new(SPEC2006_WORKLOADS[2].clone(), cfg.geom, 4)
        .generate_for_cycles(100_000);
    c.bench_function("memory_system_mcf_100k_cycles", |b| {
        b.iter(|| MemorySystem::new(cfg).run_trace(std::hint::black_box(&trace), 100_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sha256, bench_vnc, bench_packed_sampling, bench_bitvec_extract,
              bench_quac_iteration, bench_generate_bytes, bench_rng_service,
              bench_rng_service_validation, bench_rng_service_drift,
              bench_rng_service_mesh, bench_rng_service_export,
              bench_rng_service_facade, bench_segment_entropy,
              bench_characterisation, bench_nist_suite, bench_memory_system
}
criterion_main!(benches);
