//! Criterion micro-benchmarks of the performance-critical software paths:
//! SHA-256 and Von Neumann post-processing, one QUAC-TRNG iteration, the
//! analog entropy model, the NIST test battery, and the cycle-level memory
//! system.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_crypto::{Sha256, VonNeumannCorrector};
use qt_dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use qt_dram_core::{BitVec, DataPattern, DramGeometry, Segment};
use qt_memctrl::system::{MemorySystem, MemorySystemConfig};
use qt_nist_sts::run_all_tests;
use qt_workloads::{TraceGenerator, SPEC2006_WORKLOADS};
use quac_trng::characterize::CharacterizationConfig;
use quac_trng::pipeline::QuacTrng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xA5u8; 4096];
    c.bench_function("sha256_4KiB", |b| b.iter(|| Sha256::digest(std::hint::black_box(&data))));
}

fn bench_vnc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let bits = BitVec::from_bits((0..65_536).map(|_| rng.gen::<f64>() < 0.8));
    c.bench_function("von_neumann_64Kb", |b| {
        b.iter(|| VonNeumannCorrector::correct(std::hint::black_box(&bits)))
    });
}

fn bench_quac_iteration(c: &mut Criterion) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() };
    let mut trng = QuacTrng::from_model(model, cfg, 9);
    c.bench_function("quac_trng_iteration_tiny_module", |b| b.iter(|| trng.iteration()));
}

fn bench_segment_entropy(c: &mut Criterion) {
    let geom = DramGeometry::ddr4_4gb_x8_module();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 3));
    c.bench_function("segment_entropy_64k_bitlines", |b| {
        b.iter(|| {
            model.segment_entropy(
                std::hint::black_box(Segment::new(100)),
                DataPattern::best_average(),
                OperatingConditions::nominal(),
                16,
            )
        })
    });
}

fn bench_nist_suite(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let bits = BitVec::from_bits((0..50_000).map(|_| rng.gen::<bool>()));
    c.bench_function("nist_sts_50kb", |b| b.iter(|| run_all_tests(std::hint::black_box(&bits))));
}

fn bench_memory_system(c: &mut Criterion) {
    let cfg = MemorySystemConfig::paper_system();
    let trace = TraceGenerator::new(SPEC2006_WORKLOADS[2].clone(), cfg.geom, 4).generate_for_cycles(100_000);
    c.bench_function("memory_system_mcf_100k_cycles", |b| {
        b.iter(|| MemorySystem::new(cfg).run_trace(std::hint::black_box(&trace), 100_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sha256, bench_vnc, bench_quac_iteration, bench_segment_entropy,
              bench_nist_suite, bench_memory_system
}
criterion_main!(benches);
