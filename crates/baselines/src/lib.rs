//! # qt-baselines
//!
//! The prior DRAM-based TRNGs the paper compares against (Section 7.4 and
//! Table 2), re-implemented as throughput/latency models on the shared DRAM
//! substrate:
//!
//! * **D-RaNGe** (Kim et al., HPCA 2019) — reduced-tRCD read failures;
//!   *Basic* uses the paper's 4 TRNG cells per cache block, *Enhanced*
//!   characterises cache-block entropy on the simulated chips and adds
//!   SHA-256 post-processing.
//! * **Talukder+** (ICCE 2019) — reduced-tRP (precharge) failures; *Basic*
//!   uses the authors' 130.6 random cells per row, *Enhanced* characterises
//!   row entropy on the simulated chips.
//! * **Low-throughput TRNGs** — D-PUF, Keller+, Pyo+, and DRNG, reproduced as
//!   the analytic models of Section 10.1 / Table 2.
//!
//! Beyond the analytic models, [`generator`] turns the D-RaNGe and
//! retention mechanisms into seeded byte-stream generators
//! ([`DRangeTrng`], [`RetentionTrng`]) implementing
//! `quac_trng::EntropyBackend`, so the RNG service can run them as
//! heterogeneous failover tiers next to the QUAC pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drange;
pub mod generator;
pub mod low_throughput;
pub mod talukder;

pub use drange::DRange;
pub use generator::{DRangeTrng, RetentionTrng};
pub use low_throughput::{LowThroughputTrng, LOW_THROUGHPUT_TRNGS};
pub use talukder::Talukder;

use serde::{Deserialize, Serialize};

/// A row of Table 2 / a curve of Figure 13: one TRNG mechanism evaluated at
/// one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrngComparison {
    /// Mechanism name as it appears in Table 2.
    pub name: String,
    /// Entropy source description.
    pub entropy_source: &'static str,
    /// Per-channel throughput in Gb/s (multiply by channels for Table 2).
    pub throughput_gbps_per_channel: f64,
    /// Latency of producing one 256-bit random number, in nanoseconds.
    pub latency_256bit_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_core::TransferRate;

    #[test]
    fn comparison_rows_are_constructible_for_all_mechanisms() {
        let rate = TransferRate::ddr4_2400();
        let rows = vec![
            DRange::basic().comparison_row(rate),
            DRange::enhanced_default().comparison_row(rate),
            Talukder::basic().comparison_row(rate),
            Talukder::enhanced_default().comparison_row(rate),
        ];
        for row in &rows {
            assert!(row.throughput_gbps_per_channel > 0.0, "{}", row.name);
            assert!(row.latency_256bit_ns > 0.0, "{}", row.name);
        }
        assert_eq!(LOW_THROUGHPUT_TRNGS.len(), 4);
    }
}
