//! D-RaNGe (Kim et al., HPCA 2019): TRNG from reduced-tRCD read failures.

use crate::TrngComparison;
use qt_crypto::Sha256HardwareCost;
use qt_dram_analog::failures::FailureModel;
use qt_dram_core::{DramGeometry, RowAddr, TimingParams, TransferRate, RANDOM_NUMBER_BITS};
use serde::{Deserialize, Serialize};

/// Throughput/latency model of D-RaNGe on a DDR4 channel.
///
/// D-RaNGe repeatedly reads a chosen cache block with violated tRCD; the
/// failed read returns a handful of random bits. The access is bound by the
/// DRAM core cycle (tRC), not the bus, so its throughput barely scales with
/// transfer rate (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DRange {
    /// Random bits harvested per cache-block access.
    pub bits_per_access: f64,
    /// Whether SHA-256 post-processing is applied (the "Enhanced" variant).
    pub post_processed: bool,
    /// Banks (in different bank groups) accessed in parallel.
    pub banks: usize,
}

impl DRange {
    /// D-RaNGe-Basic: the four TRNG cells per cache block reported in the
    /// original paper, no post-processing.
    pub fn basic() -> Self {
        DRange { bits_per_access: 4.0, post_processed: false, banks: 4 }
    }

    /// D-RaNGe-Enhanced with the paper's characterised average of 46.55 bits
    /// of entropy per cache block and SHA-256 post-processing.
    pub fn enhanced_default() -> Self {
        DRange { bits_per_access: 46.55, post_processed: true, banks: 4 }
    }

    /// D-RaNGe-Enhanced with the per-block entropy characterised on a
    /// simulated module (the Section 7.4.1 methodology): the maximum
    /// cache-block entropy under a deeply reduced tRCD, averaged over a
    /// sample of rows.
    pub fn enhanced_from_characterisation(failures: &FailureModel, geom: &DramGeometry) -> Self {
        let mut best = 0.0f64;
        for row in (0..geom.rows_per_bank().min(4096)).step_by(512) {
            for cb in 0..geom.cache_blocks_per_row().min(16) {
                best = best.max(failures.trcd_cache_block_entropy(RowAddr::new(row), cb, 0.3));
            }
        }
        DRange { bits_per_access: best.max(1.0), post_processed: true, banks: 4 }
    }

    /// Duration of one reduced-tRCD access to one bank: the bank must still
    /// complete a full row cycle plus the data burst and the rewrite of the
    /// disturbed block.
    fn access_interval_ns(&self, timing: &TimingParams, rate: TransferRate) -> f64 {
        timing.t_rc + timing.t_rcd + 2.0 * timing.burst_ns(rate)
    }

    /// Per-channel throughput in Gb/s.
    pub fn throughput_gbps_per_channel(&self, rate: TransferRate) -> f64 {
        let timing = TimingParams::for_speed_grade(qt_dram_core::SpeedGrade::Projected(rate.mts()));
        let interval = self.access_interval_ns(&timing, rate);
        // With bank-group parallelism the channel sustains `banks` accesses
        // per bank-cycle, bounded by the four-activate window.
        let accesses_per_ns =
            (self.banks as f64 / interval).min(4.0 / timing.t_faw);
        let useful_bits = if self.post_processed {
            // SHA post-processing lets every entropy bit become an output bit.
            self.bits_per_access
        } else {
            self.bits_per_access
        };
        useful_bits * accesses_per_ns
    }

    /// Latency of one 256-bit random number, in nanoseconds.
    pub fn latency_256bit_ns(&self, rate: TransferRate) -> f64 {
        let timing = TimingParams::for_speed_grade(qt_dram_core::SpeedGrade::Projected(rate.mts()));
        let accesses_needed = (RANDOM_NUMBER_BITS as f64 / self.bits_per_access).ceil();
        let rounds = (accesses_needed / self.banks as f64).ceil();
        let access = 0.4 * timing.t_rcd + timing.burst_ns(rate) + timing.t_cl;
        let sha = if self.post_processed { Sha256HardwareCost::paper_reference().latency_ns() } else { 0.0 };
        rounds * access + sha
    }

    /// The Table 2 row for this configuration at the given rate (per
    /// channel).
    pub fn comparison_row(&self, rate: TransferRate) -> TrngComparison {
        TrngComparison {
            name: if self.post_processed { "D-RaNGe-Enhanced".into() } else { "D-RaNGe-Basic".into() },
            entropy_source: "Activation (tRCD) failure",
            throughput_gbps_per_channel: self.throughput_gbps_per_channel(rate),
            latency_256bit_ns: self.latency_256bit_ns(rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::ModuleVariation;

    #[test]
    fn basic_and_enhanced_magnitudes_match_section_7_4_1() {
        let rate = TransferRate::ddr4_2400();
        let basic_4ch = 4.0 * DRange::basic().throughput_gbps_per_channel(rate);
        let enhanced_4ch = 4.0 * DRange::enhanced_default().throughput_gbps_per_channel(rate);
        // Paper: 0.92 Gb/s and 9.73 Gb/s on the four-channel system.
        assert!(basic_4ch > 0.4 && basic_4ch < 2.0, "basic {basic_4ch}");
        assert!(enhanced_4ch > 6.0 && enhanced_4ch < 14.0, "enhanced {enhanced_4ch}");
        assert!(enhanced_4ch > 8.0 * basic_4ch);
    }

    #[test]
    fn throughput_is_latency_bound_and_barely_scales() {
        let d = DRange::enhanced_default();
        let slow = d.throughput_gbps_per_channel(TransferRate::ddr4_2400());
        let fast = d.throughput_gbps_per_channel(TransferRate::from_mts(12_000).unwrap());
        assert!(fast < 1.5 * slow, "slow {slow} fast {fast}");
        assert!(fast >= slow);
    }

    #[test]
    fn latency_is_tens_of_ns_enhanced_and_hundreds_basic() {
        let rate = TransferRate::ddr4_2400();
        let enhanced = DRange::enhanced_default().latency_256bit_ns(rate);
        let basic = DRange::basic().latency_256bit_ns(rate);
        assert!(enhanced > 15.0 && enhanced < 90.0, "enhanced latency {enhanced}");
        assert!(basic > 150.0 && basic < 500.0, "basic latency {basic}");
    }

    #[test]
    fn characterised_enhanced_variant_is_same_order_as_default() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let failures = FailureModel::new(ModuleVariation::generate(&geom, 12));
        let d = DRange::enhanced_from_characterisation(&failures, &geom);
        assert!(d.bits_per_access > 10.0 && d.bits_per_access < 150.0, "bits {}", d.bits_per_access);
    }
}
