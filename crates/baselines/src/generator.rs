//! Sampling **generators** for the baseline mechanisms — not just the
//! analytic throughput models of Table 2, but seeded byte-stream sources
//! that plug into the RNG service as [`EntropyBackend`] tiers next to the
//! QUAC pipeline.
//!
//! Both generators follow the same shape as `QuacTrng`:
//!
//! * a per-bitline one-probability vector derived from the characterised
//!   analog model ([`FailureModel`] activation-latency failures for
//!   [`DRangeTrng`], [`RetentionModel`] pause failures for
//!   [`RetentionTrng`]),
//! * the word-parallel [`PackedSampler`] hot path over a seeded
//!   [`NoiseRng`], pinned bit-identical to the scalar
//!   [`sample_reference`] walk,
//! * SHA-256 2:1 conditioning of each harvested row image (64-byte raw
//!   blocks → 32-byte digests, batched through `qt_crypto::batch`),
//! * the `QuacTrng` fault seam: an injected [`FaultInjector`] corrupts
//!   delivered bytes as a pure function of the absolute stream offset, so
//!   chaos campaigns drive every tier with the same machinery.
//!
//! Each generator carries a frozen `fill_bytes_reference` twin (scalar
//! sampling + scalar hashing) and the stream contract is: same
//! construction, same bytes, regardless of how reads slice the stream.

use crate::drange::DRange;
use crate::talukder::Talukder;
use qt_crypto::batch::digest_many_into;
use qt_crypto::sha256::{Sha256, Sha256Digest};
use qt_dram_analog::sampler::{sample_reference, PackedSampler};
use qt_dram_analog::{FailureModel, NoiseRng, RetentionModel};
use qt_dram_core::{BitVec, DramGeometry, RowAddr, TransferRate};
use quac_trng::backend::{BackendClass, BackendKind, EntropyBackend};
use quac_trng::characterize::CharacterizationConfig;
use quac_trng::fault::FaultInjector;
use std::collections::VecDeque;

/// tRCD fraction the D-RaNGe generator reads at — matches the operating
/// point `DRange::enhanced_from_characterisation` scans entropy at.
const TRCD_FRACTION: f64 = 0.3;

/// Worst-case operating temperature the retention generator harvests at
/// (retention times halve every ~10 °C, so the hot corner fails fastest).
const RETENTION_TEMP_C: f64 = 85.0;

/// Row-candidate scan: stride and cap, mirroring the characterised-baseline
/// scan in `DRange::enhanced_from_characterisation`.
const CANDIDATE_ROW_STRIDE: usize = 512;
const MAX_CANDIDATE_ROWS: usize = 16;

/// Rows harvested per retention pause — one "burst" of the slow tier.
const RETENTION_BURST_ROWS: usize = 4;

/// The rows `0, 512, 1024, …` a generator considers when picking its
/// harvest rows (always at least row 0).
fn candidate_rows(geom: &DramGeometry) -> impl Iterator<Item = usize> {
    (0..geom.rows_per_bank().max(1))
        .step_by(CANDIDATE_ROW_STRIDE)
        .take(MAX_CANDIDATE_ROWS)
}

/// Shared engine of both generators: probability-vector sampling through
/// [`PackedSampler`], SHA-256 2:1 conditioning, a byte buffer, and the
/// delivery-boundary fault seam.
#[derive(Debug)]
struct SampledStream {
    /// The per-bit one-probabilities — kept for the scalar reference twin.
    probs: Vec<f64>,
    sampler: PackedSampler,
    rng: NoiseRng,
    raw: BitVec,
    raw_bytes: Vec<u8>,
    digests: Vec<Sha256Digest>,
    buffer: VecDeque<u8>,
    fault: Option<FaultInjector>,
    delivered: u64,
    /// Raw fresh entropy bits sampled so far: the row image's metastable
    /// bits, once per harvest. Monotone across restarts (the physics
    /// consumed never rewinds) — the RNG service's entropy ledger takes
    /// deltas of this counter.
    fresh_bits: u64,
}

impl SampledStream {
    fn new(probs: Vec<f64>, seed: u64) -> Self {
        let sampler = PackedSampler::new(&probs);
        assert!(
            sampler.metastable_bits() > 0,
            "harvest rows carry no metastable bits; the stream would be constant"
        );
        let raw = BitVec::zeros(probs.len());
        SampledStream {
            probs,
            sampler,
            rng: NoiseRng::new(seed),
            raw,
            raw_bytes: Vec::new(),
            digests: Vec::new(),
            buffer: VecDeque::new(),
            fault: None,
            delivered: 0,
            fresh_bits: 0,
        }
    }

    /// One harvest on the word-parallel hot path: sample every bit of the
    /// row image, pack to bytes, condition 64-byte blocks to 32-byte
    /// digests with the batched SHA-256.
    fn harvest(&mut self) {
        self.fresh_bits += self.sampler.metastable_bits() as u64;
        self.sampler.sample_into(&mut self.raw, &mut self.rng);
        self.raw
            .extract_bytes_into(0, self.raw.len(), &mut self.raw_bytes);
        let blocks: Vec<&[u8]> = self.raw_bytes.chunks(64).collect();
        self.digests.clear();
        digest_many_into(&blocks, &mut self.digests);
        for digest in &self.digests {
            self.buffer.extend(digest);
        }
    }

    /// The frozen scalar twin of [`SampledStream::harvest`]: per-bit
    /// threshold walk + one-message SHA-256. Bit-identical to the hot path
    /// for the same RNG state (the sampler proptests pin the sampling leg,
    /// the crypto batch tests pin the hashing leg).
    fn harvest_reference(&mut self) {
        self.fresh_bits += self.sampler.metastable_bits() as u64;
        let raw = sample_reference(&self.probs, &mut self.rng);
        let bytes = raw.to_bytes();
        for chunk in bytes.chunks(64) {
            self.buffer.extend(&Sha256::digest(chunk));
        }
    }

    fn fill(&mut self, out: &mut [u8], reference: bool) {
        let mut filled = 0;
        while filled < out.len() {
            if self.buffer.is_empty() {
                if reference {
                    self.harvest_reference();
                } else {
                    self.harvest();
                }
            }
            let take = self.buffer.len().min(out.len() - filled);
            for (slot, byte) in out[filled..filled + take]
                .iter_mut()
                .zip(self.buffer.drain(..take))
            {
                *slot = byte;
            }
            filled += take;
        }
        if let Some(fault) = &self.fault {
            fault.corrupt(self.delivered, out);
        }
        self.delivered += out.len() as u64;
    }

    /// The requalification restart: drop buffered output from the old
    /// configuration and clear transient faults, like
    /// `QuacTrng::recharacterize`. The noise stream continues (the new
    /// epoch is a fresh, still-deterministic stream).
    fn restart(&mut self) {
        self.buffer.clear();
        if self.fault.is_some_and(|f| f.cleared_on_recharacterize) {
            self.fault = None;
        }
    }
}

/// Counts the bits of a probability row that quantize to a metastable
/// threshold — the row-selection score of both generators.
fn metastable_count(probs: &[f64]) -> usize {
    PackedSampler::new(probs).metastable_bits()
}

/// A D-RaNGe-style generator (Kim et al., HPCA 2019): reads a chosen row
/// with a sharply reduced tRCD and harvests the activation-latency failure
/// pattern, one row image per harvest, SHA-256 conditioned 2:1.
///
/// Low latency (one reduced-tRCD read per number), lower throughput than
/// QUAC — the latency-sensitive tier of the entropy mesh.
#[derive(Debug)]
pub struct DRangeTrng {
    stream: SampledStream,
    class: BackendClass,
}

impl DRangeTrng {
    /// Builds the generator on a characterised failure model: scans the
    /// candidate rows for the one with the most metastable bitlines at
    /// `TRCD_FRACTION`, and advertises the throughput/latency class of
    /// the characterised Enhanced D-RaNGe analytic model.
    pub fn new(failures: &FailureModel, geom: &DramGeometry, seed: u64) -> Self {
        let row_probs = |row: usize| -> Vec<f64> {
            (0..geom.row_bits)
                .map(|bl| failures.trcd_read_one_probability(RowAddr::new(row), bl, TRCD_FRACTION))
                .collect()
        };
        let best = candidate_rows(geom)
            .max_by_key(|&row| metastable_count(&row_probs(row)))
            .expect("at least one candidate row");
        let rate = TransferRate::ddr4_2400();
        let analytic = DRange::enhanced_from_characterisation(failures, geom);
        DRangeTrng {
            stream: SampledStream::new(row_probs(best), seed),
            class: BackendClass {
                kind: BackendKind::DRange,
                throughput_gbps: analytic.throughput_gbps_per_channel(rate),
                latency_256bit_ns: analytic.latency_256bit_ns(rate),
            },
        }
    }

    /// Fills `out` with the next bytes of the deterministic stream (the
    /// word-parallel hot path), applying any injected fault.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.stream.fill(out, false);
    }

    /// The frozen scalar twin of [`DRangeTrng::fill_bytes`] — same stream,
    /// bit for bit, for the same construction.
    pub fn fill_bytes_reference(&mut self, out: &mut [u8]) {
        self.stream.fill(out, true);
    }

    /// Convenience wrapper: the next `count` stream bytes.
    pub fn generate_bytes(&mut self, count: usize) -> Vec<u8> {
        let mut out = vec![0u8; count];
        self.fill_bytes(&mut out);
        out
    }
}

impl EntropyBackend for DRangeTrng {
    fn fill_bytes(&mut self, out: &mut [u8]) {
        DRangeTrng::fill_bytes(self, out);
    }

    fn recharacterize(&mut self, _cfg: &CharacterizationConfig) {
        self.stream.restart();
    }

    fn class(&self) -> BackendClass {
        self.class
    }

    fn inject_fault(&mut self, fault: FaultInjector) {
        self.stream.fault = Some(fault);
    }

    fn clear_fault(&mut self) {
        self.stream.fault = None;
    }

    fn delivered_bytes(&self) -> u64 {
        self.stream.delivered
    }

    fn fresh_bits_drawn(&self) -> u64 {
        self.stream.fresh_bits
    }

    fn buffered_bytes(&self) -> usize {
        self.stream.buffer.len()
    }
}

/// A retention-based generator in the style of Talukder+ (ICCE 2019):
/// pauses refresh on a set of harvest rows, reads back the retention
/// failure pattern, and conditions it with SHA-256. Each harvest models one
/// multi-row pause burst — very slow and bursty, the last-resort tier of
/// the entropy mesh.
#[derive(Debug)]
pub struct RetentionTrng {
    stream: SampledStream,
    class: BackendClass,
    /// The simulated refresh pause per burst, in seconds (chosen at the
    /// median cell retention time so the failure pattern is maximally
    /// undetermined).
    pause_s: f64,
}

impl RetentionTrng {
    /// Builds the generator on a retention model: picks the pause at the
    /// median retention time of the candidate rows' cells (centering the
    /// per-cell failure probabilities around 1/2), then harvests the
    /// `RETENTION_BURST_ROWS` rows with the most metastable cells.
    pub fn new(retention: &RetentionModel, geom: &DramGeometry, seed: u64) -> Self {
        let mut times: Vec<f64> = candidate_rows(geom)
            .flat_map(|row| {
                (0..geom.row_bits)
                    .step_by(64)
                    .map(move |bl| (row, bl))
                    .collect::<Vec<_>>()
            })
            .map(|(row, bl)| retention.retention_time_s(RowAddr::new(row), bl, RETENTION_TEMP_C))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("retention times are finite"));
        let pause_s = times[times.len() / 2];
        let row_probs = |row: usize| -> Vec<f64> {
            (0..geom.row_bits)
                .map(|bl| {
                    retention.failure_probability(RowAddr::new(row), bl, pause_s, RETENTION_TEMP_C)
                })
                .collect()
        };
        let mut rows: Vec<usize> = candidate_rows(geom).collect();
        rows.sort_by_key(|&row| std::cmp::Reverse(metastable_count(&row_probs(row))));
        rows.truncate(RETENTION_BURST_ROWS.max(1));
        // Deterministic harvest order: ascending row within the winner set.
        rows.sort_unstable();
        let probs: Vec<f64> = rows.iter().flat_map(|&row| row_probs(row)).collect();
        let rate = TransferRate::ddr4_2400();
        let analytic = Talukder::enhanced_default();
        RetentionTrng {
            stream: SampledStream::new(probs, seed),
            class: BackendClass {
                kind: BackendKind::Retention,
                throughput_gbps: analytic.throughput_gbps_per_channel(rate),
                latency_256bit_ns: analytic.latency_256bit_ns(rate),
            },
            pause_s,
        }
    }

    /// The simulated refresh pause per harvest burst, in seconds.
    pub fn pause_s(&self) -> f64 {
        self.pause_s
    }

    /// Fills `out` with the next bytes of the deterministic stream (the
    /// word-parallel hot path), applying any injected fault.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.stream.fill(out, false);
    }

    /// The frozen scalar twin of [`RetentionTrng::fill_bytes`] — same
    /// stream, bit for bit, for the same construction.
    pub fn fill_bytes_reference(&mut self, out: &mut [u8]) {
        self.stream.fill(out, true);
    }

    /// Convenience wrapper: the next `count` stream bytes.
    pub fn generate_bytes(&mut self, count: usize) -> Vec<u8> {
        let mut out = vec![0u8; count];
        self.fill_bytes(&mut out);
        out
    }
}

impl EntropyBackend for RetentionTrng {
    fn fill_bytes(&mut self, out: &mut [u8]) {
        RetentionTrng::fill_bytes(self, out);
    }

    fn recharacterize(&mut self, _cfg: &CharacterizationConfig) {
        self.stream.restart();
    }

    fn class(&self) -> BackendClass {
        self.class
    }

    fn inject_fault(&mut self, fault: FaultInjector) {
        self.stream.fault = Some(fault);
    }

    fn clear_fault(&mut self) {
        self.stream.fault = None;
    }

    fn delivered_bytes(&self) -> u64 {
        self.stream.delivered
    }

    fn fresh_bits_drawn(&self) -> u64 {
        self.stream.fresh_bits
    }

    fn buffered_bytes(&self) -> usize {
        self.stream.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qt_dram_analog::ModuleVariation;

    fn tiny_failures() -> (FailureModel, DramGeometry) {
        let geom = DramGeometry::tiny_test();
        (FailureModel::new(ModuleVariation::generate(&geom, 5)), geom)
    }

    fn tiny_retention() -> (RetentionModel, DramGeometry) {
        let geom = DramGeometry::tiny_test();
        (
            RetentionModel::new(ModuleVariation::generate(&geom, 5)),
            geom,
        )
    }

    #[test]
    fn drange_stream_is_deterministic_and_slicing_invariant() {
        let (failures, geom) = tiny_failures();
        let mut a = DRangeTrng::new(&failures, &geom, 77);
        let mut b = DRangeTrng::new(&failures, &geom, 77);
        let one = a.generate_bytes(1024);
        let mut many = vec![0u8; 1024];
        for chunk in many.chunks_mut(100) {
            b.fill_bytes(chunk);
        }
        assert_eq!(one, many);
        assert_eq!(EntropyBackend::delivered_bytes(&a), 1024);
        let mut c = DRangeTrng::new(&failures, &geom, 78);
        assert_ne!(one, c.generate_bytes(1024), "seeds decorrelate streams");
    }

    #[test]
    fn retention_stream_is_deterministic_and_bursty() {
        let (retention, geom) = tiny_retention();
        let mut a = RetentionTrng::new(&retention, &geom, 9);
        let mut b = RetentionTrng::new(&retention, &geom, 9);
        assert!(a.pause_s() > 0.0);
        assert_eq!(a.generate_bytes(4096), b.generate_bytes(4096));
        // One burst conditions half the multi-row image: 32 bytes per
        // 64-byte block of RETENTION_BURST_ROWS rows — 1024 bytes on the
        // tiny geometry, so 4096 delivered bytes drain exactly 4 bursts.
        let burst = RETENTION_BURST_ROWS * geom.row_bits / 16;
        assert_eq!(4096 % burst, 0);
        assert_eq!(a.stream.buffer.len(), 0);
    }

    #[test]
    fn classes_rank_the_tiers_like_table_2() {
        let (failures, geom) = tiny_failures();
        let (retention, _) = tiny_retention();
        let d = DRangeTrng::new(&failures, &geom, 1);
        let r = RetentionTrng::new(&retention, &geom, 1);
        assert_eq!(d.class().kind, BackendKind::DRange);
        assert_eq!(r.class().kind, BackendKind::Retention);
        assert!(d.class().throughput_gbps > r.class().throughput_gbps);
        assert!(d.class().latency_256bit_ns < r.class().latency_256bit_ns);
    }

    #[test]
    fn fault_seam_is_slicing_invariant_and_transient_faults_clear() {
        let (failures, geom) = tiny_failures();
        let mut a = DRangeTrng::new(&failures, &geom, 3);
        let mut b = DRangeTrng::new(&failures, &geom, 3);
        EntropyBackend::inject_fault(&mut a, FaultInjector::stuck_at(0, true));
        EntropyBackend::inject_fault(&mut b, FaultInjector::stuck_at(0, true));
        let one = a.generate_bytes(512);
        let mut many = vec![0u8; 512];
        for chunk in many.chunks_mut(37) {
            b.fill_bytes(chunk);
        }
        assert_eq!(one, many);
        assert!(one.iter().all(|byte| byte & 1 == 1));
        EntropyBackend::inject_fault(&mut a, FaultInjector::stuck_at(0, true).transient());
        EntropyBackend::recharacterize(&mut a, &CharacterizationConfig::fast());
        assert!(a.generate_bytes(512).iter().any(|byte| byte & 1 == 0));
    }

    proptest! {
        /// The tentpole pin: the word-parallel hot path and the frozen
        /// scalar reference twin emit bit-identical streams for the same
        /// seed, under arbitrary read slicing.
        #[test]
        fn prop_drange_hot_path_matches_scalar_reference(
            seed in any::<u64>(),
            cuts in proptest::collection::vec(1usize..512, 1..6),
        ) {
            let (failures, geom) = tiny_failures();
            let mut fast = DRangeTrng::new(&failures, &geom, seed);
            let mut reference = DRangeTrng::new(&failures, &geom, seed);
            let total: usize = cuts.iter().sum();
            let mut sliced = vec![0u8; total];
            let mut at = 0;
            for cut in &cuts {
                fast.fill_bytes(&mut sliced[at..at + cut]);
                at += cut;
            }
            let mut whole = vec![0u8; total];
            reference.fill_bytes_reference(&mut whole);
            prop_assert_eq!(sliced, whole);
        }

        /// Same pin for the retention tier.
        #[test]
        fn prop_retention_hot_path_matches_scalar_reference(seed in any::<u64>()) {
            let (retention, geom) = tiny_retention();
            let mut fast = RetentionTrng::new(&retention, &geom, seed);
            let mut reference = RetentionTrng::new(&retention, &geom, seed);
            let mut a = vec![0u8; 3000];
            let mut b = vec![0u8; 3000];
            fast.fill_bytes(&mut a);
            reference.fill_bytes_reference(&mut b);
            prop_assert_eq!(a, b);
        }
    }
}
