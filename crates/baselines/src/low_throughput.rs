//! Low-throughput DRAM TRNGs (Section 10.1, bottom half of Table 2).

use crate::TrngComparison;
use serde::{Deserialize, Serialize};

/// An analytically modelled low-throughput DRAM TRNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowThroughputTrng {
    /// Mechanism name as in Table 2.
    pub name: &'static str,
    /// Entropy source description.
    pub entropy_source: &'static str,
    /// System-level throughput in Mb/s (`None` for mechanisms that cannot
    /// stream, e.g. start-up values).
    pub throughput_mbps: Option<f64>,
    /// Latency of a 256-bit random number, in nanoseconds.
    pub latency_256bit_ns: f64,
}

impl LowThroughputTrng {
    /// The Table 2 row (throughput converted to Gb/s, zero when not
    /// streamable).
    pub fn comparison_row(&self) -> TrngComparison {
        TrngComparison {
            name: self.name.to_string(),
            entropy_source: self.entropy_source,
            throughput_gbps_per_channel: self.throughput_mbps.unwrap_or(0.0) / 1000.0 / 4.0,
            latency_256bit_ns: self.latency_256bit_ns,
        }
    }
}

/// The four low-throughput mechanisms of Table 2 with the paper's reported
/// (or derived) numbers: D-PUF (retention, 40 s pauses), Keller+ (retention,
/// 320 s pauses), Pyo+ (command-schedule jitter), and DRNG (start-up values).
pub static LOW_THROUGHPUT_TRNGS: &[LowThroughputTrng] = &[
    LowThroughputTrng {
        name: "D-PUF",
        entropy_source: "Retention failure",
        throughput_mbps: Some(0.20),
        latency_256bit_ns: 40.0e9,
    },
    LowThroughputTrng {
        name: "Keller+",
        entropy_source: "Retention failure",
        throughput_mbps: Some(0.025),
        latency_256bit_ns: 320.0e9,
    },
    LowThroughputTrng {
        name: "Pyo+",
        entropy_source: "DRAM command schedule",
        throughput_mbps: Some(2.17),
        latency_256bit_ns: 112.5e3,
    },
    LowThroughputTrng {
        name: "DRNG",
        entropy_source: "DRAM start-up values",
        throughput_mbps: None,
        latency_256bit_ns: 700.0e3,
    },
];

/// Derives Pyo+'s peak throughput from its reported cost of 45 000 CPU cycles
/// per 8-bit random number on a `core_ghz` core (Section 10.1).
pub fn pyo_throughput_mbps(core_ghz: f64) -> f64 {
    let numbers_per_second = core_ghz * 1.0e9 / 45_000.0;
    numbers_per_second * 8.0 / 1.0e6
}

/// Derives a retention TRNG's throughput (Mb/s) from its refresh-pause window
/// and the number of regions harvested per window (the D-PUF / Keller+
/// analysis of Section 10.1).
pub fn retention_throughput_mbps(regions: f64, bits_per_region: f64, pause_s: f64) -> f64 {
    regions * bits_per_region / pause_s / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_paper_magnitudes() {
        let by_name = |n: &str| LOW_THROUGHPUT_TRNGS.iter().find(|t| t.name == n).unwrap();
        assert_eq!(by_name("D-PUF").throughput_mbps, Some(0.20));
        assert_eq!(by_name("Keller+").throughput_mbps, Some(0.025));
        assert!(by_name("DRNG").throughput_mbps.is_none());
        assert!(by_name("Pyo+").latency_256bit_ns > 1.0e5);
        // Retention TRNG latencies are tens to hundreds of seconds.
        assert!(by_name("D-PUF").latency_256bit_ns >= 40.0e9);
    }

    #[test]
    fn pyo_throughput_matches_reported_value() {
        // 3.2 GHz core, 45 000 cycles per 8-bit number -> ≈ 0.57 Mb/s per
        // core; the paper's 2.17 Mb/s assumes the 4-channel system's cores.
        let one_core = pyo_throughput_mbps(3.2);
        assert!((one_core - 0.569).abs() < 0.01, "{one_core}");
        assert!((4.0 * one_core - 2.17).abs() < 0.15);
    }

    #[test]
    fn retention_throughput_formula() {
        // All 32K 4-MiB regions of a 128 GiB system, 256 bits each per 40 s
        // pause ≈ 0.2 Mb/s (D-PUF's optimistic peak).
        let tp = retention_throughput_mbps(32.0 * 1024.0, 256.0, 40.0);
        assert!((tp - 0.2097).abs() < 0.01, "{tp}");
    }

    #[test]
    fn comparison_rows_convert_units() {
        let row = LOW_THROUGHPUT_TRNGS[0].comparison_row();
        assert!(row.throughput_gbps_per_channel < 0.001);
        assert_eq!(row.name, "D-PUF");
    }
}
