//! Talukder+ (ICCE 2019): TRNG from reduced-tRP (precharge) failures.

use crate::TrngComparison;
use qt_crypto::Sha256HardwareCost;
use qt_dram_analog::failures::FailureModel;
use qt_dram_core::{DramGeometry, RowAddr, TimingParams, TransferRate, RANDOM_NUMBER_BITS};
use serde::{Deserialize, Serialize};

/// Throughput/latency model of Talukder+'s precharge-failure TRNG.
///
/// The mechanism induces precharge-latency failures on whole rows, reads the
/// rows out, and hashes them. Reading whole rows makes it data-bus bound, so
/// (like QUAC-TRNG) it scales with transfer rate (Figure 13) — but each row
/// carries far less entropy than a QUAC segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Talukder {
    /// Useful random bits harvested per row read.
    pub bits_per_row: f64,
    /// Whether the harvested bits already passed SHA-256 (Enhanced) or are
    /// raw random cells (Basic).
    pub post_processed: bool,
    /// Banks accessed in parallel.
    pub banks: usize,
}

impl Talukder {
    /// Talukder+-Basic: the authors report 130.6 random cells per row, and
    /// three rows must be read per 256-bit number.
    pub fn basic() -> Self {
        Talukder { bits_per_row: 256.0 / 3.0, post_processed: false, banks: 4 }
    }

    /// Talukder+-Enhanced: the Section 7.4.2 characterisation harvests
    /// ≈ 1023.64 bits of entropy per high-entropy row (3 SHA input blocks).
    pub fn enhanced_default() -> Self {
        Talukder { bits_per_row: 3.0 * RANDOM_NUMBER_BITS as f64, post_processed: true, banks: 4 }
    }

    /// Talukder+-Enhanced with the row entropy characterised on a simulated
    /// module: the maximum row entropy under a deeply reduced tRP, rounded
    /// down to whole SHA input blocks.
    pub fn enhanced_from_characterisation(failures: &FailureModel, geom: &DramGeometry) -> Self {
        let mut best = 0.0f64;
        for row in (0..geom.rows_per_bank().min(4096)).step_by(512) {
            best = best.max(failures.trp_row_entropy(RowAddr::new(row), 0.2, 64));
        }
        let blocks = (best / RANDOM_NUMBER_BITS as f64).floor().max(1.0);
        Talukder { bits_per_row: blocks * RANDOM_NUMBER_BITS as f64, post_processed: true, banks: 4 }
    }

    /// Time to process one row: induce the failure (a row cycle), read the
    /// full row over the bus, and re-initialise it with an in-DRAM copy.
    /// With bank-group parallelism the data bus is the bottleneck.
    fn row_interval_ns(&self, timing: &TimingParams, rate: TransferRate, geom: &DramGeometry) -> f64 {
        let read_bus = geom.cache_blocks_per_row() as f64 * timing.burst_ns(rate);
        let per_bank_core = 2.0 * timing.t_rc + geom.cache_blocks_per_row() as f64 * timing.t_ccd_l.max(timing.burst_ns(rate));
        // `banks` rows are processed while the bus serializes their reads.
        read_bus.max(per_bank_core / self.banks as f64)
    }

    /// Per-channel throughput in Gb/s.
    pub fn throughput_gbps_per_channel(&self, rate: TransferRate) -> f64 {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let timing = TimingParams::for_speed_grade(qt_dram_core::SpeedGrade::Projected(rate.mts()));
        self.bits_per_row / self.row_interval_ns(&timing, rate, &geom)
    }

    /// Latency of one 256-bit random number, in nanoseconds.
    pub fn latency_256bit_ns(&self, rate: TransferRate) -> f64 {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let timing = TimingParams::for_speed_grade(qt_dram_core::SpeedGrade::Projected(rate.mts()));
        let rows_needed = (RANDOM_NUMBER_BITS as f64 / self.bits_per_row).ceil().max(1.0);
        // Only the cache blocks holding the needed entropy must be read for
        // the first number.
        let blocks_needed =
            (geom.cache_blocks_per_row() as f64 / (self.bits_per_row / RANDOM_NUMBER_BITS as f64).max(1.0)).ceil();
        let read = blocks_needed * timing.t_ccd_l.max(timing.burst_ns(rate)) + timing.t_cl;
        let sha = Sha256HardwareCost::paper_reference().latency_ns();
        rows_needed * (timing.t_rp * 0.3 + timing.t_rcd) + read + sha
    }

    /// The Table 2 row for this configuration at the given rate (per
    /// channel).
    pub fn comparison_row(&self, rate: TransferRate) -> TrngComparison {
        TrngComparison {
            name: if self.post_processed { "Talukder+-Enhanced".into() } else { "Talukder+-Basic".into() },
            entropy_source: "Precharge (tRP) failure",
            throughput_gbps_per_channel: self.throughput_gbps_per_channel(rate),
            latency_256bit_ns: self.latency_256bit_ns(rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::ModuleVariation;

    #[test]
    fn basic_and_enhanced_magnitudes_match_section_7_4_2() {
        let rate = TransferRate::ddr4_2400();
        let basic_4ch = 4.0 * Talukder::basic().throughput_gbps_per_channel(rate);
        let enhanced_4ch = 4.0 * Talukder::enhanced_default().throughput_gbps_per_channel(rate);
        // Paper: 0.68 Gb/s and 6.13 Gb/s on the four-channel system.
        assert!(basic_4ch > 0.4 && basic_4ch < 1.3, "basic {basic_4ch}");
        assert!(enhanced_4ch > 4.0 && enhanced_4ch < 9.0, "enhanced {enhanced_4ch}");
    }

    #[test]
    fn throughput_scales_with_transfer_rate() {
        let t = Talukder::enhanced_default();
        let slow = t.throughput_gbps_per_channel(TransferRate::ddr4_2400());
        let fast = t.throughput_gbps_per_channel(TransferRate::from_mts(12_000).unwrap());
        // Bandwidth-bound: large gains from a faster bus (Figure 13).
        assert!(fast > 2.0 * slow, "slow {slow} fast {fast}");
    }

    #[test]
    fn latency_is_a_couple_hundred_ns() {
        let rate = TransferRate::ddr4_2400();
        let basic = Talukder::basic().latency_256bit_ns(rate);
        let enhanced = Talukder::enhanced_default().latency_256bit_ns(rate);
        // Paper: 249 ns (basic) and 201 ns (enhanced).
        assert!(basic > 120.0 && basic < 900.0, "basic {basic}");
        assert!(enhanced > 80.0 && enhanced < 400.0, "enhanced {enhanced}");
        assert!(enhanced < basic);
    }

    #[test]
    fn characterised_variant_harvests_whole_sha_blocks() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let failures = FailureModel::new(ModuleVariation::generate(&geom, 55));
        let t = Talukder::enhanced_from_characterisation(&failures, &geom);
        assert!(t.bits_per_row >= 256.0);
        assert_eq!(t.bits_per_row as usize % 256, 0);
    }
}
