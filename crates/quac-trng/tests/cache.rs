//! Failure-path and exactness tests of the characterisation store, driven
//! purely through its public API: a cached load must equal a fresh
//! `characterize_module` to the last `f64` bit, and *any* corrupt or
//! truncated entry must silently fall back to recomputation.

use quac_trng::cache::CharacterizationCache;
use quac_trng::characterize::{characterize_module, CharacterizationConfig};
use qt_dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use qt_dram_core::{DataPattern, DramGeometry};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "quac-cache-integration-{tag}-{}-{unique}",
        std::process::id()
    ))
}

fn tiny_model(seed: u64) -> QuacAnalogModel {
    let geom = DramGeometry::tiny_test();
    QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, seed))
}

fn cfg() -> CharacterizationConfig {
    CharacterizationConfig {
        segment_stride: 2,
        bitline_stride: 4,
        conditions: OperatingConditions::nominal(),
    }
}

/// Bit-for-bit equality of every `f64` in two characterisations — stricter
/// than `==` (which would accept `-0.0 == 0.0` and reject NaN == NaN).
fn assert_f64_exact(
    a: &quac_trng::ModuleCharacterization,
    b: &quac_trng::ModuleCharacterization,
) {
    assert_eq!(a.pattern, b.pattern);
    assert_eq!(a.best_segment, b.best_segment);
    assert_eq!(a.best_segment_entropy.to_bits(), b.best_segment_entropy.to_bits());
    assert_eq!(a.conditions.temperature_c.to_bits(), b.conditions.temperature_c.to_bits());
    assert_eq!(a.conditions.age_days.to_bits(), b.conditions.age_days.to_bits());
    assert_eq!(a.segment_entropy.len(), b.segment_entropy.len());
    for ((sa, ea), (sb, eb)) in a.segment_entropy.iter().zip(&b.segment_entropy) {
        assert_eq!(sa, sb);
        assert_eq!(ea.to_bits(), eb.to_bits(), "segment {sa} entropy differs in bits");
    }
    assert_eq!(a.best_segment_cache_blocks.len(), b.best_segment_cache_blocks.len());
    for (i, (ea, eb)) in
        a.best_segment_cache_blocks.iter().zip(&b.best_segment_cache_blocks).enumerate()
    {
        assert_eq!(ea.to_bits(), eb.to_bits(), "cache block {i} entropy differs in bits");
    }
}

#[test]
fn cached_load_equals_fresh_parallel_characterisation_f64_exactly() {
    let dir = scratch_dir("exact");
    let cache = CharacterizationCache::new(&dir);
    let model = tiny_model(1234);
    let pattern = DataPattern::best_average();

    let stored = cache.load_or_characterize("Mexact", &model, pattern, &cfg());
    let fresh = characterize_module(&model, pattern, &cfg());
    assert_f64_exact(&stored, &fresh);

    // The second call must hit the disk entry (remove the directory and a
    // third call silently recomputes — proving the second really loaded).
    let loaded = cache.load_or_characterize("Mexact", &model, pattern, &cfg());
    assert_f64_exact(&loaded, &fresh);

    let path = cache.entry_path("Mexact", &model, pattern, &cfg());
    assert!(path.exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entries_at_every_prefix_fall_back_to_recomputation() {
    let dir = scratch_dir("truncate");
    let cache = CharacterizationCache::new(&dir);
    let model = tiny_model(9);
    let pattern = DataPattern::best_average();
    let expected = cache.load_or_characterize("Mtrunc", &model, pattern, &cfg());
    let path = cache.entry_path("Mtrunc", &model, pattern, &cfg());
    let full = fs::read(&path).expect("entry stored");

    // Cut the stored file at a spread of byte lengths, from empty up to one
    // byte short of complete: no prefix may ever produce a wrong
    // characterisation or a panic. Every cut except `len - 1` loses data and
    // must be rejected and rewritten; cutting only the final newline leaves
    // a still-complete entry ("end" remains the last line), which may load.
    let cuts: Vec<usize> =
        (0..full.len()).step_by(full.len().div_ceil(40).max(1)).chain([full.len() - 1]).collect();
    for cut in cuts {
        fs::write(&path, &full[..cut]).unwrap();
        let recovered = cache.load_or_characterize("Mtrunc", &model, pattern, &cfg());
        assert_f64_exact(&recovered, &expected);
        if cut < full.len() - 1 {
            // The fallback also rewrites a valid entry.
            let rewritten = fs::read(&path).expect("entry restored after truncation");
            assert_eq!(rewritten, full, "cut at {cut} bytes left a stale entry behind");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_field_values_fall_back_to_recomputation() {
    let dir = scratch_dir("corrupt-fields");
    let cache = CharacterizationCache::new(&dir);
    let model = tiny_model(77);
    let pattern = DataPattern::best_average();
    let expected = cache.load_or_characterize("Mcorrupt", &model, pattern, &cfg());
    let path = cache.entry_path("Mcorrupt", &model, pattern, &cfg());
    let good = fs::read_to_string(&path).unwrap();

    let corruptions: Vec<String> = vec![
        // Wrong magic line.
        good.replacen("quac-characterization v1", "quac-characterization v0", 1),
        // Stored pattern disagrees with the requested one.
        good.replacen(&format!("pattern {pattern}"), "pattern 0000", 1),
        // Non-hex garbage where an f64 bit pattern belongs.
        good.replacen("best_segment_entropy ", "best_segment_entropy zzzz-", 1),
        // Conditions that do not match the requested configuration.
        good.replacen("conditions ", "conditions 0000000000000000 ", 1),
        // Claimed segment count larger than the lines that follow.
        good.replacen("segments ", "segments 9", 1),
        // Missing terminator.
        good.replacen("end\n", "", 1),
        // Binary noise.
        "\u{0}\u{1}\u{2}garbage".to_string(),
    ];
    for (i, text) in corruptions.iter().enumerate() {
        fs::write(&path, text).unwrap();
        let recovered = cache.load_or_characterize("Mcorrupt", &model, pattern, &cfg());
        assert_f64_exact(&recovered, &expected);
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            good,
            "corruption #{i} was not replaced by a fresh entry"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_store_directory_still_characterises() {
    // Pointing the store at a path that exists as a *file* makes every read
    // and write fail; characterisation itself must still succeed.
    let dir = scratch_dir("not-a-dir");
    fs::write(&dir, b"occupied").unwrap();
    let cache = CharacterizationCache::new(&dir);
    let model = tiny_model(5);
    let pattern = DataPattern::best_average();
    let ch = cache.load_or_characterize("Mblocked", &model, pattern, &cfg());
    let fresh = characterize_module(&model, pattern, &cfg());
    assert_f64_exact(&ch, &fresh);
    let _ = fs::remove_file(&dir);
}
