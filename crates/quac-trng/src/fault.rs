//! Deterministic fault injection for the generator's *output* path — the
//! test seam behind continuous in-service validation.
//!
//! A DRAM TRNG can fail in the field in ways the one-time characterisation
//! never saw: a weakening sense amplifier biasing its bitline, a stuck DQ
//! pin on the channel, a marginal connector dropping bursts of transfers.
//! DR-STRaNGe's system argument is that such a source must be *detected in
//! service* and fenced off. To test that machinery without touching the
//! production sampling path, [`FaultInjector`] corrupts the generator's
//! post-processed output bytes instead: SHA-256 whitens any raw-side bias
//! into statistically perfect output (that is the paper's whole point), so
//! only a delivery-side fault is visible to the NIST battery — exactly the
//! class of fault the in-service validator exists to catch.
//!
//! Every mode is a pure function of `(seed, absolute output byte offset)`,
//! so corruption is reproducible and independent of how reads are sliced:
//! corrupting a stream in chunks equals corrupting it in one pass, which
//! keeps the service's determinism contract testable even for faulty
//! shards.
//!
//! Attach an injector with
//! [`QuacTrng::inject_fault`](crate::pipeline::QuacTrng::inject_fault); a
//! generator without one (the default) pays a single `Option` check per
//! `fill_bytes` call.

use qt_dram_analog::{TemperatureRamp, TemperatureTrend};
use serde::{Deserialize, Serialize};

/// Time-varying environmental drift: an output-side bias whose strength
/// follows a temperature excursion across the delivered stream.
///
/// Section 8 of the paper shows per-module temperature sensitivity in two
/// trends (entropy rising or falling with temperature) and prescribes
/// re-characterisation when conditions drift. This injector turns that into
/// a testable fault: "time" is the *absolute delivered byte offset*, a
/// [`TemperatureRamp`] maps offset to temperature, the module's
/// [`TemperatureTrend`] decides which direction of excursion is adverse, and
/// each degree of adverse excursion adds `sensitivity` to the stream's ones
/// fraction (clamped to `[0.5, 1.0]` like [`FaultMode::Bias`]).
///
/// Because the temperature is a pure function of the offset, drift
/// corruption stays a pure function of `(seed, absolute offset)` — slicing
/// the stream differently yields identical corruption — yet the corruption
/// *changes over the stream*: benign at the edges of the pulse, worst at its
/// midpoint, and gone for good once the stream passes `period_bytes` (the
/// ramp is one-shot). That shape is what the chaos campaigns need: a shard
/// that degrades gradually, trips quarantine near the peak, and — with
/// probation windows marching its offset past the pulse — genuinely
/// *recovers* without the fault being cleared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftInjector {
    /// The temperature excursion, mapped over `[0, period_bytes]`.
    pub ramp: TemperatureRamp,
    /// Which direction of excursion degrades this module (Section 8).
    pub trend: TemperatureTrend,
    /// Stream length the full excursion spans; offsets at or beyond it sit
    /// at `ramp.base_c` forever.
    pub period_bytes: u64,
    /// Added ones fraction per °C of adverse excursion (e.g. 0.002 ⇒ a
    /// 35 °C adverse peak biases the stream to 57% ones).
    pub sensitivity: f64,
    /// Offset quantisation step: the temperature (and therefore the mask
    /// density) is held constant within each `step_bytes`-aligned block, so
    /// the float path runs once per block instead of once per byte.
    pub step_bytes: u64,
}

impl DriftInjector {
    /// Temperature drifts are slow against byte rates; a 64-byte step keeps
    /// the density error far below the battery's resolution.
    const DEFAULT_STEP_BYTES: u64 = 64;

    /// A one-shot excursion of the given ramp over `period_bytes` of stream.
    ///
    /// # Panics
    ///
    /// Panics if `period_bytes == 0` or `sensitivity < 0`.
    pub fn excursion(
        ramp: TemperatureRamp,
        trend: TemperatureTrend,
        period_bytes: u64,
        sensitivity: f64,
    ) -> Self {
        assert!(period_bytes > 0, "a drift excursion needs a nonzero period");
        assert!(sensitivity >= 0.0, "sensitivity is a density per °C, got {sensitivity}");
        DriftInjector {
            ramp,
            trend,
            period_bytes,
            sensitivity,
            step_bytes: Self::DEFAULT_STEP_BYTES,
        }
    }

    /// Temperature the module sees at the given absolute stream offset
    /// (quantised to `step_bytes`).
    pub fn temperature_at(&self, offset: u64) -> f64 {
        let step = self.step_bytes.max(1);
        let quantised = (offset / step) * step;
        self.ramp.at(quantised as f64 / self.period_bytes as f64)
    }

    /// Target ones fraction of the corrupted stream at the given offset:
    /// `0.5 + sensitivity · adverse_excursion`, clamped to `[0.5, 1.0]`.
    pub fn ones_fraction_at(&self, offset: u64) -> f64 {
        let adverse = self.trend.adverse_excursion(self.ramp.base_c, self.temperature_at(offset));
        (0.5 + self.sensitivity * adverse).clamp(0.5, 1.0)
    }

    /// The per-bit OR-mask threshold at this offset (same quantisation as
    /// [`FaultMode::Bias`]: density `2f − 1` scaled to a byte compare).
    fn mask_threshold_at(&self, offset: u64) -> u8 {
        let d = (2.0 * self.ones_fraction_at(offset) - 1.0).clamp(0.0, 1.0);
        (d * 256.0).round().min(255.0) as u8
    }
}

/// What kind of corruption the injector applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Biases the delivered bits toward one: each output bit is forced to 1
    /// with probability `2·ones_fraction − 1`, so an unbiased input stream
    /// leaves with the given ones fraction. Models a weak sense amplifier /
    /// reference-voltage drift. `ones_fraction` is clamped to `[0.5, 1.0]`.
    Bias {
        /// Target fraction of one bits in the corrupted stream.
        ones_fraction: f64,
    },
    /// Forces one bit position of every byte to a constant — a stuck DQ
    /// line. One bit in eight is deterministic, which both biases the
    /// stream (monobit) and imprints an 8-bit period (serial/DFT).
    StuckAt {
        /// Which bit of each byte is stuck (0–7).
        bit: u8,
        /// The stuck value.
        value: bool,
    },
    /// Zeroes `burst_bytes` consecutive bytes out of every `period_bytes` —
    /// a marginal bus dropping whole transfers. Long all-zero runs fail the
    /// runs/longest-run/cusum tests.
    Burst {
        /// Length of the corruption cycle in bytes.
        period_bytes: u64,
        /// Bytes zeroed at the start of each cycle.
        burst_bytes: u64,
    },
    /// Environmental drift: a bias whose strength follows a temperature
    /// excursion across the delivered stream — benign at the pulse edges,
    /// worst at its midpoint, gone once the stream outlives the pulse. See
    /// [`DriftInjector`].
    Drift {
        /// The drift model.
        drift: DriftInjector,
    },
}

/// A seeded, reproducible output-byte corrupter — the `FlakySource` shim the
/// quarantine integration tests inject behind the generation seam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// The corruption mode.
    pub mode: FaultMode,
    /// Seed of the per-byte corruption hash ([`FaultMode::Bias`] and
    /// [`FaultMode::Drift`] draw randomness; the other modes are
    /// offset-deterministic).
    pub seed: u64,
    /// If `true`, [`recharacterize`](crate::pipeline::QuacTrng::recharacterize)
    /// removes the injector — modelling a fault the
    /// controller routes around by re-selecting the segment (the monthly
    /// re-characterisation of Section 8). If `false`, the fault is
    /// persistent and a quarantined shard can never requalify.
    pub cleared_on_recharacterize: bool,
}

impl FaultInjector {
    /// A bias fault targeting the given ones fraction.
    pub fn bias(ones_fraction: f64, seed: u64) -> Self {
        FaultInjector {
            mode: FaultMode::Bias { ones_fraction },
            seed,
            cleared_on_recharacterize: false,
        }
    }

    /// A stuck-at fault on one bit line of every byte.
    pub fn stuck_at(bit: u8, value: bool) -> Self {
        assert!(bit < 8, "a byte has bit positions 0-7, got {bit}");
        FaultInjector { mode: FaultMode::StuckAt { bit, value }, seed: 0, cleared_on_recharacterize: false }
    }

    /// A periodic burst-erasure fault.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes > period_bytes` or `period_bytes == 0`.
    pub fn burst(period_bytes: u64, burst_bytes: u64) -> Self {
        assert!(
            period_bytes > 0 && burst_bytes <= period_bytes,
            "burst {burst_bytes} must fit its period {period_bytes}"
        );
        FaultInjector {
            mode: FaultMode::Burst { period_bytes, burst_bytes },
            seed: 0,
            cleared_on_recharacterize: false,
        }
    }

    /// A time-varying environmental-drift fault (see [`DriftInjector`]).
    /// Usually *not* marked [`transient`](Self::transient): the point of
    /// drift is that recharacterisation alone does not fix it — the shard
    /// recovers only when the environment does (the stream outlives the
    /// pulse).
    pub fn drift(drift: DriftInjector, seed: u64) -> Self {
        FaultInjector { mode: FaultMode::Drift { drift }, seed, cleared_on_recharacterize: false }
    }

    /// Marks this fault as transient: recharacterisation clears it (the
    /// re-selected segment / refreshed thresholds route around the damage).
    pub fn transient(mut self) -> Self {
        self.cleared_on_recharacterize = true;
        self
    }

    /// Corrupts `out`, which holds the output bytes at absolute stream
    /// offset `offset` (bytes delivered before this call). Pure in
    /// `(self, offset)`: slicing the stream differently yields identical
    /// corruption.
    pub fn corrupt(&self, offset: u64, out: &mut [u8]) {
        match self.mode {
            FaultMode::Bias { ones_fraction } => {
                // Per-bit Bernoulli(2f−1) OR mask from a per-byte hash:
                // P(bit = 1) = 0.5·(1−d) + d = f for unbiased input.
                let d = (2.0 * ones_fraction.clamp(0.5, 1.0) - 1.0).clamp(0.0, 1.0);
                let threshold = (d * 256.0).round().min(255.0) as u8;
                for (i, byte) in out.iter_mut().enumerate() {
                    let h = splitmix64(self.seed ^ (offset + i as u64));
                    *byte |= bernoulli_or_mask(h, threshold);
                }
            }
            FaultMode::StuckAt { bit, value } => {
                let mask = 1u8 << bit;
                for byte in out.iter_mut() {
                    if value {
                        *byte |= mask;
                    } else {
                        *byte &= !mask;
                    }
                }
            }
            FaultMode::Burst { period_bytes, burst_bytes } => {
                for (i, byte) in out.iter_mut().enumerate() {
                    if (offset + i as u64) % period_bytes < burst_bytes {
                        *byte = 0;
                    }
                }
            }
            FaultMode::Drift { drift } => {
                // Same OR-mask construction as Bias, but the threshold is a
                // function of the (step-quantised) offset — purity in
                // (seed, absolute offset) is preserved because the threshold
                // depends on the step index alone. The slice is processed
                // one threshold step at a time, so the quantisation
                // arithmetic runs per step while the inner run is the same
                // tight hash + mask loop as Bias.
                let step = drift.step_bytes.max(1);
                let mut i = 0usize;
                while i < out.len() {
                    let at = offset + i as u64;
                    let threshold = drift.mask_threshold_at(at);
                    let run = ((step - at % step) as usize).min(out.len() - i);
                    if threshold != 0 {
                        for (j, byte) in out[i..i + run].iter_mut().enumerate() {
                            let h = splitmix64(self.seed ^ (at + j as u64));
                            *byte |= bernoulli_or_mask(h, threshold);
                        }
                    }
                    i += run;
                }
            }
        }
    }
}

/// The SplitMix64 finalizer — one well-mixed word per output byte index.
fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-bit Bernoulli OR mask: bit `i` is set iff byte `i` of `h` is below
/// `threshold`, so each bit is independently 1 with probability
/// `threshold / 256` when `h` is uniform.
///
/// SWAR formulation of the eight byte-compares (per-lane unsigned `<` via a
/// borrow-isolated subtract, then a multiply-gather of the lane verdicts),
/// bit-identical to the scalar loop it replaced — `corrupt` runs this once
/// per output byte, and the scalar version dominated the fault path's cost
/// (the `rng_service_under_drift` bench gates the result). Lane `i`'s
/// verdict is `(h_i < t)`: lanes differing in their high bit are decided by
/// it alone (`!h & t`), equal-high-bit lanes by the borrow of the low
/// 7-bit subtract (`z`'s high bit is set iff `h_i^low ≥ t^low`, the `| H`
/// keeping every lane's subtract from borrowing into its neighbour).
fn bernoulli_or_mask(h: u64, threshold: u8) -> u8 {
    const H: u64 = 0x8080_8080_8080_8080;
    let t = 0x0101_0101_0101_0101u64.wrapping_mul(threshold as u64);
    let z = (h | H).wrapping_sub(t & !H);
    let lt = ((!h & t) | (!(h ^ t) & !z)) & H;
    (lt.wrapping_mul(0x0002_0408_1020_4081) >> 56) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unbiased_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
    }

    #[test]
    fn bernoulli_or_mask_matches_the_scalar_byte_compares() {
        // The SWAR lanes must agree with the definition — bit i set iff
        // byte i of the hash is below the threshold — for every threshold
        // (0 and 255 are the borrow edge cases) over well-mixed hashes plus
        // the all-lanes-equal corner words.
        let mut rng = StdRng::seed_from_u64(0x5A5A);
        for threshold in 0..=255u8 {
            let corners =
                [0u64, u64::MAX, 0x8080_8080_8080_8080, 0x7F7F_7F7F_7F7F_7F7F];
            for h in corners.into_iter().chain((0..64).map(|_| rng.gen::<u64>())) {
                let mut reference = 0u8;
                for bit in 0..8 {
                    if (((h >> (8 * bit)) & 0xFF) as u8) < threshold {
                        reference |= 1 << bit;
                    }
                }
                assert_eq!(
                    bernoulli_or_mask(h, threshold),
                    reference,
                    "h={h:#018x} threshold={threshold}"
                );
            }
        }
    }

    fn ones_fraction(bytes: &[u8]) -> f64 {
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        ones as f64 / (bytes.len() * 8) as f64
    }

    #[test]
    fn bias_mode_hits_its_target_ones_fraction() {
        for target in [0.55, 0.6, 0.75, 0.9] {
            let mut bytes = unbiased_bytes(64 * 1024, 1);
            FaultInjector::bias(target, 7).corrupt(0, &mut bytes);
            let got = ones_fraction(&bytes);
            assert!(
                (got - target).abs() < 0.01,
                "target {target}, got {got} (quantised mask density)"
            );
        }
    }

    #[test]
    fn bias_never_clears_bits() {
        let clean = unbiased_bytes(4096, 2);
        let mut corrupted = clean.clone();
        FaultInjector::bias(0.7, 3).corrupt(100, &mut corrupted);
        for (c, d) in clean.iter().zip(&corrupted) {
            assert_eq!(c & d, *c, "bias is an OR mask: every clean one survives");
        }
    }

    #[test]
    fn corruption_is_slicing_invariant_and_seed_deterministic() {
        for injector in [
            FaultInjector::bias(0.8, 42),
            FaultInjector::stuck_at(3, true),
            FaultInjector::burst(64, 16),
        ] {
            let clean = unbiased_bytes(3000, 4);
            let mut whole = clean.clone();
            injector.corrupt(500, &mut whole);
            // Same seed and offsets, arbitrary chunking: identical bytes.
            let mut chunked = clean.clone();
            let mut offset = 500u64;
            for chunk in chunked.chunks_mut(17) {
                injector.corrupt(offset, chunk);
                offset += chunk.len() as u64;
            }
            assert_eq!(whole, chunked, "{:?}", injector.mode);
            // Replays exactly.
            let mut again = clean.clone();
            injector.corrupt(500, &mut again);
            assert_eq!(whole, again);
        }
        // A different seed produces a different bias mask.
        let clean = unbiased_bytes(3000, 4);
        let (mut a, mut b) = (clean.clone(), clean);
        FaultInjector::bias(0.8, 1).corrupt(0, &mut a);
        FaultInjector::bias(0.8, 2).corrupt(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn stuck_at_pins_exactly_one_bit_per_byte() {
        let mut bytes = unbiased_bytes(4096, 5);
        let clean = bytes.clone();
        FaultInjector::stuck_at(5, false).corrupt(0, &mut bytes);
        for (c, d) in clean.iter().zip(&bytes) {
            assert_eq!(d & (1 << 5), 0, "bit 5 stuck low");
            assert_eq!(c & !(1 << 5), d & !(1 << 5), "other bits untouched");
        }
        // The induced bias is the analytic 1/16.
        let frac = ones_fraction(&bytes);
        assert!((frac - (0.5 - 1.0 / 16.0)).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn burst_zeroes_the_expected_fraction_at_the_expected_offsets() {
        let mut bytes = vec![0xFFu8; 1000];
        FaultInjector::burst(100, 25).corrupt(50, &mut bytes);
        let zeroed = bytes.iter().filter(|&&b| b == 0).count();
        // Offsets 50..1050: each 100-byte period zeroes its first 25.
        assert_eq!(zeroed, 250);
        assert_eq!(bytes[49], 0xFF, "stream offset 99 is outside every burst");
        assert_eq!(bytes[50], 0, "stream offset 100 opens a burst");
        assert_eq!(bytes[74], 0, "stream offset 124 is the burst's last byte");
        assert_eq!(bytes[75], 0xFF, "stream offset 125 is past the burst");
    }

    #[test]
    fn zero_length_burst_corrupts_nothing() {
        // burst(n, 0) is legal and must be the identity — the degenerate
        // configuration a sweep over burst lengths naturally produces.
        let clean = unbiased_bytes(4096, 9);
        let mut bytes = clean.clone();
        FaultInjector::burst(64, 0).corrupt(123, &mut bytes);
        assert_eq!(bytes, clean);
    }

    #[test]
    fn burst_spanning_a_slice_boundary_is_seamless() {
        // A burst that opens in one fill_bytes slice and closes in the next
        // must zero exactly the same bytes as a single-slice pass.
        let mut whole = vec![0xFFu8; 200];
        FaultInjector::burst(100, 30).corrupt(80, &mut whole);
        let mut sliced = vec![0xFFu8; 200];
        // Stream offsets 80..280; the burst at period offsets 100..130 spans
        // the cut between the two slices (stream offset 180 = buffer 100).
        let (a, b) = sliced.split_at_mut(105);
        let injector = FaultInjector::burst(100, 30);
        injector.corrupt(80, a);
        injector.corrupt(80 + 105, b);
        assert_eq!(sliced, whole);
        // The burst spanning the cut: stream 100..130 → buffer 20..50.
        assert!(whole[20..50].iter().all(|&b| b == 0));
        assert_eq!(whole[19], 0xFF);
        assert_eq!(whole[50], 0xFF);
    }

    fn test_drift() -> DriftInjector {
        // 35 °C adverse peak × 0.004/°C = 64% ones at the midpoint. The
        // period is step-aligned (1600 × 64) so the boundary phases are
        // exact under the step quantisation.
        DriftInjector::excursion(
            qt_dram_analog::TemperatureRamp::nominal_to(85.0),
            qt_dram_analog::TemperatureTrend::Decreasing,
            102_400,
            0.004,
        )
    }

    #[test]
    fn drift_is_benign_at_pulse_edges_and_worst_at_the_peak() {
        let drift = test_drift();
        assert_eq!(drift.ones_fraction_at(0), 0.5, "pulse start is at base temperature");
        assert!((drift.ones_fraction_at(51_200) - 0.64).abs() < 1e-12, "peak adversity at midpoint");
        assert_eq!(drift.ones_fraction_at(102_400), 0.5, "pulse end returns to base");
        assert_eq!(drift.ones_fraction_at(u64::MAX / 2), 0.5, "one-shot: benign forever after");
        // Quarter points are halfway up/down the triangle.
        assert!((drift.ones_fraction_at(25_600) - 0.57).abs() < 1e-12);
        assert!((drift.ones_fraction_at(76_800) - 0.57).abs() < 1e-12);
    }

    #[test]
    fn drift_trend_decides_which_excursions_hurt() {
        // A Trend-1 (Increasing) module is *helped* by a heat pulse: no bias
        // anywhere along the same ramp.
        let benign = DriftInjector::excursion(
            qt_dram_analog::TemperatureRamp::nominal_to(85.0),
            qt_dram_analog::TemperatureTrend::Increasing,
            100_000,
            0.004,
        );
        for offset in [0, 25_000, 50_000, 75_000] {
            assert_eq!(benign.ones_fraction_at(offset), 0.5);
        }
        let clean = unbiased_bytes(4096, 10);
        let mut bytes = clean.clone();
        FaultInjector::drift(benign, 3).corrupt(48_000, &mut bytes);
        assert_eq!(bytes, clean, "a favourable excursion corrupts nothing");
        // The same module cooled instead of heated degrades.
        let cold = DriftInjector::excursion(
            qt_dram_analog::TemperatureRamp { base_c: 50.0, peak_c: 15.0 },
            qt_dram_analog::TemperatureTrend::Increasing,
            102_400,
            0.004,
        );
        assert!((cold.ones_fraction_at(51_200) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn drift_corruption_tracks_the_local_ones_fraction() {
        let injector = FaultInjector::drift(test_drift(), 11);
        // 16 KiB straddling the peak: measured density ≈ the peak target.
        let mut peak = unbiased_bytes(16 * 1024, 12);
        injector.corrupt(51_200 - 8 * 1024, &mut peak);
        let got = ones_fraction(&peak);
        assert!((got - 0.64).abs() < 0.01, "peak-region ones fraction {got}");
        // The same bytes past the pulse stay unbiased.
        let clean = unbiased_bytes(16 * 1024, 12);
        let mut after = clean.clone();
        injector.corrupt(200_000, &mut after);
        assert_eq!(after, clean);
    }

    #[test]
    fn drift_corruption_is_slicing_invariant() {
        // Mirrors corruption_is_slicing_invariant_and_seed_deterministic for
        // the offset-dependent mode: chunk cuts also cross step boundaries.
        let injector = FaultInjector::drift(test_drift(), 42);
        let clean = unbiased_bytes(3000, 13);
        let mut whole = clean.clone();
        injector.corrupt(49_000, &mut whole);
        let mut chunked = clean.clone();
        let mut offset = 49_000u64;
        for chunk in chunked.chunks_mut(17) {
            injector.corrupt(offset, chunk);
            offset += chunk.len() as u64;
        }
        assert_eq!(whole, chunked);
        let mut again = clean.clone();
        injector.corrupt(49_000, &mut again);
        assert_eq!(whole, again, "replays exactly");
        // Drift is an OR mask: every clean one survives.
        for (c, d) in clean.iter().zip(&whole) {
            assert_eq!(c & d, *c);
        }
    }

    #[test]
    fn transient_flag_round_trips() {
        assert!(!FaultInjector::bias(0.6, 1).cleared_on_recharacterize);
        assert!(FaultInjector::bias(0.6, 1).transient().cleared_on_recharacterize);
    }

    #[test]
    #[should_panic(expected = "bit positions")]
    fn stuck_at_rejects_out_of_range_bits() {
        let _ = FaultInjector::stuck_at(8, true);
    }
}
