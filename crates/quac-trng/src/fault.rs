//! Deterministic fault injection for the generator's *output* path — the
//! test seam behind continuous in-service validation.
//!
//! A DRAM TRNG can fail in the field in ways the one-time characterisation
//! never saw: a weakening sense amplifier biasing its bitline, a stuck DQ
//! pin on the channel, a marginal connector dropping bursts of transfers.
//! DR-STRaNGe's system argument is that such a source must be *detected in
//! service* and fenced off. To test that machinery without touching the
//! production sampling path, [`FaultInjector`] corrupts the generator's
//! post-processed output bytes instead: SHA-256 whitens any raw-side bias
//! into statistically perfect output (that is the paper's whole point), so
//! only a delivery-side fault is visible to the NIST battery — exactly the
//! class of fault the in-service validator exists to catch.
//!
//! Every mode is a pure function of `(seed, absolute output byte offset)`,
//! so corruption is reproducible and independent of how reads are sliced:
//! corrupting a stream in chunks equals corrupting it in one pass, which
//! keeps the service's determinism contract testable even for faulty
//! shards.
//!
//! Attach an injector with
//! [`QuacTrng::inject_fault`](crate::pipeline::QuacTrng::inject_fault); a
//! generator without one (the default) pays a single `Option` check per
//! `fill_bytes` call.

use serde::{Deserialize, Serialize};

/// What kind of corruption the injector applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Biases the delivered bits toward one: each output bit is forced to 1
    /// with probability `2·ones_fraction − 1`, so an unbiased input stream
    /// leaves with the given ones fraction. Models a weak sense amplifier /
    /// reference-voltage drift. `ones_fraction` is clamped to `[0.5, 1.0]`.
    Bias {
        /// Target fraction of one bits in the corrupted stream.
        ones_fraction: f64,
    },
    /// Forces one bit position of every byte to a constant — a stuck DQ
    /// line. One bit in eight is deterministic, which both biases the
    /// stream (monobit) and imprints an 8-bit period (serial/DFT).
    StuckAt {
        /// Which bit of each byte is stuck (0–7).
        bit: u8,
        /// The stuck value.
        value: bool,
    },
    /// Zeroes `burst_bytes` consecutive bytes out of every `period_bytes` —
    /// a marginal bus dropping whole transfers. Long all-zero runs fail the
    /// runs/longest-run/cusum tests.
    Burst {
        /// Length of the corruption cycle in bytes.
        period_bytes: u64,
        /// Bytes zeroed at the start of each cycle.
        burst_bytes: u64,
    },
}

/// A seeded, reproducible output-byte corrupter — the `FlakySource` shim the
/// quarantine integration tests inject behind the generation seam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// The corruption mode.
    pub mode: FaultMode,
    /// Seed of the per-byte corruption hash (only [`FaultMode::Bias`] draws
    /// randomness; the other modes are offset-deterministic).
    pub seed: u64,
    /// If `true`, [`recharacterize`](crate::pipeline::QuacTrng::recharacterize)
    /// removes the injector — modelling a fault the
    /// controller routes around by re-selecting the segment (the monthly
    /// re-characterisation of Section 8). If `false`, the fault is
    /// persistent and a quarantined shard can never requalify.
    pub cleared_on_recharacterize: bool,
}

impl FaultInjector {
    /// A bias fault targeting the given ones fraction.
    pub fn bias(ones_fraction: f64, seed: u64) -> Self {
        FaultInjector {
            mode: FaultMode::Bias { ones_fraction },
            seed,
            cleared_on_recharacterize: false,
        }
    }

    /// A stuck-at fault on one bit line of every byte.
    pub fn stuck_at(bit: u8, value: bool) -> Self {
        assert!(bit < 8, "a byte has bit positions 0-7, got {bit}");
        FaultInjector { mode: FaultMode::StuckAt { bit, value }, seed: 0, cleared_on_recharacterize: false }
    }

    /// A periodic burst-erasure fault.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes > period_bytes` or `period_bytes == 0`.
    pub fn burst(period_bytes: u64, burst_bytes: u64) -> Self {
        assert!(
            period_bytes > 0 && burst_bytes <= period_bytes,
            "burst {burst_bytes} must fit its period {period_bytes}"
        );
        FaultInjector {
            mode: FaultMode::Burst { period_bytes, burst_bytes },
            seed: 0,
            cleared_on_recharacterize: false,
        }
    }

    /// Marks this fault as transient: recharacterisation clears it (the
    /// re-selected segment / refreshed thresholds route around the damage).
    pub fn transient(mut self) -> Self {
        self.cleared_on_recharacterize = true;
        self
    }

    /// Corrupts `out`, which holds the output bytes at absolute stream
    /// offset `offset` (bytes delivered before this call). Pure in
    /// `(self, offset)`: slicing the stream differently yields identical
    /// corruption.
    pub fn corrupt(&self, offset: u64, out: &mut [u8]) {
        match self.mode {
            FaultMode::Bias { ones_fraction } => {
                // Per-bit Bernoulli(2f−1) OR mask from a per-byte hash:
                // P(bit = 1) = 0.5·(1−d) + d = f for unbiased input.
                let d = (2.0 * ones_fraction.clamp(0.5, 1.0) - 1.0).clamp(0.0, 1.0);
                let threshold = (d * 256.0).round().min(255.0) as u8;
                for (i, byte) in out.iter_mut().enumerate() {
                    let h = splitmix64(self.seed ^ (offset + i as u64));
                    let mut mask = 0u8;
                    for bit in 0..8 {
                        if (((h >> (8 * bit)) & 0xFF) as u8) < threshold {
                            mask |= 1 << bit;
                        }
                    }
                    *byte |= mask;
                }
            }
            FaultMode::StuckAt { bit, value } => {
                let mask = 1u8 << bit;
                for byte in out.iter_mut() {
                    if value {
                        *byte |= mask;
                    } else {
                        *byte &= !mask;
                    }
                }
            }
            FaultMode::Burst { period_bytes, burst_bytes } => {
                for (i, byte) in out.iter_mut().enumerate() {
                    if (offset + i as u64) % period_bytes < burst_bytes {
                        *byte = 0;
                    }
                }
            }
        }
    }
}

/// The SplitMix64 finalizer — one well-mixed word per output byte index.
fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unbiased_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect()
    }

    fn ones_fraction(bytes: &[u8]) -> f64 {
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        ones as f64 / (bytes.len() * 8) as f64
    }

    #[test]
    fn bias_mode_hits_its_target_ones_fraction() {
        for target in [0.55, 0.6, 0.75, 0.9] {
            let mut bytes = unbiased_bytes(64 * 1024, 1);
            FaultInjector::bias(target, 7).corrupt(0, &mut bytes);
            let got = ones_fraction(&bytes);
            assert!(
                (got - target).abs() < 0.01,
                "target {target}, got {got} (quantised mask density)"
            );
        }
    }

    #[test]
    fn bias_never_clears_bits() {
        let clean = unbiased_bytes(4096, 2);
        let mut corrupted = clean.clone();
        FaultInjector::bias(0.7, 3).corrupt(100, &mut corrupted);
        for (c, d) in clean.iter().zip(&corrupted) {
            assert_eq!(c & d, *c, "bias is an OR mask: every clean one survives");
        }
    }

    #[test]
    fn corruption_is_slicing_invariant_and_seed_deterministic() {
        for injector in [
            FaultInjector::bias(0.8, 42),
            FaultInjector::stuck_at(3, true),
            FaultInjector::burst(64, 16),
        ] {
            let clean = unbiased_bytes(3000, 4);
            let mut whole = clean.clone();
            injector.corrupt(500, &mut whole);
            // Same seed and offsets, arbitrary chunking: identical bytes.
            let mut chunked = clean.clone();
            let mut offset = 500u64;
            for chunk in chunked.chunks_mut(17) {
                injector.corrupt(offset, chunk);
                offset += chunk.len() as u64;
            }
            assert_eq!(whole, chunked, "{:?}", injector.mode);
            // Replays exactly.
            let mut again = clean.clone();
            injector.corrupt(500, &mut again);
            assert_eq!(whole, again);
        }
        // A different seed produces a different bias mask.
        let clean = unbiased_bytes(3000, 4);
        let (mut a, mut b) = (clean.clone(), clean);
        FaultInjector::bias(0.8, 1).corrupt(0, &mut a);
        FaultInjector::bias(0.8, 2).corrupt(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn stuck_at_pins_exactly_one_bit_per_byte() {
        let mut bytes = unbiased_bytes(4096, 5);
        let clean = bytes.clone();
        FaultInjector::stuck_at(5, false).corrupt(0, &mut bytes);
        for (c, d) in clean.iter().zip(&bytes) {
            assert_eq!(d & (1 << 5), 0, "bit 5 stuck low");
            assert_eq!(c & !(1 << 5), d & !(1 << 5), "other bits untouched");
        }
        // The induced bias is the analytic 1/16.
        let frac = ones_fraction(&bytes);
        assert!((frac - (0.5 - 1.0 / 16.0)).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn burst_zeroes_the_expected_fraction_at_the_expected_offsets() {
        let mut bytes = vec![0xFFu8; 1000];
        FaultInjector::burst(100, 25).corrupt(50, &mut bytes);
        let zeroed = bytes.iter().filter(|&&b| b == 0).count();
        // Offsets 50..1050: each 100-byte period zeroes its first 25.
        assert_eq!(zeroed, 250);
        assert_eq!(bytes[49], 0xFF, "stream offset 99 is outside every burst");
        assert_eq!(bytes[50], 0, "stream offset 100 opens a burst");
        assert_eq!(bytes[74], 0, "stream offset 124 is the burst's last byte");
        assert_eq!(bytes[75], 0xFF, "stream offset 125 is past the burst");
    }

    #[test]
    fn transient_flag_round_trips() {
        assert!(!FaultInjector::bias(0.6, 1).cleared_on_recharacterize);
        assert!(FaultInjector::bias(0.6, 1).transient().cleared_on_recharacterize);
    }

    #[test]
    #[should_panic(expected = "bit positions")]
    fn stuck_at_rejects_out_of_range_bits() {
        let _ = FaultInjector::stuck_at(8, true);
    }
}
