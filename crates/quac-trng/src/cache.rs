//! Persistent store for module characterisations.
//!
//! Characterising a full-size module at `QUAC_FULL=1` density walks thousands
//! of segments × tens of thousands of bitlines, which is the expensive,
//! *one-time* step of the paper's flow (Section 6; re-run monthly per
//! Section 8). The figure and table binaries all re-characterise the same
//! modules with the same configuration, so this store serialises each
//! [`ModuleCharacterization`] to disk keyed by module identity + sweep
//! configuration, and later runs load instead of re-sweeping.
//!
//! The on-disk format is a versioned, line-oriented text file with every
//! `f64` written as its IEEE-754 bit pattern in hex, so a load round-trips
//! *exactly* — a cached characterisation is bit-identical to the freshly
//! computed one. (The vendored `serde` stand-in has no real serialisation
//! backend, so the format is hand-rolled; swapping in crates.io serde later
//! does not affect this file format.)

use crate::characterize::{characterize_module, CharacterizationConfig, ModuleCharacterization};
use qt_dram_analog::{OperatingConditions, QuacAnalogModel};
use qt_dram_core::{DataPattern, Segment};
use std::fs;
use std::path::{Path, PathBuf};

/// Format marker of the store files.
const MAGIC: &str = "quac-characterization v1";

/// A directory-backed characterisation store.
#[derive(Debug, Clone)]
pub struct CharacterizationCache {
    dir: PathBuf,
}

impl CharacterizationCache {
    /// Opens (and lazily creates) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CharacterizationCache { dir: dir.into() }
    }

    /// The store honoured by the figure binaries: the `QUAC_CACHE_DIR`
    /// environment variable when set (`0`, `off`, or an empty value disables
    /// caching entirely), else `.quac-cache` under the working directory.
    pub fn from_env() -> Option<Self> {
        match std::env::var("QUAC_CACHE_DIR") {
            Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(Self::new(v)),
            Err(_) => Some(Self::new(".quac-cache")),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// [`CharacterizationCache::load_or_characterize`] through the
    /// environment-selected store ([`CharacterizationCache::from_env`]):
    /// callers honouring `QUAC_CACHE_DIR` (the figure binaries, examples,
    /// services) share this one fallback policy — a disabled store means a
    /// fresh characterisation, nothing else changes.
    pub fn load_or_characterize_env(
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> ModuleCharacterization {
        match Self::from_env() {
            Some(cache) => cache.load_or_characterize(label, model, pattern, cfg),
            None => characterize_module(model, pattern, cfg),
        }
    }

    /// Loads the characterisation for `(label, model, pattern, cfg)` if a
    /// valid entry exists, otherwise characterises the module (in parallel)
    /// and stores the result best-effort. `label` names the module (e.g.
    /// `"M3"`); the file key also folds in the variation seed, geometry,
    /// sweep configuration, and the model's physics fingerprint (calibration
    /// parameters + model revision), so stale entries — including ones
    /// computed by an older or differently-calibrated analog model — can
    /// never be confused for fresh ones.
    pub fn load_or_characterize(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> ModuleCharacterization {
        let path = self.entry_path(label, model, pattern, cfg);
        if let Some(ch) = load_entry(&path, pattern, cfg) {
            return ch;
        }
        let ch = characterize_module(model, pattern, cfg);
        // Best-effort persistence: a read-only filesystem must not break
        // characterisation itself.
        let _ = self.store_at(&path, &ch);
        ch
    }

    /// The file path that `load_or_characterize` uses for this key.
    pub fn entry_path(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> PathBuf {
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let name = format!(
            "{sanitized}-s{:016x}-m{:016x}-r{}-g{}-p{pattern}-ss{}-bs{}-t{:016x}-a{:016x}.qch",
            model.variation().seed(),
            // Calibration + model-revision fingerprint: a physics change
            // (new AnalogParams, new entropy path) keys different entries,
            // so stale results are never served after a model edit.
            model.physics_fingerprint(),
            model.geometry().row_bits,
            model.geometry().segments_per_bank(),
            cfg.segment_stride,
            cfg.bitline_stride,
            cfg.conditions.temperature_c.to_bits(),
            cfg.conditions.age_days.to_bits(),
        );
        self.dir.join(name)
    }

    fn store_at(&self, path: &Path, ch: &ModuleCharacterization) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("pattern {}\n", ch.pattern));
        out.push_str(&format!(
            "conditions {:016x} {:016x}\n",
            ch.conditions.temperature_c.to_bits(),
            ch.conditions.age_days.to_bits()
        ));
        out.push_str(&format!("best_segment {}\n", ch.best_segment.index()));
        out.push_str(&format!("best_segment_entropy {:016x}\n", ch.best_segment_entropy.to_bits()));
        out.push_str(&format!("segments {}\n", ch.segment_entropy.len()));
        for (s, e) in &ch.segment_entropy {
            out.push_str(&format!("{s} {:016x}\n", e.to_bits()));
        }
        out.push_str(&format!("cache_blocks {}\n", ch.best_segment_cache_blocks.len()));
        for e in &ch.best_segment_cache_blocks {
            out.push_str(&format!("{:016x}\n", e.to_bits()));
        }
        out.push_str("end\n");
        // Write-then-rename so a crashed run never leaves a torn entry.
        let tmp = path.with_extension("qch.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, path)
    }
}

/// Parses a store entry, returning `None` (caller recomputes) on any
/// mismatch, truncation, or corruption.
fn load_entry(
    path: &Path,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> Option<ModuleCharacterization> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let stored_pattern: DataPattern =
        lines.next()?.strip_prefix("pattern ")?.parse().ok()?;
    if stored_pattern != pattern {
        return None;
    }
    let mut cond_fields = lines.next()?.strip_prefix("conditions ")?.split(' ');
    let conditions = OperatingConditions {
        temperature_c: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
        age_days: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
    };
    if conditions != cfg.conditions {
        return None;
    }
    let best_segment =
        Segment::new(lines.next()?.strip_prefix("best_segment ")?.parse().ok()?);
    let best_segment_entropy = f64::from_bits(
        u64::from_str_radix(lines.next()?.strip_prefix("best_segment_entropy ")?, 16).ok()?,
    );
    let n_segments: usize = lines.next()?.strip_prefix("segments ")?.parse().ok()?;
    let mut segment_entropy = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        let mut fields = lines.next()?.split(' ');
        let s: usize = fields.next()?.parse().ok()?;
        let e = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        segment_entropy.push((s, e));
    }
    let n_blocks: usize = lines.next()?.strip_prefix("cache_blocks ")?.parse().ok()?;
    let mut best_segment_cache_blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        best_segment_cache_blocks
            .push(f64::from_bits(u64::from_str_radix(lines.next()?, 16).ok()?));
    }
    if lines.next()? != "end" {
        return None;
    }
    Some(ModuleCharacterization {
        pattern,
        segment_entropy,
        best_segment,
        best_segment_entropy,
        best_segment_cache_blocks,
        conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize_module_serial;
    use qt_dram_analog::ModuleVariation;
    use qt_dram_core::DramGeometry;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "quac-cache-test-{tag}-{}-{unique}",
            std::process::id()
        ))
    }

    fn tiny_model(seed: u64) -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, seed))
    }

    fn cfg() -> CharacterizationConfig {
        CharacterizationConfig {
            segment_stride: 2,
            bitline_stride: 4,
            conditions: OperatingConditions::nominal(),
        }
    }

    #[test]
    fn round_trips_exactly_and_loads_on_second_call() {
        let dir = scratch_dir("roundtrip");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(77);
        let pattern = DataPattern::best_average();
        let fresh = cache.load_or_characterize("Mx", &model, pattern, &cfg());
        let direct = characterize_module_serial(&model, pattern, &cfg());
        assert_eq!(fresh, direct, "first call must compute the real result");
        let path = cache.entry_path("Mx", &model, pattern, &cfg());
        assert!(path.exists(), "entry stored at {path:?}");
        // Second call loads from disk — bit-identical.
        let loaded = cache.load_or_characterize("Mx", &model, pattern, &cfg());
        assert_eq!(loaded, fresh);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_configurations_use_distinct_entries() {
        let dir = scratch_dir("keys");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(5);
        let pattern = DataPattern::best_average();
        let a = cache.entry_path("M1", &model, pattern, &cfg());
        let aged = cfg().with_conditions(OperatingConditions::nominal().aged(30.0));
        let b = cache.entry_path("M1", &model, pattern, &aged);
        let c = cache.entry_path("M2", &model, pattern, &cfg());
        let d = cache.entry_path("M1", &tiny_model(6), pattern, &cfg());
        assert!(a != b && a != c && a != d && b != c);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recalibrated_physics_uses_a_distinct_entry() {
        // Editing the analog calibration (or bumping the model version) must
        // change the key, so stale cached figures are never served.
        let dir = scratch_dir("physics");
        let cache = CharacterizationCache::new(&dir);
        let pattern = DataPattern::best_average();
        let base = tiny_model(5);
        let mut params = qt_dram_analog::AnalogParams::calibrated();
        params.share_voltage *= 1.01;
        let recalibrated = QuacAnalogModel::new(
            DramGeometry::tiny_test(),
            ModuleVariation::generate_with(&DramGeometry::tiny_test(), 5, params, 1.0),
        );
        assert_ne!(base.physics_fingerprint(), recalibrated.physics_fingerprint());
        assert_ne!(
            cache.entry_path("M1", &base, pattern, &cfg()),
            cache.entry_path("M1", &recalibrated, pattern, &cfg())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_recomputed() {
        let dir = scratch_dir("corrupt");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(9);
        let pattern = DataPattern::best_average();
        let expected = cache.load_or_characterize("M", &model, pattern, &cfg());
        let path = cache.entry_path("M", &model, pattern, &cfg());
        fs::write(&path, "quac-characterization v1\npattern 0111\ngarbage").unwrap();
        let recovered = cache.load_or_characterize("M", &model, pattern, &cfg());
        assert_eq!(recovered, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_and_custom_env_paths() {
        // `from_env` is exercised without mutating the environment (tests run
        // in parallel): the default path is used when the variable is absent.
        if std::env::var("QUAC_CACHE_DIR").is_err() {
            let cache = CharacterizationCache::from_env().expect("default cache");
            assert_eq!(cache.dir(), Path::new(".quac-cache"));
        }
    }
}
